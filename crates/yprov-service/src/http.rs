//! A from-scratch HTTP/1.1 server exposing the store.
//!
//! No frameworks. Two interchangeable cores sit behind the [`Server`]
//! facade, selected by [`ServerConfig::core`]:
//!
//! * [`ServerCore::EventLoop`] (the default) — a non-blocking epoll
//!   reactor (see [`crate::reactor`]): one thread multiplexes every
//!   connection, complete requests are dispatched to a worker pool,
//!   and keep-alive/pipelined connections are first-class. Slow peers
//!   cost a buffer instead of a thread.
//! * [`ServerCore::Threaded`] — the original thread-per-connection
//!   design: a listener thread hands accepted sockets to a fixed pool
//!   of workers over a bounded crossbeam channel; each worker parses
//!   one request, routes it, and writes one `Connection: close`
//!   response. Kept as the bench baseline and a fallback.
//!
//! Both cores share this module's parser semantics, routing, metrics
//! and response encoding, so their observable behavior for one-shot
//! (`Connection: close`) clients is byte-identical.
//!
//! The parser is defensive: the header section is capped in total bytes
//! and field count (431 beyond either limit), and `Transfer-Encoding:
//! chunked` — which this server does not implement — is rejected with
//! 501 instead of being silently misread as an empty body. Path
//! segments are percent-decoded (without the `+`-to-space query rule),
//! so percent-encoded document ids round-trip.
//!
//! ## Routes (yProv-style)
//!
//! | Method | Path | Effect |
//! |---|---|---|
//! | GET    | `/healthz` | liveness |
//! | GET    | `/metrics` | Prometheus text exposition of server + store metrics |
//! | GET    | `/api/v0/documents` | list handle ids |
//! | POST   | `/api/v0/documents` | upload PROV-JSON, returns `{"id"}` |
//! | GET    | `/api/v0/documents/{id}` | the PROV-JSON document |
//! | DELETE | `/api/v0/documents/{id}` | remove |
//! | GET    | `/api/v0/documents/{id}/stats` | element/relation counts |
//! | GET    | `/api/v0/documents/{id}/ancestors?focus=<qname>` | lineage |
//! | GET    | `/api/v0/documents/{id}/subgraph?focus=<qname>` | focused sub-document |
//! | GET    | `/api/v0/documents/{id}/provn` | PROV-N rendering (text) |
//! | GET    | `/api/v0/documents/{id}/turtle` | PROV-O / Turtle rendering |
//! | GET    | `/api/v0/documents/{id}/dot` | Graphviz DOT of the graph |
//! | POST   | `/api/v0/documents/{id}/deltas` | merge a PROV-JSON delta (ledgered + replicated) |
//! | GET    | `/api/v0/documents/{id}/watch?after=N&timeout_ms=M` | long-poll for a version newer than `N` |
//! | POST   | `/api/v0/documents/{id}/query` | planned path-pattern query / ML audit (JSON IR body; `docs` joins documents, `render:"dot"` adds the matched subgraph) |
//! | GET    | `/api/v0/ledger` | the tamper-evident upload chain |
//! | PUT    | `/api/v0/documents/{id}` | upload/replace under a chosen id |
//! | GET    | `/api/v0/ledger/verify` | verify every chain this node holds |
//! | POST   | `/api/v0/replication/frames` | apply one replication frame |
//! | GET    | `/api/v0/replication/head?source=` | this replica's cursor for a source |
//! | GET    | `/api/v0/replication/sources` | all replication cursors |
//!
//! When [`ServerConfig::cluster`] is set, uploads are streamed to the
//! document's replica set before being acknowledged (see
//! [`crate::cluster`]); under-replicated writes are answered 503. Every
//! 503 — shed, injected, or under-replicated — carries a `Retry-After`
//! header so well-behaved clients back off on the server's schedule.

use crate::cluster::Replicator;
use crate::error::ServiceError;
use crate::store::{DocumentStore, WatchOutcome};
use crossbeam::channel::{bounded, Sender, TrySendError};
use prov_model::query::{ElementFilter, PathQuery};
use prov_model::{ProvDocument, QName};
use serde_json::json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which server core drives connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerCore {
    /// Non-blocking epoll reactor with keep-alive and pipelining.
    #[default]
    EventLoop,
    /// Thread-per-connection over blocking sockets (bench baseline).
    Threaded,
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Which core drives connections (event loop by default).
    pub core: ServerCore,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Maximum accepted request-body size in bytes.
    pub max_body: usize,
    /// Maximum total bytes in the request line + header section; a peer
    /// streaming endless headers gets 431 once the budget is spent
    /// instead of growing a worker's memory without bound.
    pub max_header_bytes: usize,
    /// Maximum number of header fields (431 beyond it).
    pub max_headers: usize,
    /// Socket read timeout: a peer that stops sending mid-request gets
    /// a 400 after this long instead of pinning a worker forever.
    pub read_timeout: Duration,
    /// Socket write timeout: a peer that stops reading its response
    /// frees the worker after this long.
    pub write_timeout: Duration,
    /// Accepted connections queued between the listener and the
    /// workers; beyond this the server sheds load with 503 instead of
    /// letting the backlog (and client latency) grow without bound.
    pub queue_depth: usize,
    /// Event-loop core: open-connection admission watermark. `None`
    /// (the default) derives `workers + queue_depth` — the same bound
    /// the threaded core's bounded accept queue enforced — so beyond
    /// it new connections are shed with 503.
    pub max_connections: Option<usize>,
    /// Event-loop core: total response bytes buffered across all
    /// connections before further dispatches shed with 503.
    pub max_queued_bytes: usize,
    /// Event-loop core: a keep-alive connection that has served at
    /// least one response and then goes quiet is closed (silently)
    /// after this long.
    pub idle_timeout: Duration,
    /// Event-loop core: [`Server::stop`] drains in-flight connections
    /// for at most this long before force-closing the stragglers.
    pub drain_deadline: Duration,
    /// Fault injection: fail this many document uploads with 503 before
    /// serving normally (exercises client retry; 0 in production).
    pub chaos_fail_uploads: u32,
    /// Multi-node mode: this node's identity, peers and replication
    /// tunables. `None` (the default) runs a plain single node.
    pub cluster: Option<crate::cluster::ClusterConfig>,
    /// Ops plane: self-scrape cadence, tsdb tiers, slowlog depth and
    /// alert rules.
    pub ops: crate::ops::OpsConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            core: ServerCore::default(),
            workers: 4,
            max_body: 256 * 1024 * 1024,
            max_header_bytes: 32 * 1024,
            max_headers: 128,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            queue_depth: 64,
            max_connections: None,
            max_queued_bytes: 64 * 1024 * 1024,
            idle_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            chaos_fail_uploads: 0,
            cluster: None,
            ops: crate::ops::OpsConfig::default(),
        }
    }
}

/// A running server; dropping it (or calling [`Server::shutdown`] /
/// [`Server::stop`]) stops the core and its workers. On the event-loop
/// core the stop is graceful: in-flight connections drain (bounded by
/// [`ServerConfig::drain_deadline`]) before the reactor exits.
pub struct Server {
    addr: std::net::SocketAddr,
    core: Option<CoreHandle>,
    registry: Arc<obs::Registry>,
    replicator: Option<Arc<Replicator>>,
    ops: Arc<crate::ops::Ops>,
    /// Dropping the sender wakes the scraper out of its cadence sleep.
    scraper_stop: Option<Sender<()>>,
    scraper_thread: Option<std::thread::JoinHandle<()>>,
}

/// The running core behind the facade.
enum CoreHandle {
    Threaded {
        stop: Arc<AtomicBool>,
        listener_thread: std::thread::JoinHandle<()>,
    },
    Event {
        handle: crate::reactor::ReactorHandle,
        thread: std::thread::JoinHandle<()>,
    },
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// serving `store`.
    pub fn bind(addr: &str, store: DocumentStore, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let chaos = Arc::new(AtomicU32::new(config.chaos_fail_uploads));
        // Per-server registry (always on): request metrics are the
        // server's own concern and stay out of the process-global
        // tracker registry.
        let registry = Arc::new(obs::Registry::new());
        registry.set_help(
            "http_requests_total",
            "Requests served, by method, route and status.",
        );
        registry.set_help(
            "http_request_duration_seconds",
            "Request handling latency, by route.",
        );
        registry.set_help(
            "http_parse_errors_total",
            "Connections rejected with an unparseable request.",
        );
        registry.set_help(
            "replication_frames_total",
            "Replication frames received from peers.",
        );
        registry.set_help(
            "replication_bytes_total",
            "Replication frame bytes received from peers.",
        );
        registry.set_help(
            "replication_rejects_total",
            "Replication frames rejected before apply (duplicate forks, gaps, torn bytes).",
        );
        registry.set_help(
            "server_connections_open",
            "Connections currently held by the event-loop core.",
        );
        registry.set_help(
            "server_connections_accepted_total",
            "Connections accepted since start (including shed ones).",
        );
        registry.set_help(
            "server_requests_pipelined_total",
            "Requests that arrived on a connection with earlier requests still in flight.",
        );
        registry.set_help(
            "server_shed_total",
            "Connections/requests shed with 503, by watermark reason.",
        );
        registry.set_help(
            "reactor_loop_lag_seconds",
            "Time one reactor iteration spent processing between epoll waits.",
        );
        registry.set_help(
            "reactor_queued_jobs",
            "Requests dispatched to workers and not yet completed.",
        );
        registry.set_help(
            "reactor_queued_bytes",
            "Response bytes buffered across all connections.",
        );
        let ops = crate::ops::Ops::new(&config.ops, &registry);
        let replicator = config
            .cluster
            .as_ref()
            .map(|c| Arc::new(Replicator::new(c.clone(), &registry)));

        // The scraper thread: snapshots both registries on the cadence
        // and feeds the ops plane. Wall-clock seconds drive production
        // ticks; tests that need determinism turn `self_scrape` off and
        // call `Ops::tick` with a virtual clock instead.
        let (scraper_stop, scraper_thread) = if config.ops.self_scrape {
            let interval = config.ops.scrape_interval.max(Duration::from_millis(10));
            let (tx, rx) = bounded::<()>(0);
            let ops_handle = Arc::clone(&ops);
            let server_registry = Arc::clone(&registry);
            let store_registry = Arc::clone(store.registry());
            let thread = std::thread::Builder::new()
                .name("yprov-ops-scrape".into())
                .spawn(move || loop {
                    let now_s = std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map(|d| d.as_secs_f64())
                        .unwrap_or(0.0);
                    ops_handle.tick(now_s, &[&server_registry, &store_registry]);
                    match rx.recv_timeout(interval) {
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                        _ => break, // stop signal or sender dropped
                    }
                })?;
            (Some(tx), Some(thread))
        } else {
            (None, None)
        };

        let core = match config.core {
            ServerCore::EventLoop => {
                let ev = crate::reactor::spawn(
                    listener,
                    store,
                    config,
                    chaos,
                    Arc::clone(&registry),
                    replicator.clone(),
                    Arc::clone(&ops),
                )?;
                CoreHandle::Event {
                    handle: ev.handle,
                    thread: ev.thread,
                }
            }
            ServerCore::Threaded => {
                let (tx, rx) = bounded::<TcpStream>(config.queue_depth.max(1));
                for i in 0..config.workers.max(1) {
                    let rx = rx.clone();
                    let store = store.clone();
                    let cfg = config.clone();
                    let chaos = Arc::clone(&chaos);
                    let registry = Arc::clone(&registry);
                    let replicator = replicator.clone();
                    let ops = Arc::clone(&ops);
                    std::thread::Builder::new()
                        .name(format!("yprov-http-{i}"))
                        .spawn(move || {
                            while let Ok(stream) = rx.recv() {
                                let _ = handle_connection(
                                    stream,
                                    &store,
                                    &cfg,
                                    &chaos,
                                    &registry,
                                    replicator.as_deref(),
                                    &ops,
                                );
                            }
                        })?;
                }
                let stop_l = Arc::clone(&stop);
                let listener_thread = std::thread::Builder::new()
                    .name("yprov-http-accept".into())
                    .spawn(move || accept_loop(listener, tx, stop_l))?;
                CoreHandle::Threaded {
                    stop,
                    listener_thread,
                }
            }
        };

        Ok(Server {
            addr: local,
            core: Some(core),
            registry,
            replicator,
            ops,
            scraper_stop,
            scraper_thread,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The server's metrics registry (what `GET /metrics` renders).
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.registry
    }

    /// The server's ops plane: tsdb history, alert rules, slowlog.
    pub fn ops(&self) -> &Arc<crate::ops::Ops> {
        &self.ops
    }

    /// A shared handle to the replication chaos knobs, when this server
    /// is cluster-configured — how the chaos harness injects dropped,
    /// torn, duplicated or delayed frames mid-run.
    pub fn replication_chaos(&self) -> Option<crate::cluster::ReplicationChaos> {
        self.replicator.as_ref().map(|r| r.chaos())
    }

    /// Stops accepting connections and joins the listener.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Stops the core. On the event-loop core this is a graceful
    /// drain: the listener is deregistered, in-flight connections
    /// finish (bounded by [`ServerConfig::drain_deadline`]), and the
    /// call returns once the reactor has exited. Idempotent.
    pub fn stop(&mut self) {
        // Stop the scraper first: dropping the sender wakes it out of
        // its cadence sleep immediately.
        drop(self.scraper_stop.take());
        if let Some(thread) = self.scraper_thread.take() {
            let _ = thread.join();
        }
        match self.core.take() {
            None => {}
            Some(CoreHandle::Threaded {
                stop,
                listener_thread,
            }) => {
                stop.store(true, Ordering::Release);
                // Nudge the blocking accept() with a throwaway connection.
                let _ = TcpStream::connect(self.addr);
                let _ = listener_thread.join();
            }
            Some(CoreHandle::Event { handle, thread }) => {
                handle.stop();
                let _ = thread.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, tx: Sender<TcpStream>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        match stream {
            Ok(s) => match tx.try_send(s) {
                Ok(()) => {}
                Err(TrySendError::Full(s)) => {
                    // All workers busy and the queue is at capacity:
                    // shed load immediately rather than queue without
                    // bound. Best effort — a peer that won't read its
                    // 503 is dropped by the short write timeout.
                    let _ = s.set_write_timeout(Some(Duration::from_millis(500)));
                    let _ = write_response(
                        s,
                        503,
                        &json!({"error": "server overloaded, retry later"}).to_string(),
                    );
                }
                Err(TrySendError::Disconnected(_)) => break,
            },
            Err(_) => continue,
        }
    }
}

#[derive(Debug)]
pub(crate) struct Request {
    pub(crate) method: String,
    pub(crate) path: String,
    pub(crate) query: Vec<(String, String)>,
    pub(crate) body: Vec<u8>,
    /// W3C `traceparent` header, if the client sent one; the handler
    /// span joins that trace instead of starting its own.
    pub(crate) traceparent: Option<String>,
    /// The client opted into keep-alive (`Connection: keep-alive`).
    /// Absent the header the connection closes after the response —
    /// one-shot read-to-EOF clients keep working unchanged.
    pub(crate) keep_alive: bool,
}

impl Request {
    /// Assembles a request from parsed parts, splitting the target
    /// into a path and decoded query pairs.
    pub(crate) fn from_parts(
        method: String,
        target: &str,
        body: Vec<u8>,
        traceparent: Option<String>,
        keep_alive: bool,
    ) -> Request {
        let (path, query_str) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };
        let query = query_str
            .split('&')
            .filter(|kv| !kv.is_empty())
            .filter_map(|kv| kv.split_once('='))
            .map(|(k, v)| (url_decode(k), url_decode(v)))
            .collect();
        Request {
            method,
            path,
            query,
            body,
            traceparent,
            keep_alive,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    store: &DocumentStore,
    cfg: &ServerConfig,
    chaos: &AtomicU32,
    registry: &obs::Registry,
    replicator: Option<&Replicator>,
    ops: &crate::ops::Ops,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);

    let started = Instant::now();
    let request = match parse_request(&mut reader, cfg) {
        Ok(Some(r)) => r,
        Ok(None) => return Ok(()), // empty connection (shutdown nudge)
        Err((status, msg)) => {
            registry.counter("http_parse_errors_total").inc();
            count_request(registry, "-", "unparsed", status);
            return write_response(stream, status, &json!({"error": msg}).to_string());
        }
    };

    // Adopt the client's trace before opening the handler span, so the
    // span's trace id matches the sender's. Declaration order matters:
    // `_remote` outlives `trace`, so the span closes while the remote
    // context is still in force.
    let _remote = request
        .traceparent
        .as_deref()
        .and_then(obs::trace::adopt_remote);
    let mut trace = obs::trace::span("handle_request");
    let trace_id = current_trace_id_hex();
    if obs::trace::is_enabled() {
        trace.annotate("method", request.method.clone());
        trace.annotate("path", request.path.clone());
    }
    let (status, body) = route(&request, store, chaos, registry, replicator, ops);
    if obs::trace::is_enabled() {
        trace.annotate("status", status.to_string());
    }
    drop(trace);
    let label = route_label(&request.path);
    count_request(registry, &request.method, label, status);
    let elapsed = started.elapsed();
    registry
        .histogram(&format!(
            "http_request_duration_seconds{{route=\"{label}\"}}"
        ))
        .record(elapsed);
    ops.slowlog().record(
        &request.method,
        &request.path,
        label,
        status,
        elapsed.as_nanos() as u64,
        None,
        trace_id,
    );

    let content_type = content_type_for(&request.path, status);
    write_response_typed(stream, status, content_type, &body)
}

/// The active trace id (remote-adopted or process-local) as the same
/// 32-hex string the Chrome trace export stamps on every span event —
/// the slowlog's linkage key. `None` when tracing is disabled.
pub(crate) fn current_trace_id_hex() -> Option<String> {
    // `traceparent` is `00-<32 hex trace id>-<16 hex span id>-01`.
    obs::trace::traceparent().map(|tp| tp[3..35].to_string())
}

/// Picks the response `Content-Type` for a route's body — text for the
/// serialization exports and the metrics exposition, HTML for the
/// explorer, JSON otherwise.
pub(crate) fn content_type_for(path: &str, status: u16) -> &'static str {
    match path.rsplit('/').next() {
        Some("provn") | Some("turtle") | Some("dot") if status == 200 => {
            "text/plain; charset=utf-8"
        }
        Some("metrics") if status == 200 && path == "/metrics" => {
            "text/plain; version=0.0.4; charset=utf-8"
        }
        Some("") | Some("explorer") if status == 200 && path.len() <= "/explorer".len() => {
            "text/html; charset=utf-8"
        }
        _ => "application/json",
    }
}

/// Records one request in the per-route counter family. The method is a
/// peer-supplied string, so it is sanitized before being interpolated
/// into a Prometheus label; route labels come from the fixed
/// [`route_label`] template set.
pub(crate) fn count_request(registry: &obs::Registry, method: &str, route: &str, status: u16) {
    let method: String = method
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .take(16)
        .collect();
    registry
        .counter(&format!(
            "http_requests_total{{method=\"{method}\",route=\"{route}\",status=\"{status}\"}}"
        ))
        .inc();
}

/// Maps a request path onto its route template, so metrics aggregate
/// per route rather than per document id.
pub(crate) fn route_label(path: &str) -> &'static str {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        [] | ["explorer"] => "/explorer",
        ["healthz"] => "/healthz",
        ["metrics"] => "/metrics",
        ["api", "v0", "ledger"] => "/api/v0/ledger",
        ["api", "v0", "ledger", "verify"] => "/api/v0/ledger/verify",
        ["api", "v0", "replication", "frames"] => "/api/v0/replication/frames",
        ["api", "v0", "replication", "head"] => "/api/v0/replication/head",
        ["api", "v0", "replication", "sources"] => "/api/v0/replication/sources",
        ["api", "v0", "documents"] => "/api/v0/documents",
        ["api", "v0", "documents", _] => "/api/v0/documents/{id}",
        ["api", "v0", "documents", _, "stats"] => "/api/v0/documents/{id}/stats",
        ["api", "v0", "documents", _, "ancestors"] => "/api/v0/documents/{id}/ancestors",
        ["api", "v0", "documents", _, "subgraph"] => "/api/v0/documents/{id}/subgraph",
        ["api", "v0", "documents", _, "provn"] => "/api/v0/documents/{id}/provn",
        ["api", "v0", "documents", _, "turtle"] => "/api/v0/documents/{id}/turtle",
        ["api", "v0", "documents", _, "dot"] => "/api/v0/documents/{id}/dot",
        ["api", "v0", "documents", _, "deltas"] => "/api/v0/documents/{id}/deltas",
        ["api", "v0", "documents", _, "watch"] => "/api/v0/documents/{id}/watch",
        ["api", "v0", "documents", _, "query"] => "/api/v0/documents/{id}/query",
        ["api", "v0", "obs", "health"] => "/api/v0/obs/health",
        ["api", "v0", "obs", "timeseries"] => "/api/v0/obs/timeseries",
        ["api", "v0", "obs", "slowlog"] => "/api/v0/obs/slowlog",
        ["api", "v0", "obs", "alerts"] => "/api/v0/obs/alerts",
        ["api", "v0", "obs", "cluster"] => "/api/v0/obs/cluster",
        _ => "unmatched",
    }
}

/// Parses one request. `Err((status, message))` distinguishes plain
/// malformed input (400) from the header budget (431) and unimplemented
/// transfer encodings (501).
fn parse_request(
    reader: &mut BufReader<TcpStream>,
    cfg: &ServerConfig,
) -> Result<Option<Request>, (u16, String)> {
    // The request line and headers share one byte budget, enforced by
    // reading through a `Take`: a header flood hits the limit and gets
    // 431 instead of growing buffers without bound.
    let mut head = (&mut *reader).take(cfg.max_header_bytes as u64);
    let over_budget = || {
        (
            431,
            format!("header section exceeds {} bytes", cfg.max_header_bytes),
        )
    };

    let mut line = String::new();
    head.read_line(&mut line)
        .map_err(|e| (400, format!("read error: {e}")))?;
    if line.trim().is_empty() {
        return Ok(None);
    }
    if !line.ends_with('\n') && head.limit() == 0 {
        return Err(over_budget());
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or((400, "missing method".to_string()))?
        .to_string();
    let target = parts
        .next()
        .ok_or((400, "missing path".to_string()))?
        .to_string();
    let version = parts.next().ok_or((400, "missing version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err((400, format!("unsupported version {version}")));
    }

    let mut content_length = 0usize;
    let mut chunked = false;
    let mut traceparent = None;
    let mut keep_alive = false;
    let mut header_count = 0usize;
    loop {
        let mut header = String::new();
        let n = head
            .read_line(&mut header)
            .map_err(|e| (400, format!("read error: {e}")))?;
        if n == 0 {
            // No blank line ever arrived: either the byte budget ran
            // out exactly at a line boundary, or the peer closed early.
            // Both are rejections — not a complete header section.
            return Err(if head.limit() == 0 {
                over_budget()
            } else {
                (400, "header section ended without a blank line".to_string())
            });
        }
        let text = header.trim_end();
        if text.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > cfg.max_headers {
            return Err((431, format!("more than {} header fields", cfg.max_headers)));
        }
        if !header.ends_with('\n') && head.limit() == 0 {
            return Err(over_budget());
        }
        if let Some((name, value)) = text.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| (400, "bad content-length".to_string()))?;
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.to_ascii_lowercase().contains("chunked")
            {
                // Flagged here, rejected after the header section: the
                // old parser ignored it and misread the body as empty.
                chunked = true;
            } else if name.eq_ignore_ascii_case("traceparent") {
                traceparent = Some(value.trim().to_string());
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
            }
        }
    }
    drop(head);
    if chunked {
        return Err((
            501,
            "Transfer-Encoding: chunked is not supported; send Content-Length".to_string(),
        ));
    }
    if content_length > cfg.max_body {
        return Err((400, format!("body of {content_length} bytes exceeds limit")));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| (400, format!("short body: {e}")))?;

    Ok(Some(Request::from_parts(
        method,
        &target,
        body,
        traceparent,
        keep_alive,
    )))
}

/// Decodes `%XX` escapes; with `plus_is_space`, also maps `+` to a
/// space. Plus-as-space is query-string/form semantics only — in a path
/// segment `+` is a literal plus, so callers decoding paths pass
/// `false`.
fn percent_decode(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 3 <= bytes.len() {
            if let Some(b) = std::str::from_utf8(&bytes[i + 1..i + 3])
                .ok()
                .and_then(|h| u8::from_str_radix(h, 16).ok())
            {
                out.push(b);
                i += 3;
                continue;
            }
        }
        out.push(if plus_is_space && bytes[i] == b'+' {
            b' '
        } else {
            bytes[i]
        });
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Query-string decoding (`%XX` plus `+` → space).
fn url_decode(s: &str) -> String {
    percent_decode(s, true)
}

/// Acknowledges a committed upload. On a cluster-configured server the
/// upload is first streamed to its replica set; an under-replicated
/// write is answered 503 (the document *is* committed locally — the
/// client's retry replays idempotently under `PUT`, and duplicate
/// frame delivery is idempotent on the replicas).
fn acked_response(
    replicator: Option<&Replicator>,
    store: &DocumentStore,
    up: &crate::store::Upload,
) -> (u16, String) {
    if let Some(r) = replicator {
        let outcome = r.replicate(store, up);
        if !outcome.acked() {
            return (
                503,
                json!({
                    "error": format!(
                        "under-replicated: {}/{} replica confirmations",
                        outcome.confirmed, outcome.required
                    ),
                    "detail": outcome.errors,
                    "id": up.id,
                })
                .to_string(),
            );
        }
    }
    (201, json!({"id": up.id}).to_string())
}

pub(crate) fn route(
    req: &Request,
    store: &DocumentStore,
    chaos: &AtomicU32,
    registry: &obs::Registry,
    replicator: Option<&Replicator>,
    ops: &crate::ops::Ops,
) -> (u16, String) {
    // Path segments are percent-decoded individually so encoded
    // document ids round-trip; '/' produced by %2F stays inside its
    // segment and cannot change the route shape.
    let decoded: Vec<String> = req
        .path
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|s| percent_decode(s, false))
        .collect();
    let segments: Vec<&str> = decoded.iter().map(String::as_str).collect();
    let focus = |req: &Request| -> Option<QName> {
        let raw = req
            .query
            .iter()
            .find(|(k, _)| k == "focus")
            .map(|(_, v)| v.clone())?;
        QName::parse(&raw).ok()
    };

    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (200, json!({"status": "ok"}).to_string()),

        ("GET", ["metrics"]) => {
            // One scrape covers both registries: the server's request
            // metrics and the store's cache/backend instruments.
            let mut exposition = registry.render_prometheus();
            exposition.push_str(&store.registry().render_prometheus());
            (200, exposition)
        }

        ("GET", []) | ("GET", ["explorer"]) => (
            200,
            crate::explorer::render_html(&crate::explorer::summarize(store)),
        ),

        ("GET", ["api", "v0", "documents"]) => {
            (200, json!({"documents": store.list()}).to_string())
        }

        ("GET", ["api", "v0", "ledger"]) => {
            let entries: Vec<serde_json::Value> = store
                .ledger_entries()
                .into_iter()
                .map(|e| {
                    json!({
                        "index": e.index,
                        "document_id": e.document_id,
                        "document_digest": e.document_digest,
                        "prev_hash": e.prev_hash,
                        "entry_hash": e.entry_hash,
                    })
                })
                .collect();
            (200, json!({"entries": entries}).to_string())
        }

        ("POST", ["api", "v0", "documents"]) => {
            // Injected fault: pretend to be overloaded for the first
            // `chaos_fail_uploads` uploads (decrement-if-positive).
            if chaos
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
                .is_ok()
            {
                return (
                    503,
                    json!({"error": "injected fault: upload unavailable"}).to_string(),
                );
            }
            let text = match std::str::from_utf8(&req.body) {
                Ok(t) => t,
                Err(_) => return (400, json!({"error": "body is not UTF-8"}).to_string()),
            };
            match ProvDocument::from_json_str(text) {
                Ok(doc) => match store.upload_full(doc) {
                    Ok(up) => acked_response(replicator, store, &up),
                    Err(e) => error_response(&e),
                },
                Err(e) => (400, json!({"error": e.to_string()}).to_string()),
            }
        }

        ("PUT", ["api", "v0", "documents", id]) => {
            let text = match std::str::from_utf8(&req.body) {
                Ok(t) => t,
                Err(_) => return (400, json!({"error": "body is not UTF-8"}).to_string()),
            };
            match ProvDocument::from_json_str(text) {
                Ok(doc) => match store.upload_as_full(*id, doc) {
                    Ok(up) => acked_response(replicator, store, &up),
                    Err(e) => error_response(&e),
                },
                Err(e) => (400, json!({"error": e.to_string()}).to_string()),
            }
        }

        ("GET", ["api", "v0", "ledger", "verify"]) => match store.verify_all() {
            Ok(()) => (200, json!({"ok": true}).to_string()),
            Err(e) => (
                500,
                json!({"ok": false, "error": e.to_string()}).to_string(),
            ),
        },

        ("POST", ["api", "v0", "replication", "frames"]) => {
            let text = match std::str::from_utf8(&req.body) {
                Ok(t) => t,
                Err(_) => return (400, json!({"error": "body is not UTF-8"}).to_string()),
            };
            let v: serde_json::Value = match serde_json::from_str(text) {
                Ok(v) => v,
                Err(e) => return (400, json!({"error": format!("bad frame: {e}")}).to_string()),
            };
            let Some(source) = v.get("source").and_then(|s| s.as_str()) else {
                return (
                    400,
                    json!({"error": "frame is missing \"source\""}).to_string(),
                );
            };
            let Some(entry) = v.get("entry").and_then(crate::cluster::entry_from_json) else {
                return (
                    400,
                    json!({"error": "frame is missing a well-formed \"entry\""}).to_string(),
                );
            };
            let doc = v.get("document").and_then(|d| d.as_str());
            registry.counter("replication_frames_total").inc();
            registry
                .counter("replication_bytes_total")
                .add(req.body.len() as u64);
            match store.apply_replicated(source, entry, doc) {
                Ok(outcome) => {
                    let applied = match outcome {
                        crate::store::ReplicationApply::Applied => "applied",
                        crate::store::ReplicationApply::Duplicate => "duplicate",
                        crate::store::ReplicationApply::ChainOnly => "chain_only",
                    };
                    (200, json!({"applied": applied}).to_string())
                }
                Err(ServiceError::Replication {
                    reason,
                    expect_index,
                }) => {
                    registry.counter("replication_rejects_total").inc();
                    (
                        409,
                        json!({"error": reason, "expect_index": expect_index}).to_string(),
                    )
                }
                Err(e) => error_response(&e),
            }
        }

        ("GET", ["api", "v0", "replication", "head"]) => {
            match req.query.iter().find(|(k, _)| k == "source") {
                None => (
                    400,
                    json!({"error": "missing ?source=<node-id>"}).to_string(),
                ),
                Some((_, source)) => {
                    let (next, head) = store.replication_head(source);
                    (
                        200,
                        json!({"source": source, "next_index": next, "head_hash": head})
                            .to_string(),
                    )
                }
            }
        }

        ("GET", ["api", "v0", "replication", "sources"]) => {
            let sources: Vec<serde_json::Value> = store
                .replication_sources()
                .into_iter()
                .map(|(source, entries)| json!({"source": source, "entries": entries}))
                .collect();
            (200, json!({"sources": sources}).to_string())
        }

        ("GET", ["api", "v0", "documents", id]) => match store.document_json(id) {
            Ok(json) => (200, json),
            Err(e) => error_response(&e),
        },

        ("DELETE", ["api", "v0", "documents", id]) => match store.delete(id) {
            Ok(true) => (200, json!({"deleted": id}).to_string()),
            Ok(false) => not_found(id),
            Err(e) => error_response(&e),
        },

        ("GET", ["api", "v0", "documents", id, "stats"]) => match store.get(id) {
            Some(doc) => {
                let s = doc.stats();
                // The cached index's statistics ride along: the same
                // node/edge/per-kind counters the query planner costs
                // anchor sides with.
                let graph_stats = match store.graph(id) {
                    Ok(shared) => {
                        let gs = shared.index().stats();
                        let mut per_kind = serde_json::Map::new();
                        for (kind, count) in &gs.per_kind {
                            per_kind.insert(kind.json_key().to_string(), json!(count));
                        }
                        json!({
                            "nodes": gs.nodes,
                            "edges": gs.edges,
                            "avg_degree": gs.avg_degree(),
                            "per_kind": serde_json::Value::Object(per_kind),
                        })
                    }
                    Err(_) => serde_json::Value::Null,
                };
                (
                    200,
                    json!({
                        "entities": s.entities,
                        "activities": s.activities,
                        "agents": s.agents,
                        "relations": s.relations,
                        "bundles": s.bundles,
                        "graph": graph_stats,
                    })
                    .to_string(),
                )
            }
            None => not_found(id),
        },

        ("GET", ["api", "v0", "documents", id, "ancestors"]) => match focus(req) {
            None => (
                400,
                json!({"error": "missing or invalid ?focus=prefix:local"}).to_string(),
            ),
            Some(q) => match store.ancestors(id, &q) {
                Ok(anc) => (
                    200,
                    json!({"focus": q.to_string(),
                           "ancestors": anc.iter().map(|a| a.to_string()).collect::<Vec<_>>()})
                    .to_string(),
                ),
                Err(e) => error_response(&e),
            },
        },

        ("GET", ["api", "v0", "documents", id, "provn"]) => match store.get(id) {
            Some(doc) => (200, prov_model::provn::to_provn(&doc)),
            None => not_found(id),
        },

        ("GET", ["api", "v0", "documents", id, "turtle"]) => match store.get(id) {
            Some(doc) => (200, prov_model::turtle::to_turtle(&doc)),
            None => not_found(id),
        },

        ("GET", ["api", "v0", "documents", id, "dot"]) => match store.get(id) {
            Some(doc) => (
                200,
                prov_graph::to_dot(&doc, &prov_graph::DotOptions::default()),
            ),
            None => not_found(id),
        },

        ("POST", ["api", "v0", "documents", id, "deltas"]) => {
            let text = match std::str::from_utf8(&req.body) {
                Ok(t) => t,
                Err(_) => return (400, json!({"error": "body is not UTF-8"}).to_string()),
            };
            match ProvDocument::from_json_str(text) {
                Ok(delta) => match store.merge_delta(id, &delta) {
                    Ok((up, version)) => {
                        // The merged document replicates through the
                        // ordinary frame path: the Upload carries the
                        // full post-merge bytes, so replicas need no
                        // delta-aware logic.
                        let (status, body) = acked_response(replicator, store, &up);
                        if status == 201 {
                            (200, json!({"id": up.id, "version": version}).to_string())
                        } else {
                            (status, body)
                        }
                    }
                    Err(e) => error_response(&e),
                },
                Err(e) => (400, json!({"error": e.to_string()}).to_string()),
            }
        }

        ("GET", ["api", "v0", "documents", id, "watch"]) => {
            let num = |key: &str| {
                req.query
                    .iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| v.parse::<u64>().ok())
            };
            let after = num("after").unwrap_or(0);
            let timeout_ms = num("timeout_ms").unwrap_or(10_000).min(30_000);
            // Long-poll: this blocks the worker thread, not the reactor.
            // The connection counts as in-flight the whole time, so the
            // idle-reap sweep leaves it alone while it is parked here.
            match store.wait_for_newer(id, after, Duration::from_millis(timeout_ms)) {
                WatchOutcome::Gone => not_found(id),
                WatchOutcome::Unchanged(version) => (
                    200,
                    json!({"id": *id, "version": version, "changed": false}).to_string(),
                ),
                WatchOutcome::Changed(version) => match store.document_json(id) {
                    // The stored canonical bytes embed verbatim — the
                    // watcher receives exactly what a plain GET serves.
                    Ok(doc_json) => (
                        200,
                        format!(
                            "{{\"id\":{},\"version\":{version},\"changed\":true,\"document\":{doc_json}}}",
                            json!(*id)
                        ),
                    ),
                    Err(e) => error_response(&e),
                },
            }
        }

        ("GET", ["api", "v0", "documents", id, "subgraph"]) => match focus(req) {
            None => (
                400,
                json!({"error": "missing or invalid ?focus=prefix:local"}).to_string(),
            ),
            Some(q) => match store.subgraph(id, &q) {
                Ok(sub) => (200, sub.to_json().to_string()),
                Err(e) => error_response(&e),
            },
        },

        ("POST", ["api", "v0", "documents", id, "query"]) => handle_query(store, id, &req.body),

        ("GET", ["api", "v0", "obs", "health"]) => {
            let (ready, body) = crate::ops::health_json(store, registry);
            (if ready { 200 } else { 503 }, body)
        }

        ("GET", ["api", "v0", "obs", "timeseries"]) => {
            let param = |key: &str| {
                req.query
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.clone())
            };
            let Some(metric) = param("metric") else {
                return (400, json!({"error": "missing ?metric=<name>"}).to_string());
            };
            let num =
                |key: &str, default: f64| param(key).and_then(|v| v.parse().ok()).unwrap_or(default);
            let since_s = num("since", 300.0).clamp(0.0, 86_400.0);
            let step_s = num("step", 0.0).clamp(0.0, 3_600.0);
            let now_s = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs_f64())
                .unwrap_or(0.0);
            (200, ops.timeseries_json(&metric, since_s, step_s, now_s))
        }

        ("GET", ["api", "v0", "obs", "slowlog"]) => (200, ops.slowlog_json()),

        ("GET", ["api", "v0", "obs", "alerts"]) => (200, ops.alerts_json()),

        ("GET", ["api", "v0", "obs", "cluster"]) => {
            // Render this node's own exposition exactly the way
            // `/metrics` does, then fan out to the peers.
            let mut exposition = registry.render_prometheus();
            exposition.push_str(&store.registry().render_prometheus());
            (
                200,
                crate::ops::cluster_json(store, registry, replicator, &exposition),
            )
        }

        (_, _) => (404, json!({"error": "no such route"}).to_string()),
    }
}

// ---------------------------------------------------------------------------
// The lineage query endpoint
// ---------------------------------------------------------------------------

/// Serves one `POST /api/v0/documents/{id}/query` request.
///
/// The body is a JSON object selecting exactly one scenario:
///
/// * `{"query": <PathQuery IR>}` — a planned path-pattern query;
/// * `{"audit": "leakage", "test"?: <filter>, "training"?: <filter>}`;
/// * `{"audit": "gdpr", "sample": "pre:x", "model": "pre:y"}`;
/// * `{"audit": "fairness", "model": "pre:y", "group_key"?: "pre:k"}`;
/// * `{"audit": "join", "digest_key"?: "pre:k"}`.
///
/// Two cross-cutting keys: `"docs": [id, ...]` joins the named
/// documents into the queried view (canonical merge), and
/// `"render": "dot"` additionally returns the matched subgraph as
/// Graphviz DOT under `"dot"`.
fn handle_query(store: &DocumentStore, id: &str, body: &[u8]) -> (u16, String) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, json!({"error": "body is not UTF-8"}).to_string()),
    };
    let v: serde_json::Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => {
            return (
                400,
                json!({"error": format!("body is not JSON: {e}")}).to_string(),
            )
        }
    };
    let Some(obj) = v.as_object() else {
        return (
            400,
            json!({"error": "body must be a JSON object"}).to_string(),
        );
    };

    let extra: Vec<String> = match obj.get("docs") {
        None => Vec::new(),
        Some(serde_json::Value::Array(ids)) => {
            let mut out = Vec::with_capacity(ids.len());
            for entry in ids {
                match entry.as_str() {
                    Some(s) => out.push(s.to_string()),
                    None => {
                        return (
                            400,
                            json!({"error": "\"docs\" must be an array of document ids"})
                                .to_string(),
                        )
                    }
                }
            }
            out
        }
        Some(_) => {
            return (
                400,
                json!({"error": "\"docs\" must be an array of document ids"}).to_string(),
            )
        }
    };
    let render_dot = matches!(obj.get("render").and_then(|r| r.as_str()), Some("dot"));
    let documents_json = || {
        let mut all = vec![json!(*id)];
        all.extend(extra.iter().map(|e| json!(e)));
        serde_json::Value::Array(all)
    };

    match (obj.get("query"), obj.get("audit").and_then(|a| a.as_str())) {
        (Some(q), None) => {
            let query = match PathQuery::from_json(q) {
                Ok(q) => q,
                Err(e) => return (400, json!({"error": e.to_string()}).to_string()),
            };
            let (set, shared) = match store.run_query(id, &extra, &query) {
                Ok(r) => r,
                Err(e) => return error_response(&e),
            };
            let rows: Vec<serde_json::Value> = set.rows.iter().map(row_json).collect();
            let mut out = match json!({
                "scenario": "path",
                "documents": documents_json(),
                "plan": plan_json(&set.plan),
                "rows": rows,
                "row_count": set.rows.len(),
                "truncated": set.truncated,
            }) {
                serde_json::Value::Object(o) => o,
                _ => unreachable!("json! object literal"),
            };
            if render_dot {
                let sub = prov_graph::subgraph(shared.document(), &set.node_set());
                out.insert(
                    "dot".into(),
                    json!(prov_graph::to_dot(&sub, &prov_graph::DotOptions::default())),
                );
            }
            (200, serde_json::Value::Object(out).to_string())
        }

        (None, Some(scenario)) => handle_audit(
            store,
            id,
            &extra,
            scenario,
            obj,
            render_dot,
            documents_json(),
        ),

        _ => (
            400,
            json!({"error": "body must contain exactly one of \"query\" or \"audit\""}).to_string(),
        ),
    }
}

/// JSON rendering of a planner decision.
fn plan_json(plan: &prov_graph::QueryPlan) -> serde_json::Value {
    let side = match plan.side {
        prov_graph::PlanSide::FromStart => "from_start",
        prov_graph::PlanSide::FromEnd => "from_end",
    };
    json!({
        "side": side,
        "start_candidates": plan.start_candidates,
        "end_candidates": plan.end_candidates,
        "cost_from_start": plan.cost_from_start,
        "cost_from_end": plan.cost_from_end,
        "reason": plan.reason,
    })
}

/// JSON rendering of one `(start, end)` match with its witness path.
fn row_json(row: &prov_graph::MatchRow) -> serde_json::Value {
    json!({
        "start": row.start.to_string(),
        "end": row.end.to_string(),
        "path": row.path.iter().map(|q| q.to_string()).collect::<Vec<String>>(),
    })
}

/// Dispatches the `"audit"` scenarios of [`handle_query`].
fn handle_audit(
    store: &DocumentStore,
    id: &str,
    extra: &[String],
    scenario: &str,
    obj: &serde_json::Map<String, serde_json::Value>,
    render_dot: bool,
    documents: serde_json::Value,
) -> (u16, String) {
    use prov_graph::audit;

    let qname_arg = |key: &str| -> Result<Option<QName>, String> {
        match obj.get(key) {
            None => Ok(None),
            Some(v) => match v.as_str().map(QName::parse) {
                Some(Ok(q)) => Ok(Some(q)),
                _ => Err(format!("\"{key}\" must be a \"prefix:local\" string")),
            },
        }
    };
    let filter_arg = |key: &str| -> Result<Option<ElementFilter>, String> {
        match obj.get(key) {
            None => Ok(None),
            Some(v) => ElementFilter::from_json(v)
                .map(Some)
                .map_err(|e| format!("\"{key}\": {e}")),
        }
    };
    macro_rules! arg {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                Err(msg) => return (400, json!({ "error": msg }).to_string()),
            }
        };
    }

    // The join audit builds its own merged view; every other scenario
    // runs over the (possibly joined) query view.
    if scenario == "join" {
        let digest_key = arg!(qname_arg("digest_key"));
        let mut docs = match store.get(id) {
            Some(d) => vec![d],
            None => return error_response(&ServiceError::NotFound { id: id.to_string() }),
        };
        for other in extra {
            match store.get(other) {
                Some(d) => docs.push(d),
                None => {
                    return error_response(&ServiceError::NotFound {
                        id: other.to_string(),
                    })
                }
            }
        }
        store.note_query("join");
        let refs: Vec<&ProvDocument> = docs.iter().map(|d| &**d).collect();
        let t0 = Instant::now();
        let (join, _merged) = match audit::cross_run_join(&refs, digest_key) {
            Ok(r) => r,
            Err(e) => {
                return error_response(&ServiceError::Conflict {
                    reason: format!("joining {id} + {extra:?}: {e}"),
                })
            }
        };
        // The merge + digest scan is the whole cost; there is no
        // separate planning phase to split out.
        store.note_query_timing(Duration::ZERO, t0.elapsed());
        let joined: Vec<serde_json::Value> = join
            .joined
            .iter()
            .map(|j| {
                json!({
                    "digest": j.digest,
                    "artifacts": j.artifacts.iter().map(|q| q.to_string()).collect::<Vec<String>>(),
                    "producers": j.producers.iter().map(|q| q.to_string()).collect::<Vec<String>>(),
                    "consumers": j.consumers.iter().map(|q| q.to_string()).collect::<Vec<String>>(),
                    "shared": j.is_shared(),
                })
            })
            .collect();
        return (
            200,
            json!({
                "scenario": "join",
                "documents": documents,
                "digest_key": join.digest_key.to_string(),
                "merged_nodes": join.merged_nodes,
                "merged_edges": join.merged_edges,
                "shared_count": join.shared().len(),
                "joined": joined,
            })
            .to_string(),
        );
    }

    let shared = match store.query_view(id, extra) {
        Ok(s) => s,
        Err(e) => return error_response(&e),
    };
    let graph = shared.view();

    // Each audit exposes the IR behind it, so the plan the service
    // reports is exactly the plan the audit executes under.
    let (audit_query, result): (PathQuery, _) = match scenario {
        "leakage" => {
            let test = arg!(filter_arg("test")).unwrap_or_else(audit::default_test_filter);
            let training =
                arg!(filter_arg("training")).unwrap_or_else(audit::default_training_filter);
            store.note_query("leakage");
            let query = audit::leakage_query(test.clone(), training.clone());
            let t0 = Instant::now();
            let plan = prov_graph::plan(&graph, &query);
            let planned = t0.elapsed();
            let t1 = Instant::now();
            let report = audit::data_leakage(&graph, Some(test), Some(training));
            store.note_query_timing(planned, t1.elapsed());
            let leaks: Vec<serde_json::Value> = report.leaks.iter().map(row_json).collect();
            (
                query,
                json!({
                    "scenario": "leakage",
                    "documents": documents,
                    "clean": report.is_clean(),
                    "test_artifacts": report.test_artifacts,
                    "training_activities": report.training_activities,
                    "leaks": leaks,
                    "plan": plan_json(&plan),
                }),
            )
        }
        "gdpr" => {
            let sample = match arg!(qname_arg("sample")) {
                Some(q) => q,
                None => {
                    return (
                        400,
                        json!({"error": "\"gdpr\" requires \"sample\" and \"model\" qnames"})
                            .to_string(),
                    )
                }
            };
            let model = match arg!(qname_arg("model")) {
                Some(q) => q,
                None => {
                    return (
                        400,
                        json!({"error": "\"gdpr\" requires \"sample\" and \"model\" qnames"})
                            .to_string(),
                    )
                }
            };
            store.note_query("gdpr");
            let query = audit::gdpr_query(&sample, &model);
            let t0 = Instant::now();
            let plan = prov_graph::plan(&graph, &query);
            let planned = t0.elapsed();
            let t1 = Instant::now();
            let report = audit::gdpr_trained_on(&graph, &sample, &model);
            store.note_query_timing(planned, t1.elapsed());
            (
                query,
                json!({
                    "scenario": "gdpr",
                    "documents": documents,
                    "sample": report.sample.to_string(),
                    "model": report.model.to_string(),
                    "trained_on": report.trained_on,
                    "path": report.path.iter().map(|q| q.to_string()).collect::<Vec<String>>(),
                    "plan": plan_json(&plan),
                }),
            )
        }
        "fairness" => {
            let model = match arg!(qname_arg("model")) {
                Some(q) => q,
                None => {
                    return (
                        400,
                        json!({"error": "\"fairness\" requires a \"model\" qname"}).to_string(),
                    )
                }
            };
            let group_key = arg!(qname_arg("group_key")).unwrap_or_else(|| QName::yprov("group"));
            store.note_query("fairness");
            let query = audit::fairness_query(&model, &group_key);
            let t0 = Instant::now();
            let plan = prov_graph::plan(&graph, &query);
            let planned = t0.elapsed();
            let t1 = Instant::now();
            let report = audit::group_fairness(&graph, &model, &group_key);
            store.note_query_timing(planned, t1.elapsed());
            let mut groups = serde_json::Map::new();
            for (value, count) in &report.groups {
                groups.insert(value.clone(), json!(count));
            }
            (
                query,
                json!({
                    "scenario": "fairness",
                    "documents": documents,
                    "model": report.model.to_string(),
                    "group_key": report.group_key.to_string(),
                    "groups": serde_json::Value::Object(groups),
                    "total": report.total,
                    "balance": report.balance(),
                    "plan": plan_json(&plan),
                }),
            )
        }
        other => {
            return (
                400,
                json!({
                    "error": format!(
                        "unknown audit {other:?}: expected \"leakage\", \"gdpr\", \
                         \"fairness\" or \"join\""
                    )
                })
                .to_string(),
            )
        }
    };

    let mut out = match result {
        serde_json::Value::Object(o) => o,
        _ => unreachable!("audit responses are objects"),
    };
    if render_dot {
        // Re-run the audit's own query for its witness nodes — the
        // matched subgraph is what the explorer renders.
        let set = prov_graph::execute(&graph, &audit_query);
        let sub = prov_graph::subgraph(shared.document(), &set.node_set());
        out.insert(
            "dot".into(),
            json!(prov_graph::to_dot(&sub, &prov_graph::DotOptions::default())),
        );
    }
    (200, serde_json::Value::Object(out).to_string())
}

fn not_found(id: &str) -> (u16, String) {
    (
        404,
        json!({"error": format!("document {id:?} not found")}).to_string(),
    )
}

/// Maps a [`ServiceError`] onto its HTTP status and a JSON error body.
fn error_response(err: &ServiceError) -> (u16, String) {
    (
        err.http_status(),
        json!({"error": err.to_string()}).to_string(),
    )
}

fn write_response(stream: TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response_typed(stream, status, "application/json", body)
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Encodes a response head (status line + headers + blank line). Both
/// cores use this, so the `Connection: close` byte sequence is
/// identical to the original single-shot server's.
pub(crate) fn encode_response_head(
    status: u16,
    content_type: &str,
    content_length: usize,
    keep_alive: bool,
) -> String {
    let reason = status_reason(status);
    // Every 503 — watermark shed, injected fault, under-replicated
    // write — tells the client when to come back; the retrying client
    // honors this over its own backoff schedule.
    let retry_after = if status == 503 {
        "Retry-After: 1\r\n"
    } else {
        ""
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {content_length}\r\n{retry_after}Connection: {connection}\r\n\r\n"
    )
}

fn write_response_typed(
    mut stream: TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = encode_response_head(status, content_type, body.len(), false);
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

// ---------------------------------------------------------------------------
// A tiny blocking client, used by tests and examples.
// ---------------------------------------------------------------------------

/// Sends one HTTP request and returns `(status, body)`.
pub fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes())?;
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc_json() -> String {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(QName::new("ex", "data"));
        doc.activity(QName::new("ex", "train"));
        doc.entity(QName::new("ex", "model"));
        doc.used(QName::new("ex", "train"), QName::new("ex", "data"));
        doc.was_generated_by(QName::new("ex", "model"), QName::new("ex", "train"));
        doc.to_json_string().unwrap()
    }

    fn start() -> Server {
        Server::bind("127.0.0.1:0", DocumentStore::new(), ServerConfig::default()).unwrap()
    }

    /// Writes raw bytes and reads whatever comes back, tolerating a
    /// reset after the response (the server may close with unread
    /// request bytes still queued, which turns its close into an RST).
    fn raw_request(addr: std::net::SocketAddr, raw: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(raw);
        let _ = s.flush();
        let mut out = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(_) => break,
            }
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn health_endpoint() {
        let server = start();
        let (status, body) = request(server.addr(), "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("ok"));
        server.shutdown();
    }

    #[test]
    fn upload_fetch_delete_cycle() {
        let server = start();
        let (status, body) = request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some(&sample_doc_json()),
        )
        .unwrap();
        assert_eq!(status, 201, "{body}");
        let id: serde_json::Value = serde_json::from_str(&body).unwrap();
        let id = id["id"].as_str().unwrap().to_string();

        let (status, listing) = request(server.addr(), "GET", "/api/v0/documents", None).unwrap();
        assert_eq!(status, 200);
        assert!(listing.contains(&id));

        let (status, fetched) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        let parsed = ProvDocument::from_json_str(&fetched).unwrap();
        assert_eq!(parsed.element_count(), 3);

        let (status, _) = request(
            server.addr(),
            "DELETE",
            &format!("/api/v0/documents/{id}"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        let (status, _) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}"),
            None,
        )
        .unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn stats_and_lineage_endpoints() {
        let server = start();
        let (_, body) = request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some(&sample_doc_json()),
        )
        .unwrap();
        let id: serde_json::Value = serde_json::from_str(&body).unwrap();
        let id = id["id"].as_str().unwrap().to_string();

        let (status, stats) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}/stats"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        let stats: serde_json::Value = serde_json::from_str(&stats).unwrap();
        assert_eq!(stats["entities"], 2);
        assert_eq!(stats["activities"], 1);

        let (status, anc) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}/ancestors?focus=ex:model"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(anc.contains("ex:data"), "{anc}");

        let (status, sub) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}/subgraph?focus=ex:train"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(ProvDocument::from_json_str(&sub).unwrap().element_count() == 3);
        server.shutdown();
    }

    #[test]
    fn ledger_endpoint_exposes_chain() {
        let dir = std::env::temp_dir().join(format!("ysvc_http_ledger_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = DocumentStore::persistent(&dir).unwrap();
        let server = Server::bind("127.0.0.1:0", store, ServerConfig::default()).unwrap();
        request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some(&sample_doc_json()),
        )
        .unwrap();
        let (status, body) = request(server.addr(), "GET", "/api/v0/ledger", None).unwrap();
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        let entries = v["entries"].as_array().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0]["index"], 0);
        assert!(entries[0]["entry_hash"].as_str().unwrap().len() == 64);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explorer_page_served_at_root() {
        let server = start();
        let (_, body) = request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some(&sample_doc_json()),
        )
        .unwrap();
        let _ = body;
        for path in ["/", "/explorer"] {
            let (status, html) = request(server.addr(), "GET", path, None).unwrap();
            assert_eq!(status, 200, "{path}");
            assert!(html.contains("yProv Explorer"), "{path}");
            assert!(html.contains("doc-1"));
        }
        server.shutdown();
    }

    #[test]
    fn export_endpoints_render_all_serializations() {
        let server = start();
        let (_, body) = request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some(&sample_doc_json()),
        )
        .unwrap();
        let id: serde_json::Value = serde_json::from_str(&body).unwrap();
        let id = id["id"].as_str().unwrap().to_string();

        let (status, provn) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}/provn"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(provn.contains("wasGeneratedBy(ex:model, ex:train)"));

        let (status, ttl) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}/turtle"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(ttl.contains("ex:model prov:wasGeneratedBy ex:train ."));

        let (status, dot) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}/dot"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(dot.starts_with("digraph"));

        let (status, _) =
            request(server.addr(), "GET", "/api/v0/documents/ghost/provn", None).unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn bad_requests_rejected() {
        let server = start();
        let (status, _) = request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some("{not json"),
        )
        .unwrap();
        assert_eq!(status, 400);
        let (status, _) = request(server.addr(), "GET", "/api/v0/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = request(
            server.addr(),
            "GET",
            "/api/v0/documents/doc-1/ancestors",
            None,
        )
        .unwrap();
        assert_eq!(status, 400, "missing focus");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = start();
        let addr = server.addr();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let doc = sample_doc_json();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    let (status, _) =
                        request(addr, "POST", "/api/v0/documents", Some(&doc)).unwrap();
                    assert_eq!(status, 201);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (_, listing) = request(addr, "GET", "/api/v0/documents", None).unwrap();
        let listing: serde_json::Value = serde_json::from_str(&listing).unwrap();
        assert_eq!(listing["documents"].as_array().unwrap().len(), 80);
        server.shutdown();
    }

    #[test]
    fn chaos_config_fails_first_uploads_then_recovers() {
        let server = Server::bind(
            "127.0.0.1:0",
            DocumentStore::new(),
            ServerConfig {
                chaos_fail_uploads: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let doc = sample_doc_json();
        let mut statuses = Vec::new();
        for _ in 0..4 {
            let (status, _) =
                request(server.addr(), "POST", "/api/v0/documents", Some(&doc)).unwrap();
            statuses.push(status);
        }
        assert_eq!(statuses, vec![503, 503, 201, 201]);
        // Reads were never affected.
        let (status, _) = request(server.addr(), "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn slow_peer_times_out_and_overload_sheds_503() {
        // One worker, queue depth 1: a peer that stalls mid-request pins
        // the worker until the read timeout, and further connections
        // beyond the queue are shed with 503 instead of hanging.
        let server = Server::bind(
            "127.0.0.1:0",
            DocumentStore::new(),
            ServerConfig {
                workers: 1,
                queue_depth: 1,
                read_timeout: Duration::from_secs(2),
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();

        // The stalled peer: opens a connection, sends half a request
        // line, never finishes.
        let started = std::time::Instant::now();
        let mut stall = TcpStream::connect(addr).unwrap();
        stall.write_all(b"GET /healthz HT").unwrap();
        std::thread::sleep(Duration::from_millis(200)); // let the worker pick it up

        // Burst while the worker is pinned: more requests than worker +
        // queue can hold, so at least one must be shed.
        let mut handles = Vec::new();
        for _ in 0..6 {
            handles.push(std::thread::spawn(move || {
                request(addr, "GET", "/healthz", None).map(|(s, _)| s)
            }));
        }
        let statuses: Vec<u16> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap_or(0))
            .collect();
        assert!(
            statuses.iter().any(|&s| s == 503),
            "expected load shedding, got {statuses:?}"
        );

        // The stalled connection is cut loose by the read timeout — the
        // server answers 400 instead of blocking forever.
        stall
            .set_read_timeout(Some(Duration::from_secs(8)))
            .unwrap();
        let mut response = String::new();
        BufReader::new(&stall)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(
            started.elapsed() < Duration::from_secs(8),
            "server held a dead peer too long: {:?}",
            started.elapsed()
        );

        // After the stall clears, service is healthy again.
        let (status, _) = request(addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn shed_and_injected_503s_carry_retry_after() {
        let server = Server::bind(
            "127.0.0.1:0",
            DocumentStore::new(),
            ServerConfig {
                chaos_fail_uploads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let resp = raw_request(
            server.addr(),
            b"POST /api/v0/documents HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
        assert!(resp.contains("Retry-After: 1"), "{resp}");
        // Non-503 responses never carry the header.
        let ok = raw_request(server.addr(), b"GET /healthz HTTP/1.1\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        assert!(!ok.contains("Retry-After"), "{ok}");
        server.shutdown();
    }

    #[test]
    fn url_decoding() {
        assert_eq!(url_decode("ex%3Amodel"), "ex:model");
        assert_eq!(url_decode("a+b"), "a b");
        assert_eq!(url_decode("plain"), "plain");
        assert_eq!(url_decode("bad%"), "bad%");
        assert_eq!(url_decode("%zz"), "%zz");
    }

    #[test]
    fn plus_stays_literal_in_path_segments() {
        assert_eq!(percent_decode("a+b", false), "a+b");
        assert_eq!(percent_decode("a+b", true), "a b");
        assert_eq!(percent_decode("doc%2D1", false), "doc-1");
        assert_eq!(percent_decode("bad%", false), "bad%");
    }

    #[test]
    fn percent_encoded_document_ids_round_trip() {
        let server = start();
        let (status, body) = request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some(&sample_doc_json()),
        )
        .unwrap();
        assert_eq!(status, 201, "{body}");
        // The store names it "doc-1"; fetch, stat, and delete it through
        // its percent-encoded spelling.
        let (status, fetched) =
            request(server.addr(), "GET", "/api/v0/documents/doc%2D1", None).unwrap();
        assert_eq!(status, 200, "{fetched}");
        assert_eq!(
            ProvDocument::from_json_str(&fetched)
                .unwrap()
                .element_count(),
            3
        );
        let (status, _) = request(
            server.addr(),
            "GET",
            "/api/v0/documents/doc%2D1/stats",
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        let (status, _) =
            request(server.addr(), "DELETE", "/api/v0/documents/doc%2D1", None).unwrap();
        assert_eq!(status, 200);
        let (status, _) = request(server.addr(), "GET", "/api/v0/documents/doc-1", None).unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn header_byte_flood_rejected_with_431() {
        let server = start();
        let mut flood = String::from("GET /healthz HTTP/1.1\r\n");
        while flood.len() < 48 * 1024 {
            flood.push_str("X-Flood: aaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        flood.push_str("\r\n");
        let resp = raw_request(server.addr(), flood.as_bytes());
        // The server closes with flood bytes still unread, so the 431
        // may be lost to a reset on some stacks — but it is always
        // counted, and the server always survives.
        assert!(
            resp.is_empty() || resp.starts_with("HTTP/1.1 431"),
            "unexpected response: {}",
            &resp[..resp.len().min(120)]
        );
        let scrape = server.registry().render_prometheus();
        assert!(scrape.contains("status=\"431\""), "{scrape}");
        let (status, _) = request(server.addr(), "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200, "server must survive the flood");
        server.shutdown();
    }

    #[test]
    fn too_many_header_fields_rejected_with_431() {
        let server = start();
        // Exactly one header past the cap, and no terminating blank
        // line: the server consumes every byte sent before rejecting,
        // so the close is clean and the 431 always arrives.
        let mut flood = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..=ServerConfig::default().max_headers {
            flood.push_str(&format!("X-{i}: v\r\n"));
        }
        let resp = raw_request(server.addr(), flood.as_bytes());
        assert!(
            resp.starts_with("HTTP/1.1 431"),
            "unexpected response: {}",
            &resp[..resp.len().min(120)]
        );
        let (status, _) = request(server.addr(), "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn chunked_transfer_encoding_rejected_with_501() {
        let server = start();
        let resp = raw_request(
            server.addr(),
            b"POST /api/v0/documents HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        );
        assert!(
            resp.starts_with("HTTP/1.1 501"),
            "unexpected response: {}",
            &resp[..resp.len().min(120)]
        );
        assert!(resp.contains("not supported"), "{resp}");
        let (status, _) = request(server.addr(), "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn metrics_endpoint_reports_route_counters() {
        let server = start();
        let (status, first) = request(server.addr(), "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        let _ = first; // the first scrape may predate any instrument

        let (status, _) = request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some(&sample_doc_json()),
        )
        .unwrap();
        assert_eq!(status, 201);

        let (status, scrape) = request(server.addr(), "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert!(
            scrape.contains("# TYPE http_requests_total counter"),
            "{scrape}"
        );
        assert!(
            scrape.contains(
                "# HELP http_requests_total Requests served, by method, route and status."
            ),
            "{scrape}"
        );
        assert!(
            scrape.contains(
                "http_requests_total{method=\"POST\",route=\"/api/v0/documents\",status=\"201\"} 1"
            ),
            "{scrape}"
        );
        assert!(
            scrape.contains(
                "http_requests_total{method=\"GET\",route=\"/metrics\",status=\"200\"} 1"
            ),
            "{scrape}"
        );
        assert!(
            scrape.contains("http_request_duration_seconds_count{route=\"/api/v0/documents\"} 1"),
            "{scrape}"
        );
        assert!(
            scrape.contains("http_request_duration_seconds_bucket{route=\"/api/v0/documents\","),
            "{scrape}"
        );
        server.shutdown();
    }

    #[test]
    fn metrics_scrape_uses_the_prometheus_text_content_type() {
        let server = start();
        let resp = raw_request(
            server.addr(),
            b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(
            resp.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
            "scrape must use the 0.0.4 exposition content type: {}",
            &resp[..resp.len().min(300)]
        );
        server.shutdown();
    }

    #[test]
    fn every_scraped_metric_family_carries_help_and_type() {
        let server = start();
        // Exercise enough surface that every family registers: a
        // store write, a lineage query, a parse error, and a scrape.
        let (status, body) = request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some(&sample_doc_json()),
        )
        .unwrap();
        assert_eq!(status, 201);
        let id: serde_json::Value = serde_json::from_str(&body).unwrap();
        let id = id["id"].as_str().unwrap().to_string();
        let (status, _) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}/ancestors?focus=ex:model"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        raw_request(server.addr(), b"NOT A REQUEST\r\n\r\n");

        let (status, scrape) = request(server.addr(), "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        let mut typed = std::collections::BTreeSet::new();
        let mut helped = std::collections::BTreeSet::new();
        for line in scrape.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                typed.insert(rest.split(' ').next().unwrap().to_string());
            } else if let Some(rest) = line.strip_prefix("# HELP ") {
                helped.insert(rest.split(' ').next().unwrap().to_string());
            }
        }
        let mut families_seen = 0;
        for line in scrape.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let name = line.split(['{', ' ']).next().unwrap();
            // Histogram samples render under `_bucket`/`_sum`/`_count`
            // suffixes of their family name.
            let family = std::iter::once(name)
                .chain(
                    ["_bucket", "_sum", "_count"]
                        .iter()
                        .filter_map(|s| name.strip_suffix(s)),
                )
                .find(|f| typed.contains(*f))
                .unwrap_or_else(|| panic!("sample {name} has no # TYPE line:\n{scrape}"));
            assert!(
                helped.contains(family),
                "family {family} has no # HELP line:\n{scrape}"
            );
            families_seen += 1;
        }
        assert!(families_seen > 0, "scrape was empty: {scrape}");
        server.shutdown();
    }

    fn delta_json() -> String {
        let mut delta = ProvDocument::new();
        delta.namespaces_mut().register("ex", "http://ex/").unwrap();
        delta.activity(QName::new("ex", "eval"));
        delta.entity(QName::new("ex", "report"));
        delta.used(QName::new("ex", "eval"), QName::new("ex", "model"));
        delta.was_generated_by(QName::new("ex", "report"), QName::new("ex", "eval"));
        delta.to_json_string().unwrap()
    }

    #[test]
    fn delta_upload_merges_and_watch_observes_versions() {
        let server = start();
        let addr = server.addr();
        let (status, body) =
            request(addr, "POST", "/api/v0/documents", Some(&sample_doc_json())).unwrap();
        assert_eq!(status, 201, "{body}");

        // A watch cursor behind the current version answers immediately
        // with the document inline.
        let (status, w) =
            request(addr, "GET", "/api/v0/documents/doc-1/watch?after=0", None).unwrap();
        assert_eq!(status, 200, "{w}");
        let w: serde_json::Value = serde_json::from_str(&w).unwrap();
        assert_eq!(w["changed"], true);
        assert_eq!(w["version"], 1);
        assert_eq!(w["id"], "doc-1");

        // Park a watcher past the head, then merge a delta: it wakes
        // with the merged document, well before its timeout.
        let watcher = std::thread::spawn(move || {
            request(
                addr,
                "GET",
                "/api/v0/documents/doc-1/watch?after=1&timeout_ms=10000",
                None,
            )
            .unwrap()
        });
        std::thread::sleep(Duration::from_millis(100));
        let (status, body) = request(
            addr,
            "POST",
            "/api/v0/documents/doc-1/deltas",
            Some(&delta_json()),
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["version"], 2);
        let (status, w) = watcher.join().unwrap();
        assert_eq!(status, 200, "{w}");
        let w: serde_json::Value = serde_json::from_str(&w).unwrap();
        assert_eq!(w["changed"], true);
        assert_eq!(w["version"], 2);
        let merged = ProvDocument::from_json_str(&w["document"].to_string()).unwrap();
        assert_eq!(merged.element_count(), 5);

        // At the head, the watch times out unchanged.
        let (status, w) = request(
            addr,
            "GET",
            "/api/v0/documents/doc-1/watch?after=2&timeout_ms=100",
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        let w: serde_json::Value = serde_json::from_str(&w).unwrap();
        assert_eq!(w["changed"], false);
        assert_eq!(w["version"], 2);

        // Ghost documents 404; the merged lineage spans the delta; the
        // merge is visible as an incremental index extension.
        let (status, _) = request(addr, "GET", "/api/v0/documents/ghost/watch", None).unwrap();
        assert_eq!(status, 404);
        let (status, anc) = request(
            addr,
            "GET",
            "/api/v0/documents/doc-1/ancestors?focus=ex:report",
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(anc.contains("ex:data"), "{anc}");
        let (_, scrape) = request(addr, "GET", "/metrics", None).unwrap();
        assert!(
            scrape.contains("store_incremental_merges_total 1"),
            "{scrape}"
        );
        server.shutdown();
    }

    #[test]
    fn metrics_endpoint_exposes_store_cache_counters() {
        let server = start();
        let (_, body) = request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some(&sample_doc_json()),
        )
        .unwrap();
        let id: serde_json::Value = serde_json::from_str(&body).unwrap();
        let id = id["id"].as_str().unwrap().to_string();
        for _ in 0..2 {
            let (status, _) = request(
                server.addr(),
                "GET",
                &format!("/api/v0/documents/{id}/ancestors?focus=ex:model"),
                None,
            )
            .unwrap();
            assert_eq!(status, 200);
        }
        let (status, scrape) = request(server.addr(), "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        // The index was built at upload time, so both lineage queries
        // hit the cache; backend put latency was recorded by the upload.
        assert!(
            scrape.contains("store_graph_cache_hits_total 2"),
            "{scrape}"
        );
        assert!(
            scrape.contains("store_graph_cache_misses_total 0"),
            "{scrape}"
        );
        assert!(
            scrape.contains("store_backend_put_seconds_count 1"),
            "{scrape}"
        );
        server.shutdown();
    }

    /// An ML-run document with a leak: the test split feeds training.
    fn leaky_doc_json() -> String {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.namespaces_mut()
            .register("yprov4ml", prov_model::qname::YPROV_NS)
            .unwrap();
        doc.entity(QName::new("ex", "test_split"))
            .attr(QName::yprov("split"), prov_model::AttrValue::from("test"));
        doc.entity(QName::new("ex", "train_split"))
            .attr(QName::yprov("group"), prov_model::AttrValue::from("a"));
        doc.entity(QName::new("ex", "extra_split"))
            .attr(QName::yprov("group"), prov_model::AttrValue::from("b"));
        doc.activity(QName::new("ex", "training_run"));
        doc.entity(QName::new("ex", "model"));
        doc.used(
            QName::new("ex", "training_run"),
            QName::new("ex", "test_split"),
        );
        doc.used(
            QName::new("ex", "training_run"),
            QName::new("ex", "train_split"),
        );
        doc.used(
            QName::new("ex", "training_run"),
            QName::new("ex", "extra_split"),
        );
        doc.was_generated_by(QName::new("ex", "model"), QName::new("ex", "training_run"));
        doc.to_json_string().unwrap()
    }

    fn upload(addr: std::net::SocketAddr, json: &str) -> String {
        let (status, body) = request(addr, "POST", "/api/v0/documents", Some(json)).unwrap();
        assert_eq!(status, 201, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        v["id"].as_str().unwrap().to_string()
    }

    #[test]
    fn query_endpoint_runs_path_queries() {
        let server = start();
        let id = upload(server.addr(), &sample_doc_json());

        // ex:model towards its origins over any kinds to ex:data — the
        // lineage path (forward follows the dependency edges).
        let body = r#"{"query": {
            "start": {"id": "ex:model"},
            "steps": [{"dir": "forward", "repeat": "+",
                       "target": {"id": "ex:data"}}]
        }, "render": "dot"}"#;
        let (status, resp) = request(
            server.addr(),
            "POST",
            &format!("/api/v0/documents/{id}/query"),
            Some(body),
        )
        .unwrap();
        assert_eq!(status, 200, "{resp}");
        let v: serde_json::Value = serde_json::from_str(&resp).unwrap();
        assert_eq!(v["scenario"], "path");
        assert_eq!(v["row_count"], 1);
        assert_eq!(v["truncated"], false);
        assert_eq!(v["rows"][0]["start"], "ex:model");
        assert_eq!(v["rows"][0]["end"], "ex:data");
        let path = v["rows"][0]["path"].as_array().unwrap();
        assert_eq!(path.len(), 3, "{resp}");
        assert!(v["plan"]["reason"].as_str().unwrap().len() > 0);
        assert!(v["dot"].as_str().unwrap().contains("digraph"));

        // Malformed bodies are 400s that say what went wrong.
        for bad in [
            "not json",
            r#"{"render": "dot"}"#,
            r#"{"query": {}, "audit": "leakage"}"#,
            r#"{"audit": "no-such-audit"}"#,
            r#"{"query": {"start": {"wrongClause": 1}, "steps": []}}"#,
            r#"{"query": {"start": {}, "steps": []}, "docs": [1]}"#,
        ] {
            let (status, resp) = request(
                server.addr(),
                "POST",
                &format!("/api/v0/documents/{id}/query"),
                Some(bad),
            )
            .unwrap();
            assert_eq!(status, 400, "{bad} -> {resp}");
            assert!(resp.contains("error"), "{resp}");
        }

        // Unknown documents are 404s.
        let (status, _) = request(
            server.addr(),
            "POST",
            "/api/v0/documents/ghost/query",
            Some(r#"{"audit": "leakage"}"#),
        )
        .unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn query_endpoint_runs_ml_audits() {
        let server = start();
        let id = upload(server.addr(), &leaky_doc_json());
        let post = |body: &str| {
            let (status, resp) = request(
                server.addr(),
                "POST",
                &format!("/api/v0/documents/{id}/query"),
                Some(body),
            )
            .unwrap();
            assert_eq!(status, 200, "{resp}");
            serde_json::from_str::<serde_json::Value>(&resp).unwrap()
        };

        // Data leakage: the default filters catch test_split -> training_run.
        let v = post(r#"{"audit": "leakage", "render": "dot"}"#);
        assert_eq!(v["scenario"], "leakage");
        assert_eq!(v["clean"], false);
        assert_eq!(v["test_artifacts"], 1);
        assert_eq!(v["training_activities"], 1);
        assert_eq!(v["leaks"][0]["start"], "ex:test_split");
        assert_eq!(v["leaks"][0]["end"], "ex:training_run");
        assert!(v["dot"].as_str().unwrap().contains("digraph"));

        // GDPR membership: the training sample reaches the model.
        let v = post(r#"{"audit": "gdpr", "sample": "ex:train_split", "model": "ex:model"}"#);
        assert_eq!(v["scenario"], "gdpr");
        assert_eq!(v["trained_on"], true);
        let path = v["path"].as_array().unwrap();
        assert_eq!(path.first().unwrap(), "ex:train_split");
        assert_eq!(path.last().unwrap(), "ex:model");
        let v = post(r#"{"audit": "gdpr", "sample": "ex:model", "model": "ex:train_split"}"#);
        assert_eq!(v["trained_on"], false);

        // Group fairness: upstream groups a=1, b=1 -> balanced.
        let v = post(r#"{"audit": "fairness", "model": "ex:model"}"#);
        assert_eq!(v["scenario"], "fairness");
        assert_eq!(v["groups"]["a"], 1);
        assert_eq!(v["groups"]["b"], 1);
        assert_eq!(v["balance"], 1.0);

        // Missing required arguments are 400s.
        for bad in [
            r#"{"audit": "gdpr", "sample": "ex:train_split"}"#,
            r#"{"audit": "fairness"}"#,
            r#"{"audit": "gdpr", "sample": "not a qname", "model": "ex:model"}"#,
        ] {
            let (status, resp) = request(
                server.addr(),
                "POST",
                &format!("/api/v0/documents/{id}/query"),
                Some(bad),
            )
            .unwrap();
            assert_eq!(status, 400, "{bad} -> {resp}");
        }
        server.shutdown();
    }

    #[test]
    fn query_endpoint_joins_runs_through_digests() {
        let server = start();
        let mk = |activity: &str, artifact: &str, digest: &str, produces: bool| {
            let mut doc = ProvDocument::new();
            doc.namespaces_mut().register("ex", "http://ex/").unwrap();
            doc.namespaces_mut()
                .register("yprov4ml", prov_model::qname::YPROV_NS)
                .unwrap();
            doc.activity(QName::new("ex", activity));
            doc.entity(QName::new("ex", artifact))
                .attr(QName::yprov("sha256"), prov_model::AttrValue::from(digest));
            if produces {
                doc.was_generated_by(QName::new("ex", artifact), QName::new("ex", activity));
            } else {
                doc.used(QName::new("ex", activity), QName::new("ex", artifact));
            }
            doc.to_json_string().unwrap()
        };
        let run = upload(
            server.addr(),
            &mk("training_run", "run_artifact", "d1", true),
        );
        let wf = upload(server.addr(), &mk("wf_task", "wf_artifact", "d1", false));

        let body = format!(r#"{{"audit": "join", "docs": ["{wf}"]}}"#);
        let (status, resp) = request(
            server.addr(),
            "POST",
            &format!("/api/v0/documents/{run}/query"),
            Some(&body),
        )
        .unwrap();
        assert_eq!(status, 200, "{resp}");
        let v: serde_json::Value = serde_json::from_str(&resp).unwrap();
        assert_eq!(v["scenario"], "join");
        assert_eq!(v["shared_count"], 1);
        assert_eq!(v["documents"].as_array().unwrap().len(), 2);
        let joined = v["joined"].as_array().unwrap();
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0]["digest"], "d1");
        assert_eq!(joined[0]["producers"][0], "ex:training_run");
        assert_eq!(joined[0]["consumers"][0], "ex:wf_task");
        assert_eq!(joined[0]["shared"], true);

        // A path query over the joined view sees both documents' nodes.
        let body = format!(
            r#"{{"query": {{"start": {{"attrEquals": {{"key": "yprov4ml:sha256", "value": "d1"}}}},
                 "steps": []}}, "docs": ["{wf}"]}}"#
        );
        let (status, resp) = request(
            server.addr(),
            "POST",
            &format!("/api/v0/documents/{run}/query"),
            Some(&body),
        )
        .unwrap();
        assert_eq!(status, 200, "{resp}");
        let v: serde_json::Value = serde_json::from_str(&resp).unwrap();
        assert_eq!(v["row_count"], 2, "{resp}");

        // Joining against a missing document is a 404, not a panic.
        let (status, _) = request(
            server.addr(),
            "POST",
            &format!("/api/v0/documents/{run}/query"),
            Some(r#"{"audit": "join", "docs": ["ghost"]}"#),
        )
        .unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn stats_endpoint_reports_graph_index() {
        let server = start();
        let id = upload(server.addr(), &sample_doc_json());
        let (status, stats) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}/stats"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_str(&stats).unwrap();
        assert_eq!(v["graph"]["nodes"], 3, "{stats}");
        assert_eq!(v["graph"]["edges"], 2);
        assert_eq!(v["graph"]["per_kind"]["used"], 1);
        assert_eq!(v["graph"]["per_kind"]["wasGeneratedBy"], 1);
        assert!(v["graph"]["avg_degree"].as_f64().unwrap() > 0.0);
        server.shutdown();
    }

    #[test]
    fn metrics_count_queries_by_scenario() {
        let server = start();
        let id = upload(server.addr(), &leaky_doc_json());
        for body in [
            r#"{"query": {"start": {"id": "ex:model"}, "steps": []}}"#,
            r#"{"audit": "leakage"}"#,
            r#"{"audit": "leakage"}"#,
        ] {
            let (status, _) = request(
                server.addr(),
                "POST",
                &format!("/api/v0/documents/{id}/query"),
                Some(body),
            )
            .unwrap();
            assert_eq!(status, 200);
        }
        let (status, scrape) = request(server.addr(), "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert!(
            scrape.contains("query_requests_total{scenario=\"path\"} 1"),
            "{scrape}"
        );
        assert!(
            scrape.contains("query_requests_total{scenario=\"leakage\"} 2"),
            "{scrape}"
        );
        assert!(scrape.contains("# HELP query_plan_seconds"), "{scrape}");
        assert!(scrape.contains("query_exec_seconds_count 3"), "{scrape}");
        server.shutdown();
    }
}
