//! A from-scratch HTTP/1.1 server exposing the store.
//!
//! No frameworks. Two interchangeable cores sit behind the [`Server`]
//! facade, selected by [`ServerConfig::core`]:
//!
//! * [`ServerCore::EventLoop`] (the default) — a non-blocking epoll
//!   reactor (see [`crate::reactor`]): one thread multiplexes every
//!   connection, complete requests are dispatched to a worker pool,
//!   and keep-alive/pipelined connections are first-class. Slow peers
//!   cost a buffer instead of a thread.
//! * [`ServerCore::Threaded`] — the original thread-per-connection
//!   design: a listener thread hands accepted sockets to a fixed pool
//!   of workers over a bounded crossbeam channel; each worker parses
//!   one request, routes it, and writes one `Connection: close`
//!   response. Kept as the bench baseline and a fallback.
//!
//! Both cores share this module's parser semantics, routing, metrics
//! and response encoding, so their observable behavior for one-shot
//! (`Connection: close`) clients is byte-identical.
//!
//! The parser is defensive: the header section is capped in total bytes
//! and field count (431 beyond either limit), and `Transfer-Encoding:
//! chunked` — which this server does not implement — is rejected with
//! 501 instead of being silently misread as an empty body. Path
//! segments are percent-decoded (without the `+`-to-space query rule),
//! so percent-encoded document ids round-trip.
//!
//! ## Routes (yProv-style)
//!
//! | Method | Path | Effect |
//! |---|---|---|
//! | GET    | `/healthz` | liveness |
//! | GET    | `/metrics` | Prometheus text exposition of server + store metrics |
//! | GET    | `/api/v0/documents` | list handle ids |
//! | POST   | `/api/v0/documents` | upload PROV-JSON, returns `{"id"}` |
//! | GET    | `/api/v0/documents/{id}` | the PROV-JSON document |
//! | DELETE | `/api/v0/documents/{id}` | remove |
//! | GET    | `/api/v0/documents/{id}/stats` | element/relation counts |
//! | GET    | `/api/v0/documents/{id}/ancestors?focus=<qname>` | lineage |
//! | GET    | `/api/v0/documents/{id}/subgraph?focus=<qname>` | focused sub-document |
//! | GET    | `/api/v0/documents/{id}/provn` | PROV-N rendering (text) |
//! | GET    | `/api/v0/documents/{id}/turtle` | PROV-O / Turtle rendering |
//! | GET    | `/api/v0/documents/{id}/dot` | Graphviz DOT of the graph |
//! | POST   | `/api/v0/documents/{id}/deltas` | merge a PROV-JSON delta (ledgered + replicated) |
//! | GET    | `/api/v0/documents/{id}/watch?after=N&timeout_ms=M` | long-poll for a version newer than `N` |
//! | GET    | `/api/v0/ledger` | the tamper-evident upload chain |
//! | PUT    | `/api/v0/documents/{id}` | upload/replace under a chosen id |
//! | GET    | `/api/v0/ledger/verify` | verify every chain this node holds |
//! | POST   | `/api/v0/replication/frames` | apply one replication frame |
//! | GET    | `/api/v0/replication/head?source=` | this replica's cursor for a source |
//! | GET    | `/api/v0/replication/sources` | all replication cursors |
//!
//! When [`ServerConfig::cluster`] is set, uploads are streamed to the
//! document's replica set before being acknowledged (see
//! [`crate::cluster`]); under-replicated writes are answered 503. Every
//! 503 — shed, injected, or under-replicated — carries a `Retry-After`
//! header so well-behaved clients back off on the server's schedule.

use crate::cluster::Replicator;
use crate::error::ServiceError;
use crate::store::{DocumentStore, WatchOutcome};
use crossbeam::channel::{bounded, Sender, TrySendError};
use prov_model::{ProvDocument, QName};
use serde_json::json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which server core drives connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerCore {
    /// Non-blocking epoll reactor with keep-alive and pipelining.
    #[default]
    EventLoop,
    /// Thread-per-connection over blocking sockets (bench baseline).
    Threaded,
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Which core drives connections (event loop by default).
    pub core: ServerCore,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Maximum accepted request-body size in bytes.
    pub max_body: usize,
    /// Maximum total bytes in the request line + header section; a peer
    /// streaming endless headers gets 431 once the budget is spent
    /// instead of growing a worker's memory without bound.
    pub max_header_bytes: usize,
    /// Maximum number of header fields (431 beyond it).
    pub max_headers: usize,
    /// Socket read timeout: a peer that stops sending mid-request gets
    /// a 400 after this long instead of pinning a worker forever.
    pub read_timeout: Duration,
    /// Socket write timeout: a peer that stops reading its response
    /// frees the worker after this long.
    pub write_timeout: Duration,
    /// Accepted connections queued between the listener and the
    /// workers; beyond this the server sheds load with 503 instead of
    /// letting the backlog (and client latency) grow without bound.
    pub queue_depth: usize,
    /// Event-loop core: open-connection admission watermark. `None`
    /// (the default) derives `workers + queue_depth` — the same bound
    /// the threaded core's bounded accept queue enforced — so beyond
    /// it new connections are shed with 503.
    pub max_connections: Option<usize>,
    /// Event-loop core: total response bytes buffered across all
    /// connections before further dispatches shed with 503.
    pub max_queued_bytes: usize,
    /// Event-loop core: a keep-alive connection that has served at
    /// least one response and then goes quiet is closed (silently)
    /// after this long.
    pub idle_timeout: Duration,
    /// Event-loop core: [`Server::stop`] drains in-flight connections
    /// for at most this long before force-closing the stragglers.
    pub drain_deadline: Duration,
    /// Fault injection: fail this many document uploads with 503 before
    /// serving normally (exercises client retry; 0 in production).
    pub chaos_fail_uploads: u32,
    /// Multi-node mode: this node's identity, peers and replication
    /// tunables. `None` (the default) runs a plain single node.
    pub cluster: Option<crate::cluster::ClusterConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            core: ServerCore::default(),
            workers: 4,
            max_body: 256 * 1024 * 1024,
            max_header_bytes: 32 * 1024,
            max_headers: 128,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            queue_depth: 64,
            max_connections: None,
            max_queued_bytes: 64 * 1024 * 1024,
            idle_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            chaos_fail_uploads: 0,
            cluster: None,
        }
    }
}

/// A running server; dropping it (or calling [`Server::shutdown`] /
/// [`Server::stop`]) stops the core and its workers. On the event-loop
/// core the stop is graceful: in-flight connections drain (bounded by
/// [`ServerConfig::drain_deadline`]) before the reactor exits.
pub struct Server {
    addr: std::net::SocketAddr,
    core: Option<CoreHandle>,
    registry: Arc<obs::Registry>,
    replicator: Option<Arc<Replicator>>,
}

/// The running core behind the facade.
enum CoreHandle {
    Threaded {
        stop: Arc<AtomicBool>,
        listener_thread: std::thread::JoinHandle<()>,
    },
    Event {
        handle: crate::reactor::ReactorHandle,
        thread: std::thread::JoinHandle<()>,
    },
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// serving `store`.
    pub fn bind(addr: &str, store: DocumentStore, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let chaos = Arc::new(AtomicU32::new(config.chaos_fail_uploads));
        // Per-server registry (always on): request metrics are the
        // server's own concern and stay out of the process-global
        // tracker registry.
        let registry = Arc::new(obs::Registry::new());
        registry.set_help(
            "http_requests_total",
            "Requests served, by method, route and status.",
        );
        registry.set_help(
            "http_request_duration_seconds",
            "Request handling latency, by route.",
        );
        registry.set_help(
            "http_parse_errors_total",
            "Connections rejected with an unparseable request.",
        );
        registry.set_help(
            "replication_frames_total",
            "Replication frames received from peers.",
        );
        registry.set_help(
            "replication_bytes_total",
            "Replication frame bytes received from peers.",
        );
        registry.set_help(
            "replication_rejects_total",
            "Replication frames rejected before apply (duplicate forks, gaps, torn bytes).",
        );
        registry.set_help(
            "server_connections_open",
            "Connections currently held by the event-loop core.",
        );
        registry.set_help(
            "server_connections_accepted_total",
            "Connections accepted since start (including shed ones).",
        );
        registry.set_help(
            "server_requests_pipelined_total",
            "Requests that arrived on a connection with earlier requests still in flight.",
        );
        registry.set_help(
            "server_shed_total",
            "Connections/requests shed with 503, by watermark reason.",
        );
        let replicator = config
            .cluster
            .as_ref()
            .map(|c| Arc::new(Replicator::new(c.clone(), &registry)));

        let core = match config.core {
            ServerCore::EventLoop => {
                let ev = crate::reactor::spawn(
                    listener,
                    store,
                    config,
                    chaos,
                    Arc::clone(&registry),
                    replicator.clone(),
                )?;
                CoreHandle::Event {
                    handle: ev.handle,
                    thread: ev.thread,
                }
            }
            ServerCore::Threaded => {
                let (tx, rx) = bounded::<TcpStream>(config.queue_depth.max(1));
                for i in 0..config.workers.max(1) {
                    let rx = rx.clone();
                    let store = store.clone();
                    let cfg = config.clone();
                    let chaos = Arc::clone(&chaos);
                    let registry = Arc::clone(&registry);
                    let replicator = replicator.clone();
                    std::thread::Builder::new()
                        .name(format!("yprov-http-{i}"))
                        .spawn(move || {
                            while let Ok(stream) = rx.recv() {
                                let _ = handle_connection(
                                    stream,
                                    &store,
                                    &cfg,
                                    &chaos,
                                    &registry,
                                    replicator.as_deref(),
                                );
                            }
                        })?;
                }
                let stop_l = Arc::clone(&stop);
                let listener_thread = std::thread::Builder::new()
                    .name("yprov-http-accept".into())
                    .spawn(move || accept_loop(listener, tx, stop_l))?;
                CoreHandle::Threaded {
                    stop,
                    listener_thread,
                }
            }
        };

        Ok(Server {
            addr: local,
            core: Some(core),
            registry,
            replicator,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The server's metrics registry (what `GET /metrics` renders).
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.registry
    }

    /// A shared handle to the replication chaos knobs, when this server
    /// is cluster-configured — how the chaos harness injects dropped,
    /// torn, duplicated or delayed frames mid-run.
    pub fn replication_chaos(&self) -> Option<crate::cluster::ReplicationChaos> {
        self.replicator.as_ref().map(|r| r.chaos())
    }

    /// Stops accepting connections and joins the listener.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Stops the core. On the event-loop core this is a graceful
    /// drain: the listener is deregistered, in-flight connections
    /// finish (bounded by [`ServerConfig::drain_deadline`]), and the
    /// call returns once the reactor has exited. Idempotent.
    pub fn stop(&mut self) {
        match self.core.take() {
            None => {}
            Some(CoreHandle::Threaded {
                stop,
                listener_thread,
            }) => {
                stop.store(true, Ordering::Release);
                // Nudge the blocking accept() with a throwaway connection.
                let _ = TcpStream::connect(self.addr);
                let _ = listener_thread.join();
            }
            Some(CoreHandle::Event { handle, thread }) => {
                handle.stop();
                let _ = thread.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, tx: Sender<TcpStream>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        match stream {
            Ok(s) => match tx.try_send(s) {
                Ok(()) => {}
                Err(TrySendError::Full(s)) => {
                    // All workers busy and the queue is at capacity:
                    // shed load immediately rather than queue without
                    // bound. Best effort — a peer that won't read its
                    // 503 is dropped by the short write timeout.
                    let _ = s.set_write_timeout(Some(Duration::from_millis(500)));
                    let _ = write_response(
                        s,
                        503,
                        &json!({"error": "server overloaded, retry later"}).to_string(),
                    );
                }
                Err(TrySendError::Disconnected(_)) => break,
            },
            Err(_) => continue,
        }
    }
}

pub(crate) struct Request {
    pub(crate) method: String,
    pub(crate) path: String,
    pub(crate) query: Vec<(String, String)>,
    pub(crate) body: Vec<u8>,
    /// W3C `traceparent` header, if the client sent one; the handler
    /// span joins that trace instead of starting its own.
    pub(crate) traceparent: Option<String>,
    /// The client opted into keep-alive (`Connection: keep-alive`).
    /// Absent the header the connection closes after the response —
    /// one-shot read-to-EOF clients keep working unchanged.
    pub(crate) keep_alive: bool,
}

impl Request {
    /// Assembles a request from parsed parts, splitting the target
    /// into a path and decoded query pairs.
    pub(crate) fn from_parts(
        method: String,
        target: &str,
        body: Vec<u8>,
        traceparent: Option<String>,
        keep_alive: bool,
    ) -> Request {
        let (path, query_str) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };
        let query = query_str
            .split('&')
            .filter(|kv| !kv.is_empty())
            .filter_map(|kv| kv.split_once('='))
            .map(|(k, v)| (url_decode(k), url_decode(v)))
            .collect();
        Request {
            method,
            path,
            query,
            body,
            traceparent,
            keep_alive,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    store: &DocumentStore,
    cfg: &ServerConfig,
    chaos: &AtomicU32,
    registry: &obs::Registry,
    replicator: Option<&Replicator>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);

    let started = Instant::now();
    let request = match parse_request(&mut reader, cfg) {
        Ok(Some(r)) => r,
        Ok(None) => return Ok(()), // empty connection (shutdown nudge)
        Err((status, msg)) => {
            registry.counter("http_parse_errors_total").inc();
            count_request(registry, "-", "unparsed", status);
            return write_response(stream, status, &json!({"error": msg}).to_string());
        }
    };

    // Adopt the client's trace before opening the handler span, so the
    // span's trace id matches the sender's. Declaration order matters:
    // `_remote` outlives `trace`, so the span closes while the remote
    // context is still in force.
    let _remote = request
        .traceparent
        .as_deref()
        .and_then(obs::trace::adopt_remote);
    let mut trace = obs::trace::span("handle_request");
    if obs::trace::is_enabled() {
        trace.annotate("method", request.method.clone());
        trace.annotate("path", request.path.clone());
    }
    let (status, body) = route(&request, store, chaos, registry, replicator);
    if obs::trace::is_enabled() {
        trace.annotate("status", status.to_string());
    }
    drop(trace);
    let label = route_label(&request.path);
    count_request(registry, &request.method, label, status);
    registry
        .histogram(&format!(
            "http_request_duration_seconds{{route=\"{label}\"}}"
        ))
        .record(started.elapsed());

    let content_type = content_type_for(&request.path, status);
    write_response_typed(stream, status, content_type, &body)
}

/// Picks the response `Content-Type` for a route's body — text for the
/// serialization exports and the metrics exposition, HTML for the
/// explorer, JSON otherwise.
pub(crate) fn content_type_for(path: &str, status: u16) -> &'static str {
    match path.rsplit('/').next() {
        Some("provn") | Some("turtle") | Some("dot") if status == 200 => {
            "text/plain; charset=utf-8"
        }
        Some("metrics") if status == 200 && path == "/metrics" => {
            "text/plain; version=0.0.4; charset=utf-8"
        }
        Some("") | Some("explorer") if status == 200 && path.len() <= "/explorer".len() => {
            "text/html; charset=utf-8"
        }
        _ => "application/json",
    }
}

/// Records one request in the per-route counter family. The method is a
/// peer-supplied string, so it is sanitized before being interpolated
/// into a Prometheus label; route labels come from the fixed
/// [`route_label`] template set.
pub(crate) fn count_request(registry: &obs::Registry, method: &str, route: &str, status: u16) {
    let method: String = method
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .take(16)
        .collect();
    registry
        .counter(&format!(
            "http_requests_total{{method=\"{method}\",route=\"{route}\",status=\"{status}\"}}"
        ))
        .inc();
}

/// Maps a request path onto its route template, so metrics aggregate
/// per route rather than per document id.
pub(crate) fn route_label(path: &str) -> &'static str {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        [] | ["explorer"] => "/explorer",
        ["healthz"] => "/healthz",
        ["metrics"] => "/metrics",
        ["api", "v0", "ledger"] => "/api/v0/ledger",
        ["api", "v0", "ledger", "verify"] => "/api/v0/ledger/verify",
        ["api", "v0", "replication", "frames"] => "/api/v0/replication/frames",
        ["api", "v0", "replication", "head"] => "/api/v0/replication/head",
        ["api", "v0", "replication", "sources"] => "/api/v0/replication/sources",
        ["api", "v0", "documents"] => "/api/v0/documents",
        ["api", "v0", "documents", _] => "/api/v0/documents/{id}",
        ["api", "v0", "documents", _, "stats"] => "/api/v0/documents/{id}/stats",
        ["api", "v0", "documents", _, "ancestors"] => "/api/v0/documents/{id}/ancestors",
        ["api", "v0", "documents", _, "subgraph"] => "/api/v0/documents/{id}/subgraph",
        ["api", "v0", "documents", _, "provn"] => "/api/v0/documents/{id}/provn",
        ["api", "v0", "documents", _, "turtle"] => "/api/v0/documents/{id}/turtle",
        ["api", "v0", "documents", _, "dot"] => "/api/v0/documents/{id}/dot",
        ["api", "v0", "documents", _, "deltas"] => "/api/v0/documents/{id}/deltas",
        ["api", "v0", "documents", _, "watch"] => "/api/v0/documents/{id}/watch",
        _ => "unmatched",
    }
}

/// Parses one request. `Err((status, message))` distinguishes plain
/// malformed input (400) from the header budget (431) and unimplemented
/// transfer encodings (501).
fn parse_request(
    reader: &mut BufReader<TcpStream>,
    cfg: &ServerConfig,
) -> Result<Option<Request>, (u16, String)> {
    // The request line and headers share one byte budget, enforced by
    // reading through a `Take`: a header flood hits the limit and gets
    // 431 instead of growing buffers without bound.
    let mut head = (&mut *reader).take(cfg.max_header_bytes as u64);
    let over_budget = || {
        (
            431,
            format!("header section exceeds {} bytes", cfg.max_header_bytes),
        )
    };

    let mut line = String::new();
    head.read_line(&mut line)
        .map_err(|e| (400, format!("read error: {e}")))?;
    if line.trim().is_empty() {
        return Ok(None);
    }
    if !line.ends_with('\n') && head.limit() == 0 {
        return Err(over_budget());
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or((400, "missing method".to_string()))?
        .to_string();
    let target = parts
        .next()
        .ok_or((400, "missing path".to_string()))?
        .to_string();
    let version = parts.next().ok_or((400, "missing version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err((400, format!("unsupported version {version}")));
    }

    let mut content_length = 0usize;
    let mut chunked = false;
    let mut traceparent = None;
    let mut keep_alive = false;
    let mut header_count = 0usize;
    loop {
        let mut header = String::new();
        let n = head
            .read_line(&mut header)
            .map_err(|e| (400, format!("read error: {e}")))?;
        if n == 0 {
            // No blank line ever arrived: either the byte budget ran
            // out exactly at a line boundary, or the peer closed early.
            // Both are rejections — not a complete header section.
            return Err(if head.limit() == 0 {
                over_budget()
            } else {
                (400, "header section ended without a blank line".to_string())
            });
        }
        let text = header.trim_end();
        if text.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > cfg.max_headers {
            return Err((431, format!("more than {} header fields", cfg.max_headers)));
        }
        if !header.ends_with('\n') && head.limit() == 0 {
            return Err(over_budget());
        }
        if let Some((name, value)) = text.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| (400, "bad content-length".to_string()))?;
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.to_ascii_lowercase().contains("chunked")
            {
                // Flagged here, rejected after the header section: the
                // old parser ignored it and misread the body as empty.
                chunked = true;
            } else if name.eq_ignore_ascii_case("traceparent") {
                traceparent = Some(value.trim().to_string());
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
            }
        }
    }
    drop(head);
    if chunked {
        return Err((
            501,
            "Transfer-Encoding: chunked is not supported; send Content-Length".to_string(),
        ));
    }
    if content_length > cfg.max_body {
        return Err((400, format!("body of {content_length} bytes exceeds limit")));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| (400, format!("short body: {e}")))?;

    Ok(Some(Request::from_parts(
        method,
        &target,
        body,
        traceparent,
        keep_alive,
    )))
}

/// Decodes `%XX` escapes; with `plus_is_space`, also maps `+` to a
/// space. Plus-as-space is query-string/form semantics only — in a path
/// segment `+` is a literal plus, so callers decoding paths pass
/// `false`.
fn percent_decode(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 3 <= bytes.len() {
            if let Some(b) = std::str::from_utf8(&bytes[i + 1..i + 3])
                .ok()
                .and_then(|h| u8::from_str_radix(h, 16).ok())
            {
                out.push(b);
                i += 3;
                continue;
            }
        }
        out.push(if plus_is_space && bytes[i] == b'+' {
            b' '
        } else {
            bytes[i]
        });
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Query-string decoding (`%XX` plus `+` → space).
fn url_decode(s: &str) -> String {
    percent_decode(s, true)
}

/// Acknowledges a committed upload. On a cluster-configured server the
/// upload is first streamed to its replica set; an under-replicated
/// write is answered 503 (the document *is* committed locally — the
/// client's retry replays idempotently under `PUT`, and duplicate
/// frame delivery is idempotent on the replicas).
fn acked_response(
    replicator: Option<&Replicator>,
    store: &DocumentStore,
    up: &crate::store::Upload,
) -> (u16, String) {
    if let Some(r) = replicator {
        let outcome = r.replicate(store, up);
        if !outcome.acked() {
            return (
                503,
                json!({
                    "error": format!(
                        "under-replicated: {}/{} replica confirmations",
                        outcome.confirmed, outcome.required
                    ),
                    "detail": outcome.errors,
                    "id": up.id,
                })
                .to_string(),
            );
        }
    }
    (201, json!({"id": up.id}).to_string())
}

pub(crate) fn route(
    req: &Request,
    store: &DocumentStore,
    chaos: &AtomicU32,
    registry: &obs::Registry,
    replicator: Option<&Replicator>,
) -> (u16, String) {
    // Path segments are percent-decoded individually so encoded
    // document ids round-trip; '/' produced by %2F stays inside its
    // segment and cannot change the route shape.
    let decoded: Vec<String> = req
        .path
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|s| percent_decode(s, false))
        .collect();
    let segments: Vec<&str> = decoded.iter().map(String::as_str).collect();
    let focus = |req: &Request| -> Option<QName> {
        let raw = req
            .query
            .iter()
            .find(|(k, _)| k == "focus")
            .map(|(_, v)| v.clone())?;
        QName::parse(&raw).ok()
    };

    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (200, json!({"status": "ok"}).to_string()),

        ("GET", ["metrics"]) => {
            // One scrape covers both registries: the server's request
            // metrics and the store's cache/backend instruments.
            let mut exposition = registry.render_prometheus();
            exposition.push_str(&store.registry().render_prometheus());
            (200, exposition)
        }

        ("GET", []) | ("GET", ["explorer"]) => (
            200,
            crate::explorer::render_html(&crate::explorer::summarize(store)),
        ),

        ("GET", ["api", "v0", "documents"]) => {
            (200, json!({"documents": store.list()}).to_string())
        }

        ("GET", ["api", "v0", "ledger"]) => {
            let entries: Vec<serde_json::Value> = store
                .ledger_entries()
                .into_iter()
                .map(|e| {
                    json!({
                        "index": e.index,
                        "document_id": e.document_id,
                        "document_digest": e.document_digest,
                        "prev_hash": e.prev_hash,
                        "entry_hash": e.entry_hash,
                    })
                })
                .collect();
            (200, json!({"entries": entries}).to_string())
        }

        ("POST", ["api", "v0", "documents"]) => {
            // Injected fault: pretend to be overloaded for the first
            // `chaos_fail_uploads` uploads (decrement-if-positive).
            if chaos
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
                .is_ok()
            {
                return (
                    503,
                    json!({"error": "injected fault: upload unavailable"}).to_string(),
                );
            }
            let text = match std::str::from_utf8(&req.body) {
                Ok(t) => t,
                Err(_) => return (400, json!({"error": "body is not UTF-8"}).to_string()),
            };
            match ProvDocument::from_json_str(text) {
                Ok(doc) => match store.upload_full(doc) {
                    Ok(up) => acked_response(replicator, store, &up),
                    Err(e) => error_response(&e),
                },
                Err(e) => (400, json!({"error": e.to_string()}).to_string()),
            }
        }

        ("PUT", ["api", "v0", "documents", id]) => {
            let text = match std::str::from_utf8(&req.body) {
                Ok(t) => t,
                Err(_) => return (400, json!({"error": "body is not UTF-8"}).to_string()),
            };
            match ProvDocument::from_json_str(text) {
                Ok(doc) => match store.upload_as_full(*id, doc) {
                    Ok(up) => acked_response(replicator, store, &up),
                    Err(e) => error_response(&e),
                },
                Err(e) => (400, json!({"error": e.to_string()}).to_string()),
            }
        }

        ("GET", ["api", "v0", "ledger", "verify"]) => match store.verify_all() {
            Ok(()) => (200, json!({"ok": true}).to_string()),
            Err(e) => (
                500,
                json!({"ok": false, "error": e.to_string()}).to_string(),
            ),
        },

        ("POST", ["api", "v0", "replication", "frames"]) => {
            let text = match std::str::from_utf8(&req.body) {
                Ok(t) => t,
                Err(_) => return (400, json!({"error": "body is not UTF-8"}).to_string()),
            };
            let v: serde_json::Value = match serde_json::from_str(text) {
                Ok(v) => v,
                Err(e) => return (400, json!({"error": format!("bad frame: {e}")}).to_string()),
            };
            let Some(source) = v.get("source").and_then(|s| s.as_str()) else {
                return (
                    400,
                    json!({"error": "frame is missing \"source\""}).to_string(),
                );
            };
            let Some(entry) = v.get("entry").and_then(crate::cluster::entry_from_json) else {
                return (
                    400,
                    json!({"error": "frame is missing a well-formed \"entry\""}).to_string(),
                );
            };
            let doc = v.get("document").and_then(|d| d.as_str());
            registry.counter("replication_frames_total").inc();
            registry
                .counter("replication_bytes_total")
                .add(req.body.len() as u64);
            match store.apply_replicated(source, entry, doc) {
                Ok(outcome) => {
                    let applied = match outcome {
                        crate::store::ReplicationApply::Applied => "applied",
                        crate::store::ReplicationApply::Duplicate => "duplicate",
                        crate::store::ReplicationApply::ChainOnly => "chain_only",
                    };
                    (200, json!({"applied": applied}).to_string())
                }
                Err(ServiceError::Replication {
                    reason,
                    expect_index,
                }) => {
                    registry.counter("replication_rejects_total").inc();
                    (
                        409,
                        json!({"error": reason, "expect_index": expect_index}).to_string(),
                    )
                }
                Err(e) => error_response(&e),
            }
        }

        ("GET", ["api", "v0", "replication", "head"]) => {
            match req.query.iter().find(|(k, _)| k == "source") {
                None => (
                    400,
                    json!({"error": "missing ?source=<node-id>"}).to_string(),
                ),
                Some((_, source)) => {
                    let (next, head) = store.replication_head(source);
                    (
                        200,
                        json!({"source": source, "next_index": next, "head_hash": head})
                            .to_string(),
                    )
                }
            }
        }

        ("GET", ["api", "v0", "replication", "sources"]) => {
            let sources: Vec<serde_json::Value> = store
                .replication_sources()
                .into_iter()
                .map(|(source, entries)| json!({"source": source, "entries": entries}))
                .collect();
            (200, json!({"sources": sources}).to_string())
        }

        ("GET", ["api", "v0", "documents", id]) => match store.document_json(id) {
            Ok(json) => (200, json),
            Err(e) => error_response(&e),
        },

        ("DELETE", ["api", "v0", "documents", id]) => match store.delete(id) {
            Ok(true) => (200, json!({"deleted": id}).to_string()),
            Ok(false) => not_found(id),
            Err(e) => error_response(&e),
        },

        ("GET", ["api", "v0", "documents", id, "stats"]) => match store.get(id) {
            Some(doc) => {
                let s = doc.stats();
                (
                    200,
                    json!({
                        "entities": s.entities,
                        "activities": s.activities,
                        "agents": s.agents,
                        "relations": s.relations,
                        "bundles": s.bundles,
                    })
                    .to_string(),
                )
            }
            None => not_found(id),
        },

        ("GET", ["api", "v0", "documents", id, "ancestors"]) => match focus(req) {
            None => (
                400,
                json!({"error": "missing or invalid ?focus=prefix:local"}).to_string(),
            ),
            Some(q) => match store.ancestors(id, &q) {
                Ok(anc) => (
                    200,
                    json!({"focus": q.to_string(),
                           "ancestors": anc.iter().map(|a| a.to_string()).collect::<Vec<_>>()})
                    .to_string(),
                ),
                Err(e) => error_response(&e),
            },
        },

        ("GET", ["api", "v0", "documents", id, "provn"]) => match store.get(id) {
            Some(doc) => (200, prov_model::provn::to_provn(&doc)),
            None => not_found(id),
        },

        ("GET", ["api", "v0", "documents", id, "turtle"]) => match store.get(id) {
            Some(doc) => (200, prov_model::turtle::to_turtle(&doc)),
            None => not_found(id),
        },

        ("GET", ["api", "v0", "documents", id, "dot"]) => match store.get(id) {
            Some(doc) => (
                200,
                prov_graph::to_dot(&doc, &prov_graph::DotOptions::default()),
            ),
            None => not_found(id),
        },

        ("POST", ["api", "v0", "documents", id, "deltas"]) => {
            let text = match std::str::from_utf8(&req.body) {
                Ok(t) => t,
                Err(_) => return (400, json!({"error": "body is not UTF-8"}).to_string()),
            };
            match ProvDocument::from_json_str(text) {
                Ok(delta) => match store.merge_delta(id, &delta) {
                    Ok((up, version)) => {
                        // The merged document replicates through the
                        // ordinary frame path: the Upload carries the
                        // full post-merge bytes, so replicas need no
                        // delta-aware logic.
                        let (status, body) = acked_response(replicator, store, &up);
                        if status == 201 {
                            (200, json!({"id": up.id, "version": version}).to_string())
                        } else {
                            (status, body)
                        }
                    }
                    Err(e) => error_response(&e),
                },
                Err(e) => (400, json!({"error": e.to_string()}).to_string()),
            }
        }

        ("GET", ["api", "v0", "documents", id, "watch"]) => {
            let num = |key: &str| {
                req.query
                    .iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| v.parse::<u64>().ok())
            };
            let after = num("after").unwrap_or(0);
            let timeout_ms = num("timeout_ms").unwrap_or(10_000).min(30_000);
            // Long-poll: this blocks the worker thread, not the reactor.
            // The connection counts as in-flight the whole time, so the
            // idle-reap sweep leaves it alone while it is parked here.
            match store.wait_for_newer(id, after, Duration::from_millis(timeout_ms)) {
                WatchOutcome::Gone => not_found(id),
                WatchOutcome::Unchanged(version) => (
                    200,
                    json!({"id": *id, "version": version, "changed": false}).to_string(),
                ),
                WatchOutcome::Changed(version) => match store.document_json(id) {
                    // The stored canonical bytes embed verbatim — the
                    // watcher receives exactly what a plain GET serves.
                    Ok(doc_json) => (
                        200,
                        format!(
                            "{{\"id\":{},\"version\":{version},\"changed\":true,\"document\":{doc_json}}}",
                            json!(*id)
                        ),
                    ),
                    Err(e) => error_response(&e),
                },
            }
        }

        ("GET", ["api", "v0", "documents", id, "subgraph"]) => match focus(req) {
            None => (
                400,
                json!({"error": "missing or invalid ?focus=prefix:local"}).to_string(),
            ),
            Some(q) => match store.subgraph(id, &q) {
                Ok(sub) => (200, sub.to_json().to_string()),
                Err(e) => error_response(&e),
            },
        },

        (_, _) => (404, json!({"error": "no such route"}).to_string()),
    }
}

fn not_found(id: &str) -> (u16, String) {
    (
        404,
        json!({"error": format!("document {id:?} not found")}).to_string(),
    )
}

/// Maps a [`ServiceError`] onto its HTTP status and a JSON error body.
fn error_response(err: &ServiceError) -> (u16, String) {
    (
        err.http_status(),
        json!({"error": err.to_string()}).to_string(),
    )
}

fn write_response(stream: TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response_typed(stream, status, "application/json", body)
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Encodes a response head (status line + headers + blank line). Both
/// cores use this, so the `Connection: close` byte sequence is
/// identical to the original single-shot server's.
pub(crate) fn encode_response_head(
    status: u16,
    content_type: &str,
    content_length: usize,
    keep_alive: bool,
) -> String {
    let reason = status_reason(status);
    // Every 503 — watermark shed, injected fault, under-replicated
    // write — tells the client when to come back; the retrying client
    // honors this over its own backoff schedule.
    let retry_after = if status == 503 {
        "Retry-After: 1\r\n"
    } else {
        ""
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {content_length}\r\n{retry_after}Connection: {connection}\r\n\r\n"
    )
}

fn write_response_typed(
    mut stream: TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = encode_response_head(status, content_type, body.len(), false);
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

// ---------------------------------------------------------------------------
// A tiny blocking client, used by tests and examples.
// ---------------------------------------------------------------------------

/// Sends one HTTP request and returns `(status, body)`.
pub fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes())?;
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc_json() -> String {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(QName::new("ex", "data"));
        doc.activity(QName::new("ex", "train"));
        doc.entity(QName::new("ex", "model"));
        doc.used(QName::new("ex", "train"), QName::new("ex", "data"));
        doc.was_generated_by(QName::new("ex", "model"), QName::new("ex", "train"));
        doc.to_json_string().unwrap()
    }

    fn start() -> Server {
        Server::bind("127.0.0.1:0", DocumentStore::new(), ServerConfig::default()).unwrap()
    }

    /// Writes raw bytes and reads whatever comes back, tolerating a
    /// reset after the response (the server may close with unread
    /// request bytes still queued, which turns its close into an RST).
    fn raw_request(addr: std::net::SocketAddr, raw: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(raw);
        let _ = s.flush();
        let mut out = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(_) => break,
            }
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn health_endpoint() {
        let server = start();
        let (status, body) = request(server.addr(), "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("ok"));
        server.shutdown();
    }

    #[test]
    fn upload_fetch_delete_cycle() {
        let server = start();
        let (status, body) = request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some(&sample_doc_json()),
        )
        .unwrap();
        assert_eq!(status, 201, "{body}");
        let id: serde_json::Value = serde_json::from_str(&body).unwrap();
        let id = id["id"].as_str().unwrap().to_string();

        let (status, listing) = request(server.addr(), "GET", "/api/v0/documents", None).unwrap();
        assert_eq!(status, 200);
        assert!(listing.contains(&id));

        let (status, fetched) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        let parsed = ProvDocument::from_json_str(&fetched).unwrap();
        assert_eq!(parsed.element_count(), 3);

        let (status, _) = request(
            server.addr(),
            "DELETE",
            &format!("/api/v0/documents/{id}"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        let (status, _) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}"),
            None,
        )
        .unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn stats_and_lineage_endpoints() {
        let server = start();
        let (_, body) = request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some(&sample_doc_json()),
        )
        .unwrap();
        let id: serde_json::Value = serde_json::from_str(&body).unwrap();
        let id = id["id"].as_str().unwrap().to_string();

        let (status, stats) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}/stats"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        let stats: serde_json::Value = serde_json::from_str(&stats).unwrap();
        assert_eq!(stats["entities"], 2);
        assert_eq!(stats["activities"], 1);

        let (status, anc) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}/ancestors?focus=ex:model"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(anc.contains("ex:data"), "{anc}");

        let (status, sub) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}/subgraph?focus=ex:train"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(ProvDocument::from_json_str(&sub).unwrap().element_count() == 3);
        server.shutdown();
    }

    #[test]
    fn ledger_endpoint_exposes_chain() {
        let dir = std::env::temp_dir().join(format!("ysvc_http_ledger_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = DocumentStore::persistent(&dir).unwrap();
        let server = Server::bind("127.0.0.1:0", store, ServerConfig::default()).unwrap();
        request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some(&sample_doc_json()),
        )
        .unwrap();
        let (status, body) = request(server.addr(), "GET", "/api/v0/ledger", None).unwrap();
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        let entries = v["entries"].as_array().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0]["index"], 0);
        assert!(entries[0]["entry_hash"].as_str().unwrap().len() == 64);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explorer_page_served_at_root() {
        let server = start();
        let (_, body) = request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some(&sample_doc_json()),
        )
        .unwrap();
        let _ = body;
        for path in ["/", "/explorer"] {
            let (status, html) = request(server.addr(), "GET", path, None).unwrap();
            assert_eq!(status, 200, "{path}");
            assert!(html.contains("yProv Explorer"), "{path}");
            assert!(html.contains("doc-1"));
        }
        server.shutdown();
    }

    #[test]
    fn export_endpoints_render_all_serializations() {
        let server = start();
        let (_, body) = request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some(&sample_doc_json()),
        )
        .unwrap();
        let id: serde_json::Value = serde_json::from_str(&body).unwrap();
        let id = id["id"].as_str().unwrap().to_string();

        let (status, provn) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}/provn"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(provn.contains("wasGeneratedBy(ex:model, ex:train)"));

        let (status, ttl) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}/turtle"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(ttl.contains("ex:model prov:wasGeneratedBy ex:train ."));

        let (status, dot) = request(
            server.addr(),
            "GET",
            &format!("/api/v0/documents/{id}/dot"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(dot.starts_with("digraph"));

        let (status, _) =
            request(server.addr(), "GET", "/api/v0/documents/ghost/provn", None).unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn bad_requests_rejected() {
        let server = start();
        let (status, _) = request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some("{not json"),
        )
        .unwrap();
        assert_eq!(status, 400);
        let (status, _) = request(server.addr(), "GET", "/api/v0/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = request(
            server.addr(),
            "GET",
            "/api/v0/documents/doc-1/ancestors",
            None,
        )
        .unwrap();
        assert_eq!(status, 400, "missing focus");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = start();
        let addr = server.addr();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let doc = sample_doc_json();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    let (status, _) =
                        request(addr, "POST", "/api/v0/documents", Some(&doc)).unwrap();
                    assert_eq!(status, 201);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (_, listing) = request(addr, "GET", "/api/v0/documents", None).unwrap();
        let listing: serde_json::Value = serde_json::from_str(&listing).unwrap();
        assert_eq!(listing["documents"].as_array().unwrap().len(), 80);
        server.shutdown();
    }

    #[test]
    fn chaos_config_fails_first_uploads_then_recovers() {
        let server = Server::bind(
            "127.0.0.1:0",
            DocumentStore::new(),
            ServerConfig {
                chaos_fail_uploads: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let doc = sample_doc_json();
        let mut statuses = Vec::new();
        for _ in 0..4 {
            let (status, _) =
                request(server.addr(), "POST", "/api/v0/documents", Some(&doc)).unwrap();
            statuses.push(status);
        }
        assert_eq!(statuses, vec![503, 503, 201, 201]);
        // Reads were never affected.
        let (status, _) = request(server.addr(), "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn slow_peer_times_out_and_overload_sheds_503() {
        // One worker, queue depth 1: a peer that stalls mid-request pins
        // the worker until the read timeout, and further connections
        // beyond the queue are shed with 503 instead of hanging.
        let server = Server::bind(
            "127.0.0.1:0",
            DocumentStore::new(),
            ServerConfig {
                workers: 1,
                queue_depth: 1,
                read_timeout: Duration::from_secs(2),
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();

        // The stalled peer: opens a connection, sends half a request
        // line, never finishes.
        let started = std::time::Instant::now();
        let mut stall = TcpStream::connect(addr).unwrap();
        stall.write_all(b"GET /healthz HT").unwrap();
        std::thread::sleep(Duration::from_millis(200)); // let the worker pick it up

        // Burst while the worker is pinned: more requests than worker +
        // queue can hold, so at least one must be shed.
        let mut handles = Vec::new();
        for _ in 0..6 {
            handles.push(std::thread::spawn(move || {
                request(addr, "GET", "/healthz", None).map(|(s, _)| s)
            }));
        }
        let statuses: Vec<u16> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap_or(0))
            .collect();
        assert!(
            statuses.iter().any(|&s| s == 503),
            "expected load shedding, got {statuses:?}"
        );

        // The stalled connection is cut loose by the read timeout — the
        // server answers 400 instead of blocking forever.
        stall
            .set_read_timeout(Some(Duration::from_secs(8)))
            .unwrap();
        let mut response = String::new();
        BufReader::new(&stall)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(
            started.elapsed() < Duration::from_secs(8),
            "server held a dead peer too long: {:?}",
            started.elapsed()
        );

        // After the stall clears, service is healthy again.
        let (status, _) = request(addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn shed_and_injected_503s_carry_retry_after() {
        let server = Server::bind(
            "127.0.0.1:0",
            DocumentStore::new(),
            ServerConfig {
                chaos_fail_uploads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let resp = raw_request(
            server.addr(),
            b"POST /api/v0/documents HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
        assert!(resp.contains("Retry-After: 1"), "{resp}");
        // Non-503 responses never carry the header.
        let ok = raw_request(server.addr(), b"GET /healthz HTTP/1.1\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        assert!(!ok.contains("Retry-After"), "{ok}");
        server.shutdown();
    }

    #[test]
    fn url_decoding() {
        assert_eq!(url_decode("ex%3Amodel"), "ex:model");
        assert_eq!(url_decode("a+b"), "a b");
        assert_eq!(url_decode("plain"), "plain");
        assert_eq!(url_decode("bad%"), "bad%");
        assert_eq!(url_decode("%zz"), "%zz");
    }

    #[test]
    fn plus_stays_literal_in_path_segments() {
        assert_eq!(percent_decode("a+b", false), "a+b");
        assert_eq!(percent_decode("a+b", true), "a b");
        assert_eq!(percent_decode("doc%2D1", false), "doc-1");
        assert_eq!(percent_decode("bad%", false), "bad%");
    }

    #[test]
    fn percent_encoded_document_ids_round_trip() {
        let server = start();
        let (status, body) = request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some(&sample_doc_json()),
        )
        .unwrap();
        assert_eq!(status, 201, "{body}");
        // The store names it "doc-1"; fetch, stat, and delete it through
        // its percent-encoded spelling.
        let (status, fetched) =
            request(server.addr(), "GET", "/api/v0/documents/doc%2D1", None).unwrap();
        assert_eq!(status, 200, "{fetched}");
        assert_eq!(
            ProvDocument::from_json_str(&fetched)
                .unwrap()
                .element_count(),
            3
        );
        let (status, _) = request(
            server.addr(),
            "GET",
            "/api/v0/documents/doc%2D1/stats",
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        let (status, _) =
            request(server.addr(), "DELETE", "/api/v0/documents/doc%2D1", None).unwrap();
        assert_eq!(status, 200);
        let (status, _) = request(server.addr(), "GET", "/api/v0/documents/doc-1", None).unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn header_byte_flood_rejected_with_431() {
        let server = start();
        let mut flood = String::from("GET /healthz HTTP/1.1\r\n");
        while flood.len() < 48 * 1024 {
            flood.push_str("X-Flood: aaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        flood.push_str("\r\n");
        let resp = raw_request(server.addr(), flood.as_bytes());
        // The server closes with flood bytes still unread, so the 431
        // may be lost to a reset on some stacks — but it is always
        // counted, and the server always survives.
        assert!(
            resp.is_empty() || resp.starts_with("HTTP/1.1 431"),
            "unexpected response: {}",
            &resp[..resp.len().min(120)]
        );
        let scrape = server.registry().render_prometheus();
        assert!(scrape.contains("status=\"431\""), "{scrape}");
        let (status, _) = request(server.addr(), "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200, "server must survive the flood");
        server.shutdown();
    }

    #[test]
    fn too_many_header_fields_rejected_with_431() {
        let server = start();
        // Exactly one header past the cap, and no terminating blank
        // line: the server consumes every byte sent before rejecting,
        // so the close is clean and the 431 always arrives.
        let mut flood = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..=ServerConfig::default().max_headers {
            flood.push_str(&format!("X-{i}: v\r\n"));
        }
        let resp = raw_request(server.addr(), flood.as_bytes());
        assert!(
            resp.starts_with("HTTP/1.1 431"),
            "unexpected response: {}",
            &resp[..resp.len().min(120)]
        );
        let (status, _) = request(server.addr(), "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn chunked_transfer_encoding_rejected_with_501() {
        let server = start();
        let resp = raw_request(
            server.addr(),
            b"POST /api/v0/documents HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        );
        assert!(
            resp.starts_with("HTTP/1.1 501"),
            "unexpected response: {}",
            &resp[..resp.len().min(120)]
        );
        assert!(resp.contains("not supported"), "{resp}");
        let (status, _) = request(server.addr(), "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn metrics_endpoint_reports_route_counters() {
        let server = start();
        let (status, first) = request(server.addr(), "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        let _ = first; // the first scrape may predate any instrument

        let (status, _) = request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some(&sample_doc_json()),
        )
        .unwrap();
        assert_eq!(status, 201);

        let (status, scrape) = request(server.addr(), "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert!(
            scrape.contains("# TYPE http_requests_total counter"),
            "{scrape}"
        );
        assert!(
            scrape.contains(
                "# HELP http_requests_total Requests served, by method, route and status."
            ),
            "{scrape}"
        );
        assert!(
            scrape.contains(
                "http_requests_total{method=\"POST\",route=\"/api/v0/documents\",status=\"201\"} 1"
            ),
            "{scrape}"
        );
        assert!(
            scrape.contains(
                "http_requests_total{method=\"GET\",route=\"/metrics\",status=\"200\"} 1"
            ),
            "{scrape}"
        );
        assert!(
            scrape.contains("http_request_duration_seconds_count{route=\"/api/v0/documents\"} 1"),
            "{scrape}"
        );
        assert!(
            scrape.contains("http_request_duration_seconds_bucket{route=\"/api/v0/documents\","),
            "{scrape}"
        );
        server.shutdown();
    }

    fn delta_json() -> String {
        let mut delta = ProvDocument::new();
        delta.namespaces_mut().register("ex", "http://ex/").unwrap();
        delta.activity(QName::new("ex", "eval"));
        delta.entity(QName::new("ex", "report"));
        delta.used(QName::new("ex", "eval"), QName::new("ex", "model"));
        delta.was_generated_by(QName::new("ex", "report"), QName::new("ex", "eval"));
        delta.to_json_string().unwrap()
    }

    #[test]
    fn delta_upload_merges_and_watch_observes_versions() {
        let server = start();
        let addr = server.addr();
        let (status, body) =
            request(addr, "POST", "/api/v0/documents", Some(&sample_doc_json())).unwrap();
        assert_eq!(status, 201, "{body}");

        // A watch cursor behind the current version answers immediately
        // with the document inline.
        let (status, w) =
            request(addr, "GET", "/api/v0/documents/doc-1/watch?after=0", None).unwrap();
        assert_eq!(status, 200, "{w}");
        let w: serde_json::Value = serde_json::from_str(&w).unwrap();
        assert_eq!(w["changed"], true);
        assert_eq!(w["version"], 1);
        assert_eq!(w["id"], "doc-1");

        // Park a watcher past the head, then merge a delta: it wakes
        // with the merged document, well before its timeout.
        let watcher = std::thread::spawn(move || {
            request(
                addr,
                "GET",
                "/api/v0/documents/doc-1/watch?after=1&timeout_ms=10000",
                None,
            )
            .unwrap()
        });
        std::thread::sleep(Duration::from_millis(100));
        let (status, body) = request(
            addr,
            "POST",
            "/api/v0/documents/doc-1/deltas",
            Some(&delta_json()),
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["version"], 2);
        let (status, w) = watcher.join().unwrap();
        assert_eq!(status, 200, "{w}");
        let w: serde_json::Value = serde_json::from_str(&w).unwrap();
        assert_eq!(w["changed"], true);
        assert_eq!(w["version"], 2);
        let merged = ProvDocument::from_json_str(&w["document"].to_string()).unwrap();
        assert_eq!(merged.element_count(), 5);

        // At the head, the watch times out unchanged.
        let (status, w) = request(
            addr,
            "GET",
            "/api/v0/documents/doc-1/watch?after=2&timeout_ms=100",
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        let w: serde_json::Value = serde_json::from_str(&w).unwrap();
        assert_eq!(w["changed"], false);
        assert_eq!(w["version"], 2);

        // Ghost documents 404; the merged lineage spans the delta; the
        // merge is visible as an incremental index extension.
        let (status, _) = request(addr, "GET", "/api/v0/documents/ghost/watch", None).unwrap();
        assert_eq!(status, 404);
        let (status, anc) = request(
            addr,
            "GET",
            "/api/v0/documents/doc-1/ancestors?focus=ex:report",
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(anc.contains("ex:data"), "{anc}");
        let (_, scrape) = request(addr, "GET", "/metrics", None).unwrap();
        assert!(
            scrape.contains("store_incremental_merges_total 1"),
            "{scrape}"
        );
        server.shutdown();
    }

    #[test]
    fn metrics_endpoint_exposes_store_cache_counters() {
        let server = start();
        let (_, body) = request(
            server.addr(),
            "POST",
            "/api/v0/documents",
            Some(&sample_doc_json()),
        )
        .unwrap();
        let id: serde_json::Value = serde_json::from_str(&body).unwrap();
        let id = id["id"].as_str().unwrap().to_string();
        for _ in 0..2 {
            let (status, _) = request(
                server.addr(),
                "GET",
                &format!("/api/v0/documents/{id}/ancestors?focus=ex:model"),
                None,
            )
            .unwrap();
            assert_eq!(status, 200);
        }
        let (status, scrape) = request(server.addr(), "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        // The index was built at upload time, so both lineage queries
        // hit the cache; backend put latency was recorded by the upload.
        assert!(
            scrape.contains("store_graph_cache_hits_total 2"),
            "{scrape}"
        );
        assert!(
            scrape.contains("store_graph_cache_misses_total 0"),
            "{scrape}"
        );
        assert!(
            scrape.contains("store_backend_put_seconds_count 1"),
            "{scrape}"
        );
        server.shutdown();
    }
}
