//! The slow-request log: the N slowest and the N most recent erroring
//! requests per route, kept in bounded in-memory rings so an operator
//! chasing a p99 spike can go from "which route" (the histogram)
//! straight to "which request" — method, path, status, latency, the
//! shed reason if the reactor refused it, and the request's trace id,
//! which links the entry to its span in the Chrome trace export.
//!
//! Recording mirrors the span-ring idiom in `obs::trace`: entries are
//! built entirely off-lock and pushed under one short mutex hold (a
//! `BTreeMap` probe plus a bounded `Vec` shift — no allocation beyond
//! the entry itself, no syscall), so in the common single-writer case
//! the lock is uncontended and the cost is one CAS. When disabled
//! (the default is enabled; the threaded bench core can turn it off)
//! recording is a single relaxed load.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// One captured request.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    pub method: String,
    /// The concrete request path (route templates collapse ids; the
    /// slowlog's whole point is the concrete offender).
    pub path: String,
    /// The route template the entry is filed under.
    pub route: &'static str,
    pub status: u16,
    pub latency_ns: u64,
    /// The reactor's shed reason (`queue`, `queued_bytes`,
    /// `connections`) when the request never reached a worker.
    pub shed: Option<&'static str>,
    /// The handler span's 32-hex trace id, matching the `trace_id`
    /// argument of the span's event in the Chrome trace export.
    pub trace_id: Option<String>,
    /// Monotonically increasing capture sequence (process-local).
    pub seq: u64,
}

/// Per-route state: the slowest successes and the latest errors.
struct RouteLog {
    /// Kept sorted descending by latency, truncated at `per_route`.
    slowest: Vec<SlowEntry>,
    /// Most recent 4xx/5xx/shed entries, oldest first, bounded at
    /// `per_route`.
    errors: Vec<SlowEntry>,
}

/// The log itself; shared by every worker of one server.
pub struct SlowLog {
    enabled: AtomicBool,
    per_route: usize,
    seq: AtomicU64,
    routes: Mutex<BTreeMap<&'static str, RouteLog>>,
}

impl SlowLog {
    /// A log keeping `per_route` slowest + `per_route` erroring entries
    /// for each route.
    pub fn new(per_route: usize) -> SlowLog {
        SlowLog {
            enabled: AtomicBool::new(true),
            per_route: per_route.max(1),
            seq: AtomicU64::new(0),
            routes: Mutex::new(BTreeMap::new()),
        }
    }

    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Release);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Records one finished (or shed) request. Cheap no-op when
    /// disabled; otherwise one short uncontended lock hold.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        method: &str,
        path: &str,
        route: &'static str,
        status: u16,
        latency_ns: u64,
        shed: Option<&'static str>,
        trace_id: Option<String>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let entry = SlowEntry {
            method: method.to_string(),
            path: path.to_string(),
            route,
            status,
            latency_ns,
            shed,
            trace_id,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
        };
        let is_error = status >= 400 || entry.shed.is_some();
        let mut routes = self.routes.lock().expect("slowlog poisoned");
        let log = routes.entry(route).or_insert_with(|| RouteLog {
            slowest: Vec::with_capacity(self.per_route),
            errors: Vec::with_capacity(self.per_route),
        });
        if is_error {
            if log.errors.len() == self.per_route {
                log.errors.remove(0);
            }
            log.errors.push(entry);
        } else {
            // Insertion sort into the bounded descending-by-latency
            // top-N; requests faster than the current floor are the
            // overwhelming majority and bail on the comparison alone.
            if log.slowest.len() == self.per_route
                && latency_ns <= log.slowest.last().map_or(0, |e| e.latency_ns)
            {
                return;
            }
            let at = log
                .slowest
                .partition_point(|e| e.latency_ns >= entry.latency_ns);
            log.slowest.insert(at, entry);
            log.slowest.truncate(self.per_route);
        }
    }

    /// Every route's entries: `(route, slowest, errors)`, route-sorted.
    /// Slowest are latency-descending; errors oldest first.
    pub fn snapshot(&self) -> Vec<(&'static str, Vec<SlowEntry>, Vec<SlowEntry>)> {
        self.routes
            .lock()
            .expect("slowlog poisoned")
            .iter()
            .map(|(route, log)| (*route, log.slowest.clone(), log.errors.clone()))
            .collect()
    }

    /// Total entries currently held (both rings, all routes).
    pub fn len(&self) -> usize {
        self.routes
            .lock()
            .expect("slowlog poisoned")
            .values()
            .map(|l| l.slowest.len() + l.errors.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(log: &SlowLog, latency_ns: u64) {
        log.record("GET", "/x", "/x", 200, latency_ns, None, None);
    }

    #[test]
    fn keeps_the_n_slowest_sorted_descending() {
        let log = SlowLog::new(3);
        for lat in [5, 1, 9, 3, 7, 2] {
            ok(&log, lat);
        }
        let snap = log.snapshot();
        let lats: Vec<u64> = snap[0].1.iter().map(|e| e.latency_ns).collect();
        assert_eq!(lats, vec![9, 7, 5]);
    }

    #[test]
    fn errors_ring_keeps_the_most_recent() {
        let log = SlowLog::new(2);
        for (i, status) in [500u16, 404, 503].iter().enumerate() {
            log.record("GET", "/x", "/x", *status, i as u64, None, None);
        }
        let snap = log.snapshot();
        let statuses: Vec<u16> = snap[0].2.iter().map(|e| e.status).collect();
        assert_eq!(statuses, vec![404, 503], "oldest 500 evicted");
    }

    #[test]
    fn shed_requests_count_as_errors_with_their_reason() {
        let log = SlowLog::new(4);
        log.record("POST", "/y", "/y", 503, 0, Some("queue"), None);
        let snap = log.snapshot();
        assert_eq!(snap[0].2[0].shed, Some("queue"));
    }

    #[test]
    fn routes_are_kept_apart() {
        let log = SlowLog::new(2);
        log.record("GET", "/a/1", "/a/{id}", 200, 10, None, None);
        log.record("GET", "/b", "/b", 200, 20, None, None);
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "/a/{id}");
        assert_eq!(snap[0].1[0].path, "/a/1", "concrete path preserved");
    }

    #[test]
    fn disabled_records_nothing() {
        let log = SlowLog::new(2);
        log.set_enabled(false);
        ok(&log, 5);
        assert!(log.is_empty());
        log.set_enabled(true);
        ok(&log, 5);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn fast_requests_below_a_full_floor_are_rejected_cheaply() {
        let log = SlowLog::new(2);
        ok(&log, 100);
        ok(&log, 200);
        ok(&log, 50); // below the floor of a full ring
        let snap = log.snapshot();
        let lats: Vec<u64> = snap[0].1.iter().map(|e| e.latency_ns).collect();
        assert_eq!(lats, vec![200, 100]);
    }

    #[test]
    fn concurrent_recording_stays_bounded_and_keeps_the_max() {
        use std::sync::Arc;
        let log = Arc::new(SlowLog::new(4));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        log.record("GET", "/x", "/x", 200, w * 1000 + i, None, None);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = log.snapshot();
        assert_eq!(snap[0].1.len(), 4);
        assert_eq!(snap[0].1[0].latency_ns, 3499, "global max survives");
    }
}
