//! The service's typed error taxonomy.
//!
//! Every fallible operation in the storage engine — backend I/O, ledger
//! parsing and verification, document decoding, lineage queries —
//! reports a [`ServiceError`] instead of a bare `String`. The variants
//! partition failures by *who is wrong* (the caller, the stored state,
//! or the machine underneath), and [`ServiceError::http_status`] maps
//! that partition onto the REST API's status codes so the HTTP layer
//! never has to guess.

use crate::ledger::LedgerIssue;

/// Why a store or backend operation failed.
#[derive(Debug)]
pub enum ServiceError {
    /// No document with the given handle id exists.
    NotFound {
        /// The handle id that was requested.
        id: String,
    },
    /// The caller supplied a document (or focus) the service cannot
    /// decode.
    InvalidDocument {
        /// Parse/serialization failure description.
        reason: String,
    },
    /// The operation contradicts stored state (e.g. merging documents
    /// with conflicting namespace registrations).
    Conflict {
        /// What clashed.
        reason: String,
    },
    /// The storage backend's underlying I/O failed.
    Io {
        /// What the backend was doing (`"write doc-3.json"`, ...).
        context: String,
        /// The originating I/O error.
        source: std::io::Error,
    },
    /// The on-disk ledger file could not be parsed.
    LedgerFormat {
        /// 1-based line number of the bad line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The ledger parsed but verification against the stored documents
    /// failed — the store has been tampered with or corrupted.
    LedgerVerification(LedgerIssue),
    /// A replication frame could not be applied: it does not extend
    /// this replica's verified chain for its source.
    Replication {
        /// What was wrong with the frame.
        reason: String,
        /// The entry index this replica expects next from the source —
        /// the divergence point a primary should re-sync from. `None`
        /// when re-syncing cannot help (e.g. a forged entry hash).
        expect_index: Option<u64>,
    },
}

impl ServiceError {
    /// Convenience constructor for backend I/O failures.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        ServiceError::Io {
            context: context.into(),
            source,
        }
    }

    /// The HTTP status code this error maps onto: 404 for missing
    /// documents, 400 for undecodable input, 409 for conflicts, 500 for
    /// everything that means the *service* (not the caller) is broken.
    pub fn http_status(&self) -> u16 {
        match self {
            ServiceError::NotFound { .. } => 404,
            ServiceError::InvalidDocument { .. } => 400,
            ServiceError::Conflict { .. } | ServiceError::Replication { .. } => 409,
            ServiceError::Io { .. }
            | ServiceError::LedgerFormat { .. }
            | ServiceError::LedgerVerification(_) => 500,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::NotFound { id } => write!(f, "document {id:?} not found"),
            ServiceError::InvalidDocument { reason } => {
                write!(f, "invalid document: {reason}")
            }
            ServiceError::Conflict { reason } => write!(f, "conflict: {reason}"),
            ServiceError::Io { context, source } => {
                write!(f, "i/o error while {context}: {source}")
            }
            ServiceError::LedgerFormat { line, reason } => {
                write!(f, "ledger line {line}: {reason}")
            }
            ServiceError::LedgerVerification(issue) => {
                write!(f, "ledger verification failed: {issue:?}")
            }
            ServiceError::Replication {
                reason,
                expect_index,
            } => match expect_index {
                Some(idx) => write!(f, "replication rejected: {reason} (expect index {idx})"),
                None => write!(f, "replication rejected: {reason}"),
            },
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<LedgerIssue> for ServiceError {
    fn from(issue: LedgerIssue) -> Self {
        ServiceError::LedgerVerification(issue)
    }
}

impl From<prov_model::ProvError> for ServiceError {
    fn from(e: prov_model::ProvError) -> Self {
        ServiceError::InvalidDocument {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_mapping_partitions_blame() {
        assert_eq!(ServiceError::NotFound { id: "x".into() }.http_status(), 404);
        assert_eq!(
            ServiceError::InvalidDocument { reason: "?".into() }.http_status(),
            400
        );
        assert_eq!(
            ServiceError::Conflict {
                reason: "ns".into()
            }
            .http_status(),
            409
        );
        assert_eq!(
            ServiceError::io("write", std::io::Error::other("disk on fire")).http_status(),
            500
        );
        assert_eq!(
            ServiceError::LedgerVerification(LedgerIssue::ChainBroken { index: 3 }).http_status(),
            500
        );
    }

    #[test]
    fn display_is_informative() {
        let e = ServiceError::io("write doc-1.json", std::io::Error::other("nope"));
        assert!(e.to_string().contains("doc-1.json"));
        let e = ServiceError::LedgerVerification(LedgerIssue::ChainBroken { index: 3 });
        assert!(e.to_string().contains("ledger verification failed"));
    }
}
