//! Explorer-style cross-document summaries.
//!
//! The yProv Explorer's landing view shows, for each stored provenance
//! file, what kind of process it describes and how big it is. This
//! module computes those summaries over a [`DocumentStore`].

use crate::store::DocumentStore;
use prov_model::{AttrValue, ElementKind, QName};

/// One row of the explorer's document listing.
#[derive(Debug, Clone, PartialEq)]
pub struct DocumentSummary {
    /// Store handle.
    pub id: String,
    /// Element counts.
    pub entities: usize,
    /// Activity count.
    pub activities: usize,
    /// Agent count.
    pub agents: usize,
    /// Relation count.
    pub relations: usize,
    /// The run activity's label, when the document came from yProv4ML.
    pub run_label: Option<String>,
    /// Number of metric entities.
    pub metrics: usize,
    /// Number of artifact entities.
    pub artifacts: usize,
    /// Nodes in the provenance graph (from the store's cached index).
    pub graph_nodes: usize,
    /// Edges in the provenance graph (from the store's cached index).
    pub graph_edges: usize,
    /// Serialized size of the document in bytes.
    pub json_bytes: usize,
}

/// Summarizes every document in the store, sorted by id.
pub fn summarize(store: &DocumentStore) -> Vec<DocumentSummary> {
    let run_ty = QName::yprov("RunExecution");
    let metric_ty = QName::yprov("Metric");
    let artifact_ty = QName::yprov("Artifact");

    store
        .list()
        .into_iter()
        .filter_map(|id| {
            let doc = store.get(&id)?;
            // The store's cached index: building it here would be the
            // per-request O(document) rebuild the cache exists to avoid.
            let shared = store.graph(&id).ok()?;
            let index = shared.index();
            let stats = doc.stats();
            let run_label = doc
                .iter_elements()
                .find(|e| e.has_type(&run_ty))
                .and_then(|e| e.label().map(str::to_string));
            let metrics = doc
                .iter_kind(ElementKind::Entity)
                .filter(|e| e.has_type(&metric_ty))
                .count();
            let artifacts = doc
                .iter_kind(ElementKind::Entity)
                .filter(|e| e.has_type(&artifact_ty))
                .count();
            let json_bytes = doc.to_json_string().map(|s| s.len()).unwrap_or(0);
            Some(DocumentSummary {
                id,
                entities: stats.entities,
                activities: stats.activities,
                agents: stats.agents,
                relations: stats.relations,
                run_label,
                metrics,
                artifacts,
                graph_nodes: index.node_count(),
                graph_edges: index.edge_count(),
                json_bytes,
            })
        })
        .collect()
}

/// Documents whose run produced an artifact carrying the given SHA-256
/// digest — "which runs produced this exact model?"
pub fn find_by_artifact_digest(store: &DocumentStore, sha256: &str) -> Vec<String> {
    let artifact_ty = QName::yprov("Artifact");
    let key = QName::yprov("sha256");
    store
        .list()
        .into_iter()
        .filter(|id| {
            store.get(id).is_some_and(|doc| {
                doc.iter_elements().any(|e| {
                    e.has_type(&artifact_ty)
                        && e.attr(&key)
                            .is_some_and(|v| matches!(v, AttrValue::String(s) if s == sha256))
                })
            })
        })
        .collect()
}

/// A self-contained HTML page listing the stored documents, in the
/// spirit of the yProv Explorer's landing view. Served by the HTTP
/// layer at `GET /explorer`.
pub fn render_html(summaries: &[DocumentSummary]) -> String {
    let mut rows = String::new();
    for s in summaries {
        rows.push_str(&format!(
            "<tr><td><a href=\"/api/v0/documents/{id}\">{id}</a></td><td>{run}</td>\
             <td>{entities}</td><td>{activities}</td><td>{agents}</td><td>{relations}</td>\
             <td>{metrics}</td><td>{artifacts}</td><td>{nodes}</td><td>{edges}</td>\
             <td>{bytes}</td>\
             <td><a href=\"/api/v0/documents/{id}/provn\">provn</a> \
                 <a href=\"/api/v0/documents/{id}/turtle\">ttl</a> \
                 <a href=\"/api/v0/documents/{id}/dot\">dot</a></td></tr>\n",
            id = html_escape(&s.id),
            run = html_escape(s.run_label.as_deref().unwrap_or("-")),
            entities = s.entities,
            activities = s.activities,
            agents = s.agents,
            relations = s.relations,
            metrics = s.metrics,
            artifacts = s.artifacts,
            nodes = s.graph_nodes,
            edges = s.graph_edges,
            bytes = s.json_bytes,
        ));
    }
    format!(
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">\
         <title>yProv Explorer</title>\
         <style>body{{font-family:sans-serif;margin:2em}}table{{border-collapse:collapse}}\
         td,th{{border:1px solid #ccc;padding:4px 10px;text-align:left}}\
         th{{background:#f0f0f0}}</style></head><body>\
         <h1>yProv Explorer</h1><p>{n} provenance document(s)</p>\
         <table><tr><th>id</th><th>run</th><th>entities</th><th>activities</th>\
         <th>agents</th><th>relations</th><th>metrics</th><th>artifacts</th>\
         <th>nodes</th><th>edges</th><th>bytes</th><th>exports</th></tr>\n\
         {rows}</table>{panel}{ops}</body></html>",
        n = summaries.len(),
        panel = QUERY_PANEL,
        ops = OPS_PANEL,
    )
}

/// The lineage-query panel appended to the explorer page: a JSON IR
/// textarea posted to `/api/v0/documents/{id}/query`, with the response
/// pretty-printed and — when the body asks for `\"render\": \"dot\"` —
/// the matched subgraph's DOT shown alongside.
const QUERY_PANEL: &str = r#"
<h2>Lineage query</h2>
<p>POSTs the JSON body to <code>/api/v0/documents/{id}/query</code>.
Try <code>{"audit": "leakage"}</code>,
<code>{"audit": "gdpr", "sample": "ex:s", "model": "ex:m"}</code>, or a
path pattern under <code>"query"</code>; add <code>"render": "dot"</code>
for the matched subgraph.</p>
<form id="qform">
  <label>document <input id="qdoc" size="12" placeholder="doc-1"></label><br>
  <textarea id="qbody" rows="6" cols="70">{"audit": "leakage", "render": "dot"}</textarea><br>
  <button type="submit">Run query</button>
</form>
<pre id="qout" style="background:#f8f8f8;padding:1em"></pre>
<pre id="qdot" style="background:#f0f4ff;padding:1em"></pre>
<script>
document.getElementById('qform').addEventListener('submit', async (ev) => {
  ev.preventDefault();
  const id = encodeURIComponent(document.getElementById('qdoc').value.trim());
  const out = document.getElementById('qout');
  const dot = document.getElementById('qdot');
  out.textContent = '...';
  dot.textContent = '';
  try {
    const resp = await fetch('/api/v0/documents/' + id + '/query', {
      method: 'POST',
      body: document.getElementById('qbody').value,
    });
    const text = await resp.text();
    try {
      const v = JSON.parse(text);
      if (v.dot) { dot.textContent = v.dot; delete v.dot; }
      out.textContent = 'HTTP ' + resp.status + '\n' + JSON.stringify(v, null, 2);
    } catch (_) {
      out.textContent = 'HTTP ' + resp.status + '\n' + text;
    }
  } catch (e) {
    out.textContent = String(e);
  }
});
</script>
"#;

/// The ops tab appended after the query panel: health badge, alert
/// list, the slow-request log, and a sparkline drawn from the
/// in-process tsdb (`/api/v0/obs/timeseries`). Everything is fetched
/// client-side from the `/api/v0/obs/*` endpoints, so the page stays a
/// static string on the server.
const OPS_PANEL: &str = r#"
<h2>Ops</h2>
<p><span id="ohealth">health: ?</span> &mdash;
<label>metric <input id="ometric" size="40"
  value="http_requests_total{method=&quot;GET&quot;,route=&quot;/explorer&quot;,status=&quot;200&quot;}"></label>
<button id="orefresh">Refresh</button></p>
<svg id="ospark" width="600" height="60" style="background:#f8f8f8"></svg>
<pre id="oalerts" style="background:#fff4f0;padding:1em"></pre>
<pre id="oslow" style="background:#f8f8f8;padding:1em"></pre>
<script>
function sparkline(svg, points) {
  while (svg.firstChild) svg.removeChild(svg.firstChild);
  if (!points.length) return;
  const w = svg.width.baseVal.value, h = svg.height.baseVal.value;
  const t0 = points[0].t_s, t1 = points[points.length - 1].t_s || t0 + 1;
  const max = Math.max(...points.map(p => p.max), 1e-9);
  const coords = points.map(p => {
    const x = t1 > t0 ? (p.t_s - t0) / (t1 - t0) * (w - 4) + 2 : w / 2;
    const y = h - 2 - (p.avg / max) * (h - 4);
    return x.toFixed(1) + ',' + y.toFixed(1);
  });
  const line = document.createElementNS('http://www.w3.org/2000/svg', 'polyline');
  line.setAttribute('points', coords.join(' '));
  line.setAttribute('fill', 'none');
  line.setAttribute('stroke', '#36c');
  line.setAttribute('stroke-width', '1.5');
  svg.appendChild(line);
}
async function opsRefresh() {
  const get = async (p) => (await fetch(p)).json();
  try {
    const health = await get('/api/v0/obs/health');
    document.getElementById('ohealth').textContent =
      'health: ' + (health.ready ? 'ready' : 'NOT READY') +
      ' (' + health.backend + ', ledger ' + health.ledger_entries + ')';
    const metric = document.getElementById('ometric').value.trim();
    const ts = await get('/api/v0/obs/timeseries?metric=' +
      encodeURIComponent(metric) + '&since=300');
    sparkline(document.getElementById('ospark'), ts.points || []);
    const alerts = await get('/api/v0/obs/alerts');
    document.getElementById('oalerts').textContent =
      'alerts\n' + (alerts.alerts || []).map(a =>
        a.rule + ' [' + a.phase + '] ' + a.metric + ' ' + a.cmp +
        ' ' + a.threshold + (a.last_value == null ? '' : ' (now ' + a.last_value + ')')
      ).join('\n');
    const slow = await get('/api/v0/obs/slowlog');
    const rows = [];
    for (const r of slow.routes || []) {
      for (const e of r.slowest || []) {
        rows.push((e.latency_ns / 1e6).toFixed(2).padStart(10) + 'ms  ' +
          String(e.status).padStart(3) + '  ' + e.method + ' ' + e.path +
          (e.shed ? '  shed=' + e.shed : '') +
          (e.trace_id ? '  trace=' + e.trace_id : ''));
      }
    }
    document.getElementById('oslow').textContent = 'slowlog\n' + rows.join('\n');
  } catch (e) {
    document.getElementById('ohealth').textContent = 'health: ' + String(e);
  }
}
document.getElementById('orefresh').addEventListener('click', opsRefresh);
opsRefresh();
</script>
"#;

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// A plain-text table of the summaries, explorer style.
pub fn render_table(summaries: &[DocumentSummary]) -> String {
    let mut out = String::from(
        "id          run                entities  activities  relations  metrics  artifacts  nodes  edges  bytes\n",
    );
    for s in summaries {
        out.push_str(&format!(
            "{:<11} {:<18} {:>8}  {:>10}  {:>9}  {:>7}  {:>9}  {:>5}  {:>5}  {:>5}\n",
            s.id,
            s.run_label.as_deref().unwrap_or("-"),
            s.entities,
            s.activities,
            s.relations,
            s.metrics,
            s.artifacts,
            s.graph_nodes,
            s.graph_edges,
            s.json_bytes,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::ProvDocument;

    fn yprov_style_doc(run: &str, digest: &str) -> ProvDocument {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.activity(QName::new("ex", run))
            .prov_type(QName::yprov("RunExecution"))
            .label(run);
        doc.entity(QName::new("ex", format!("{run}/metric/loss")))
            .prov_type(QName::yprov("Metric"));
        doc.entity(QName::new("ex", format!("{run}/artifact/m.ckpt")))
            .prov_type(QName::yprov("Artifact"))
            .attr(QName::yprov("sha256"), AttrValue::from(digest));
        doc.was_generated_by(
            QName::new("ex", format!("{run}/artifact/m.ckpt")),
            QName::new("ex", run),
        );
        doc
    }

    #[test]
    fn summaries_capture_shape() {
        let store = DocumentStore::new();
        store.upload(yprov_style_doc("run-1", "aa")).unwrap();
        store.upload(yprov_style_doc("run-2", "bb")).unwrap();
        let summaries = summarize(&store);
        assert_eq!(summaries.len(), 2);
        let s = &summaries[0];
        assert_eq!(s.run_label.as_deref(), Some("run-1"));
        assert_eq!(s.metrics, 1);
        assert_eq!(s.artifacts, 1);
        assert_eq!(s.activities, 1);
        assert_eq!(s.graph_nodes, 3);
        assert_eq!(s.graph_edges, 1);
        assert!(s.json_bytes > 0);
        // The summaries reused the indexes built at upload: no misses.
        assert_eq!(store.graph_cache_stats(), (2, 0));
    }

    #[test]
    fn digest_search_finds_producing_runs() {
        let store = DocumentStore::new();
        let a = store.upload(yprov_style_doc("run-1", "digest-a")).unwrap();
        store.upload(yprov_style_doc("run-2", "digest-b")).unwrap();
        let hits = find_by_artifact_digest(&store, "digest-a");
        assert_eq!(hits, vec![a]);
        assert!(find_by_artifact_digest(&store, "nope").is_empty());
    }

    #[test]
    fn table_renders_rows() {
        let store = DocumentStore::new();
        store.upload(yprov_style_doc("run-1", "aa")).unwrap();
        let table = render_table(&summarize(&store));
        assert!(table.contains("run-1"));
        assert!(table.lines().count() >= 2);
    }

    #[test]
    fn html_page_renders_and_escapes() {
        let store = DocumentStore::new();
        let mut doc = ProvDocument::new();
        doc.activity(QName::new("ex", "run"))
            .prov_type(QName::yprov("RunExecution"))
            .label("<script>alert(1)</script>");
        store.upload(doc).unwrap();
        let html = render_html(&summarize(&store));
        assert!(html.contains("<table>"));
        assert!(html.contains("doc-1"));
        assert!(!html.contains("<script>alert"), "labels must be escaped");
        assert!(html.contains("&lt;script&gt;"));
        assert!(html.contains("/api/v0/documents/doc-1/provn"));
    }

    #[test]
    fn html_page_embeds_query_panel() {
        let store = DocumentStore::new();
        store.upload(yprov_style_doc("run-1", "aa")).unwrap();
        let html = render_html(&summarize(&store));
        assert!(html.contains("Lineage query"));
        assert!(html.contains("id=\"qform\""));
        assert!(html.contains("id=\"qbody\""));
        assert!(html.contains("/query"), "panel posts to the query endpoint");
        assert!(
            html.contains("\"audit\": \"leakage\""),
            "default body is the leakage audit"
        );
    }

    #[test]
    fn html_page_embeds_ops_tab() {
        let store = DocumentStore::new();
        store.upload(yprov_style_doc("run-1", "aa")).unwrap();
        let html = render_html(&summarize(&store));
        assert!(html.contains("<h2>Ops</h2>"));
        assert!(html.contains("id=\"ospark\""), "sparkline svg present");
        assert!(html.contains("/api/v0/obs/timeseries"));
        assert!(html.contains("/api/v0/obs/health"));
        assert!(html.contains("/api/v0/obs/slowlog"));
        assert!(html.contains("/api/v0/obs/alerts"));
    }

    #[test]
    fn plain_documents_summarize_without_run_label() {
        let store = DocumentStore::new();
        let mut doc = ProvDocument::new();
        doc.entity(QName::new("ex", "thing"));
        store.upload(doc).unwrap();
        let summaries = summarize(&store);
        assert_eq!(summaries[0].run_label, None);
        assert_eq!(summaries[0].entities, 1);
    }
}
