//! Pluggable storage backends for the document store.
//!
//! [`DocumentStore`](crate::store::DocumentStore) keeps parsed
//! documents and graph indexes in memory; a [`StorageBackend`] owns the
//! *bytes* — canonical PROV-JSON per document plus the append-only
//! ledger file. Two implementations ship:
//!
//! * [`MemoryBackend`] — a mutex-guarded map, the original prototype
//!   behaviour, for tests and ephemeral stores;
//! * [`DurableBackend`] — one `<id>.json` file per document written via
//!   tmp-file + rename (a reader or a crash never observes a torn
//!   document), and a ledger that is *appended to and flushed* per
//!   upload instead of rewritten in full — turning the old O(n²) ledger
//!   persistence into O(1) per upload. fsync cadence is governed by the
//!   same [`SyncPolicy`] the yprov4ml journal uses, so the service's
//!   durability dial reads like the producer's.

use crate::error::ServiceError;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

pub use yprov4ml::journal::SyncPolicy;

/// Byte-level storage under the document store: documents keyed by
/// handle id, plus hooks for the append-only ledger.
///
/// Implementations must be safe to call from the HTTP worker pool
/// concurrently; the store serializes `put`/`ledger_append` pairs
/// itself so the ledger order matches the visible document state.
pub trait StorageBackend: Send + Sync + 'static {
    /// A short human-readable name (`"memory"`, `"durable"`).
    fn name(&self) -> &'static str;

    /// Stores (or replaces) a document's canonical JSON bytes.
    fn put(&self, id: &str, bytes: &[u8]) -> Result<(), ServiceError>;

    /// Fetches a document's bytes, `None` when absent.
    fn get(&self, id: &str) -> Result<Option<Vec<u8>>, ServiceError>;

    /// Removes a document; `true` when it existed.
    fn delete(&self, id: &str) -> Result<bool, ServiceError>;

    /// All stored ids, sorted.
    fn list(&self) -> Result<Vec<String>, ServiceError>;

    /// Visits every stored document once (open-time recovery path).
    fn scan(
        &self,
        visit: &mut dyn FnMut(&str, &[u8]) -> Result<(), ServiceError>,
    ) -> Result<(), ServiceError>;

    /// Appends one serialized ledger entry (newline included) to the
    /// backend's ledger, durably per its sync policy.
    fn ledger_append(&self, line: &str) -> Result<(), ServiceError>;

    /// The full ledger text as previously appended, `None` when no
    /// ledger exists yet.
    fn ledger_load(&self) -> Result<Option<String>, ServiceError>;

    /// Forces everything outstanding to stable storage (no-op for
    /// non-durable backends).
    fn flush(&self) -> Result<(), ServiceError>;

    // --- ReplicationLog seam -------------------------------------------
    //
    // A replica tracks, per upstream source, the exact chain it has
    // verified and applied — the replication protocol's durable cursor.
    // Kept separate from the node's own ledger so a node can be primary
    // for its own uploads and replica for several peers at once.

    /// Appends one verified replicated ledger line under `source`'s
    /// replication log, durably per the backend's sync policy.
    fn repl_append(&self, source: &str, line: &str) -> Result<(), ServiceError>;

    /// The full replication log previously appended for `source`,
    /// `None` when no frames from that source were ever applied.
    fn repl_load(&self, source: &str) -> Result<Option<String>, ServiceError>;

    /// Sources with a replication log, sorted.
    fn repl_sources(&self) -> Result<Vec<String>, ServiceError>;

    /// Count of torn-ledger-tail truncations this backend performed on
    /// load — a data-edge event worth surfacing in metrics (0 for
    /// backends that cannot tear).
    fn ledger_truncations(&self) -> u64 {
        0
    }
}

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

/// The prototype's storage: a map of byte vectors. The ledger text is
/// kept in memory too so `scan`/`ledger_load` behave like a real
/// backend for store-level code paths and tests.
#[derive(Default)]
pub struct MemoryBackend {
    docs: Mutex<BTreeMap<String, Vec<u8>>>,
    ledger: Mutex<String>,
    repl: Mutex<BTreeMap<String, String>>,
}

impl MemoryBackend {
    /// An empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for MemoryBackend {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn put(&self, id: &str, bytes: &[u8]) -> Result<(), ServiceError> {
        self.docs.lock().insert(id.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, id: &str) -> Result<Option<Vec<u8>>, ServiceError> {
        Ok(self.docs.lock().get(id).cloned())
    }

    fn delete(&self, id: &str) -> Result<bool, ServiceError> {
        Ok(self.docs.lock().remove(id).is_some())
    }

    fn list(&self) -> Result<Vec<String>, ServiceError> {
        Ok(self.docs.lock().keys().cloned().collect())
    }

    fn scan(
        &self,
        visit: &mut dyn FnMut(&str, &[u8]) -> Result<(), ServiceError>,
    ) -> Result<(), ServiceError> {
        for (id, bytes) in self.docs.lock().iter() {
            visit(id, bytes)?;
        }
        Ok(())
    }

    fn ledger_append(&self, line: &str) -> Result<(), ServiceError> {
        self.ledger.lock().push_str(line);
        Ok(())
    }

    fn ledger_load(&self) -> Result<Option<String>, ServiceError> {
        let text = self.ledger.lock();
        Ok((!text.is_empty()).then(|| text.clone()))
    }

    fn flush(&self) -> Result<(), ServiceError> {
        Ok(())
    }

    fn repl_append(&self, source: &str, line: &str) -> Result<(), ServiceError> {
        self.repl
            .lock()
            .entry(source.to_string())
            .or_default()
            .push_str(line);
        Ok(())
    }

    fn repl_load(&self, source: &str) -> Result<Option<String>, ServiceError> {
        Ok(self.repl.lock().get(source).cloned())
    }

    fn repl_sources(&self) -> Result<Vec<String>, ServiceError> {
        Ok(self.repl.lock().keys().cloned().collect())
    }
}

// ---------------------------------------------------------------------------
// Durable backend
// ---------------------------------------------------------------------------

/// Best-effort directory fsync so renames and fresh file names survive
/// power loss (a no-op on platforms where directories cannot be
/// opened).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

struct LedgerFile {
    file: Option<File>,
    unsynced: u32,
}

/// Filesystem-backed storage: `<id>.json` per document, written
/// atomically (tmp + rename), an append-only `ledger.txt`, and one
/// `repl-<source>.chain` per replicated upstream.
pub struct DurableBackend {
    dir: PathBuf,
    sync: SyncPolicy,
    ledger: Mutex<LedgerFile>,
    truncations: std::sync::atomic::AtomicU64,
}

impl DurableBackend {
    /// Opens (creating if needed) a backend rooted at `dir` with the
    /// default sync policy.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ServiceError> {
        Self::open_with_sync(dir, SyncPolicy::default())
    }

    /// Opens with an explicit fsync cadence. `SyncPolicy::Always` gives
    /// WAL-grade durability per upload; `EveryN` bounds the loss window;
    /// `OnFlush` trusts the OS page cache (process crashes still lose
    /// nothing, power loss may).
    pub fn open_with_sync(dir: impl Into<PathBuf>, sync: SyncPolicy) -> Result<Self, ServiceError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| ServiceError::io(format!("create {}", dir.display()), e))?;
        Ok(DurableBackend {
            dir,
            sync,
            ledger: Mutex::new(LedgerFile {
                file: None,
                unsynced: 0,
            }),
            truncations: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether document writes fsync before the rename is published.
    fn fsync_documents(&self) -> bool {
        !matches!(self.sync, SyncPolicy::OnFlush)
    }

    fn doc_path(&self, id: &str) -> Result<PathBuf, ServiceError> {
        // Handle ids become file names: reject anything that could
        // escape the directory or collide with the backend's own files.
        if id.is_empty()
            || id.starts_with('.')
            || id.contains(['/', '\\'])
            || id == "ledger"
            || id.contains('\0')
        {
            return Err(ServiceError::InvalidDocument {
                reason: format!("id {id:?} is not a valid durable handle"),
            });
        }
        Ok(self.dir.join(format!("{id}.json")))
    }

    fn ledger_path(&self) -> PathBuf {
        self.dir.join("ledger.txt")
    }

    fn repl_path(&self, source: &str) -> Result<PathBuf, ServiceError> {
        // Source node ids become file names too; same escape rules as
        // document handles.
        if source.is_empty()
            || source.starts_with('.')
            || source.contains(['/', '\\'])
            || source.contains('\0')
        {
            return Err(ServiceError::InvalidDocument {
                reason: format!("source {source:?} is not a valid replication log name"),
            });
        }
        Ok(self.dir.join(format!("repl-{source}.chain")))
    }

    /// Loads a line-oriented chain file, repairing (and counting) a
    /// torn final record left by a crash mid-append. The truncation is
    /// no longer silent: it logs a recovery-style warning and shows up
    /// in `/metrics` as `store_ledger_truncations_total`.
    fn load_chain_file(&self, path: &Path) -> Result<Option<String>, ServiceError> {
        let mut text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(ServiceError::io(format!("read {}", path.display()), e)),
        };
        if !text.is_empty() && !text.ends_with('\n') {
            // A crash mid-append tore the final record. Truncate the
            // file back to the last complete line so future appends
            // start on a fresh line instead of gluing a new record onto
            // the fragment.
            let keep = text.rfind('\n').map(|p| p + 1).unwrap_or(0);
            let torn = text.len() - keep;
            text.truncate(keep);
            let file = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| ServiceError::io(format!("open {}", path.display()), e))?;
            file.set_len(keep as u64)
                .map_err(|e| ServiceError::io(format!("truncate {}", path.display()), e))?;
            file.sync_data()
                .map_err(|e| ServiceError::io(format!("fsync {}", path.display()), e))?;
            self.truncations
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            eprintln!(
                "[yprov-service] recovery: dropped a torn {torn}-byte tail from {} \
                 (crash mid-append; chain before it is intact)",
                path.display()
            );
        }
        Ok(Some(text))
    }
}

impl StorageBackend for DurableBackend {
    fn name(&self) -> &'static str {
        "durable"
    }

    /// Tmp-file + rename: a crash at any point leaves either the old
    /// document, the new document, or a stale `*.json.tmp` that the
    /// next `scan` sweeps up — never a torn `<id>.json`.
    fn put(&self, id: &str, bytes: &[u8]) -> Result<(), ServiceError> {
        let path = self.doc_path(id)?;
        let tmp = self.dir.join(format!("{id}.json.tmp"));
        let mut file = File::create(&tmp)
            .map_err(|e| ServiceError::io(format!("create {}", tmp.display()), e))?;
        file.write_all(bytes)
            .map_err(|e| ServiceError::io(format!("write {}", tmp.display()), e))?;
        if self.fsync_documents() {
            file.sync_data()
                .map_err(|e| ServiceError::io(format!("fsync {}", tmp.display()), e))?;
        }
        drop(file);
        std::fs::rename(&tmp, &path)
            .map_err(|e| ServiceError::io(format!("rename into {}", path.display()), e))?;
        if self.fsync_documents() {
            sync_dir(&self.dir);
        }
        Ok(())
    }

    fn get(&self, id: &str) -> Result<Option<Vec<u8>>, ServiceError> {
        let path = self.doc_path(id)?;
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(ServiceError::io(format!("read {}", path.display()), e)),
        }
    }

    fn delete(&self, id: &str) -> Result<bool, ServiceError> {
        let path = self.doc_path(id)?;
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(ServiceError::io(format!("remove {}", path.display()), e)),
        }
    }

    fn list(&self) -> Result<Vec<String>, ServiceError> {
        let mut ids = Vec::new();
        self.scan(&mut |id, _| {
            ids.push(id.to_string());
            Ok(())
        })?;
        Ok(ids)
    }

    fn scan(
        &self,
        visit: &mut dyn FnMut(&str, &[u8]) -> Result<(), ServiceError>,
    ) -> Result<(), ServiceError> {
        let read_dir = std::fs::read_dir(&self.dir)
            .map_err(|e| ServiceError::io(format!("read dir {}", self.dir.display()), e))?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in read_dir {
            let path = entry
                .map_err(|e| ServiceError::io("read dir entry", e))?
                .path();
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            let Some(name) = name else { continue };
            if name.ends_with(".json.tmp") {
                // Crash debris from an interrupted put: the rename never
                // happened, so the upload never became visible. Sweep it.
                let _ = std::fs::remove_file(&path);
                continue;
            }
            if path.extension().is_some_and(|e| e == "json") {
                paths.push(path);
            }
        }
        paths.sort();
        for path in paths {
            let id = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            let bytes = std::fs::read(&path)
                .map_err(|e| ServiceError::io(format!("read {}", path.display()), e))?;
            visit(&id, &bytes)?;
        }
        Ok(())
    }

    /// One `write(2)` per upload — the whole-file rewrite this replaces
    /// made persisting n uploads cost O(n²) ledger bytes.
    fn ledger_append(&self, line: &str) -> Result<(), ServiceError> {
        let mut state = self.ledger.lock();
        if state.file.is_none() {
            let path = self.ledger_path();
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| ServiceError::io(format!("open {}", path.display()), e))?;
            sync_dir(&self.dir);
            state.file = Some(file);
        }
        let file = state.file.as_mut().expect("opened above");
        file.write_all(line.as_bytes())
            .map_err(|e| ServiceError::io("append ledger entry", e))?;
        match self.sync {
            SyncPolicy::Always => {
                file.sync_data()
                    .map_err(|e| ServiceError::io("fsync ledger", e))?;
            }
            SyncPolicy::EveryN(n) => {
                state.unsynced += 1;
                if state.unsynced >= n.max(1) {
                    state
                        .file
                        .as_mut()
                        .expect("opened above")
                        .sync_data()
                        .map_err(|e| ServiceError::io("fsync ledger", e))?;
                    state.unsynced = 0;
                }
            }
            SyncPolicy::OnFlush => {}
        }
        Ok(())
    }

    fn ledger_load(&self) -> Result<Option<String>, ServiceError> {
        self.load_chain_file(&self.ledger_path())
    }

    fn flush(&self) -> Result<(), ServiceError> {
        let mut state = self.ledger.lock();
        if let Some(file) = state.file.as_mut() {
            file.sync_data()
                .map_err(|e| ServiceError::io("fsync ledger", e))?;
            state.unsynced = 0;
        }
        sync_dir(&self.dir);
        Ok(())
    }

    /// Open-append-close per line: replication frames are not the hot
    /// path, and skipping a per-source handle cache keeps the seam
    /// small. `SyncPolicy::OnFlush` still skips the fsync.
    fn repl_append(&self, source: &str, line: &str) -> Result<(), ServiceError> {
        let path = self.repl_path(source)?;
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| ServiceError::io(format!("open {}", path.display()), e))?;
        file.write_all(line.as_bytes())
            .map_err(|e| ServiceError::io(format!("append {}", path.display()), e))?;
        if !matches!(self.sync, SyncPolicy::OnFlush) {
            file.sync_data()
                .map_err(|e| ServiceError::io(format!("fsync {}", path.display()), e))?;
        }
        Ok(())
    }

    fn repl_load(&self, source: &str) -> Result<Option<String>, ServiceError> {
        let path = self.repl_path(source)?;
        self.load_chain_file(&path)
    }

    fn repl_sources(&self) -> Result<Vec<String>, ServiceError> {
        let read_dir = std::fs::read_dir(&self.dir)
            .map_err(|e| ServiceError::io(format!("read dir {}", self.dir.display()), e))?;
        let mut sources = Vec::new();
        for entry in read_dir {
            let path = entry
                .map_err(|e| ServiceError::io("read dir entry", e))?
                .path();
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            if let Some(source) = name
                .strip_prefix("repl-")
                .and_then(|s| s.strip_suffix(".chain"))
            {
                sources.push(source.to_string());
            }
        }
        sources.sort();
        Ok(sources)
    }

    fn ledger_truncations(&self) -> u64 {
        self.truncations.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ysvc_backend_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn memory_backend_round_trips() {
        let b = MemoryBackend::new();
        b.put("doc-1", b"one").unwrap();
        b.put("doc-2", b"two").unwrap();
        assert_eq!(b.get("doc-1").unwrap().as_deref(), Some(&b"one"[..]));
        assert_eq!(b.list().unwrap(), vec!["doc-1", "doc-2"]);
        assert!(b.delete("doc-1").unwrap());
        assert!(!b.delete("doc-1").unwrap());
        b.ledger_append("line 1\n").unwrap();
        assert_eq!(b.ledger_load().unwrap().as_deref(), Some("line 1\n"));
    }

    #[test]
    fn durable_backend_round_trips_and_persists() {
        let dir = tmp("rt");
        {
            let b = DurableBackend::open(&dir).unwrap();
            b.put("doc-1", b"{\"a\":1}").unwrap();
            b.put("doc-1", b"{\"a\":2}").unwrap(); // replace
            b.ledger_append("0 doc-1 d p h\n").unwrap();
            b.flush().unwrap();
        }
        let b = DurableBackend::open(&dir).unwrap();
        assert_eq!(b.get("doc-1").unwrap().as_deref(), Some(&b"{\"a\":2}"[..]));
        assert_eq!(b.list().unwrap(), vec!["doc-1"]);
        assert_eq!(b.ledger_load().unwrap().as_deref(), Some("0 doc-1 d p h\n"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_scan_sweeps_interrupted_puts() {
        let dir = tmp("torn");
        let b = DurableBackend::open(&dir).unwrap();
        b.put("doc-1", b"{}").unwrap();
        // A crash mid-put leaves a tmp file but no torn document.
        std::fs::write(dir.join("doc-2.json.tmp"), b"{\"half").unwrap();
        let mut ids = Vec::new();
        b.scan(&mut |id, bytes| {
            assert!(!bytes.is_empty());
            ids.push(id.to_string());
            Ok(())
        })
        .unwrap();
        assert_eq!(ids, vec!["doc-1"]);
        assert!(!dir.join("doc-2.json.tmp").exists(), "debris swept");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_rejects_escaping_ids() {
        let dir = tmp("esc");
        let b = DurableBackend::open(&dir).unwrap();
        for bad in ["../evil", "a/b", "", ".hidden", "ledger"] {
            assert!(
                matches!(b.put(bad, b"{}"), Err(ServiceError::InvalidDocument { .. })),
                "{bad:?} must be rejected"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_ledger_tail_is_truncated_on_load() {
        let dir = tmp("ledger_torn");
        {
            let b = DurableBackend::open(&dir).unwrap();
            b.ledger_append("0 doc-1 d p h\n").unwrap();
            b.flush().unwrap();
        }
        // Crash mid-append: a partial, unterminated record.
        std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("ledger.txt"))
            .unwrap()
            .write_all(b"1 doc-2 dead")
            .unwrap();
        let b = DurableBackend::open(&dir).unwrap();
        assert_eq!(b.ledger_load().unwrap().as_deref(), Some("0 doc-1 d p h\n"));
        // The file itself was repaired: a fresh append lands on its own
        // line.
        b.ledger_append("1 doc-2 d p h\n").unwrap();
        b.flush().unwrap();
        let text = std::fs::read_to_string(dir.join("ledger.txt")).unwrap();
        assert_eq!(text, "0 doc-1 d p h\n1 doc-2 d p h\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_policies_all_write_the_same_bytes() {
        for (tag, sync) in [
            ("always", SyncPolicy::Always),
            ("everyn", SyncPolicy::EveryN(2)),
            ("onflush", SyncPolicy::OnFlush),
        ] {
            let dir = tmp(&format!("sync_{tag}"));
            let b = DurableBackend::open_with_sync(&dir, sync).unwrap();
            for i in 0..5 {
                b.put(&format!("doc-{i}"), b"{}").unwrap();
                b.ledger_append(&format!("{i} doc-{i} d p h\n")).unwrap();
            }
            b.flush().unwrap();
            assert_eq!(b.list().unwrap().len(), 5);
            assert_eq!(b.ledger_load().unwrap().unwrap().lines().count(), 5);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
