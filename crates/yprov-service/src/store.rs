//! The in-process provenance document store.
//!
//! A [`DocumentStore`] layers three things over a pluggable
//! [`StorageBackend`]:
//!
//! * **parsed documents** — `Arc<ProvDocument>` per handle id, shared
//!   with every reader;
//! * **a graph index cache** — one [`SharedGraph`] per document, built
//!   at upload time (or on first query after reopening a durable
//!   store), so `ancestors`/`subgraph` stop paying an O(document)
//!   rebuild per request and become O(answer) walks over a shared
//!   index. Replacement and deletion invalidate the cached index;
//! * **the tamper-evident ledger** — a hash chain over every upload,
//!   appended (not rewritten) through the backend's ledger hook;
//! * **watch cursors** — a per-document version that bumps on every
//!   mutation, with a condvar long-poll (`wait_for_newer`) behind the
//!   service's watch endpoint. Delta uploads fold into the stored
//!   document via [`DocumentStore::merge_delta`], extending the cached
//!   index incrementally when it is still current.
//!
//! Cache hits/misses and backend put/get latency are recorded in the
//! store's [`obs::Registry`], exposed through the HTTP `/metrics`
//! endpoint.

use crate::backend::{DurableBackend, MemoryBackend, StorageBackend, SyncPolicy};
use crate::error::ServiceError;
use crate::ledger::{Ledger, LedgerEntry};
use parking_lot::{Condvar, Mutex, RwLock};
use prov_graph::SharedGraph;
use prov_model::query::PathQuery;
use prov_model::{ProvDocument, QName};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use yprov4ml::hash::sha256_hex;

struct StoreMetrics {
    cache_hits: Arc<obs::Counter>,
    cache_misses: Arc<obs::Counter>,
    put_seconds: Arc<obs::Histogram>,
    get_seconds: Arc<obs::Histogram>,
    ledger_truncations: Arc<obs::Counter>,
    incremental_merges: Arc<obs::Counter>,
    query_plan_seconds: Arc<obs::Histogram>,
    query_exec_seconds: Arc<obs::Histogram>,
}

impl StoreMetrics {
    fn new(registry: &obs::Registry) -> Self {
        registry.set_help(
            "store_graph_cache_hits_total",
            "Lineage queries answered from a cached graph index.",
        );
        registry.set_help(
            "store_graph_cache_misses_total",
            "Lineage queries that had to (re)build the graph index.",
        );
        registry.set_help(
            "store_backend_put_seconds",
            "Latency of storage-backend document writes.",
        );
        registry.set_help(
            "store_backend_get_seconds",
            "Latency of storage-backend document reads.",
        );
        registry.set_help(
            "store_ledger_truncations_total",
            "Torn ledger/replication-chain tails truncated on load.",
        );
        registry.set_help(
            "store_incremental_merges_total",
            "Delta merges that extended the cached graph index in place \
             instead of rebuilding it from scratch.",
        );
        registry.set_help(
            "query_requests_total",
            "Lineage queries served, by scenario (path, leakage, gdpr, \
             fairness, join).",
        );
        registry.set_help(
            "query_plan_seconds",
            "Time spent costing anchor sides and choosing a query plan.",
        );
        registry.set_help(
            "query_exec_seconds",
            "Time spent executing a planned query against the index.",
        );
        StoreMetrics {
            cache_hits: registry.counter("store_graph_cache_hits_total"),
            cache_misses: registry.counter("store_graph_cache_misses_total"),
            put_seconds: registry.histogram("store_backend_put_seconds"),
            get_seconds: registry.histogram("store_backend_get_seconds"),
            ledger_truncations: registry.counter("store_ledger_truncations_total"),
            incremental_merges: registry.counter("store_incremental_merges_total"),
            query_plan_seconds: registry.histogram("query_plan_seconds"),
            query_exec_seconds: registry.histogram("query_exec_seconds"),
        }
    }
}

/// Per-document version cursors plus the condvar parked watchers sleep
/// on. A document's version starts at 1 when it first becomes visible
/// (upload, replicated apply, or load at open) and bumps on every
/// mutation — replacement, delta merge, replicated refresh. Deletion
/// removes the cursor so waiters observe [`WatchOutcome::Gone`].
struct WatchHub {
    versions: Mutex<BTreeMap<String, u64>>,
    cv: Condvar,
}

impl WatchHub {
    fn bump(&self, id: &str) -> u64 {
        let mut versions = self.versions.lock();
        let slot = versions.entry(id.to_string()).or_insert(0);
        *slot += 1;
        let v = *slot;
        self.cv.notify_all();
        v
    }

    fn remove(&self, id: &str) {
        let removed = self.versions.lock().remove(id).is_some();
        if removed {
            self.cv.notify_all();
        }
    }
}

/// What a long-poll wait observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchOutcome {
    /// The document moved past the caller's cursor; the payload is the
    /// current version.
    Changed(u64),
    /// The wait timed out with the document still at (or below) the
    /// caller's cursor; the payload is the current version.
    Unchanged(u64),
    /// The document does not exist (never did, or was deleted while the
    /// caller was parked).
    Gone,
}

/// One upload's full outcome — what a replicating primary needs to ship
/// the write downstream: the handle id, the chain entry committing to
/// it, and the canonical bytes the digest covers.
#[derive(Debug, Clone)]
pub struct Upload {
    /// The handle id the document landed under.
    pub id: String,
    /// The ledger entry appended for this upload.
    pub entry: LedgerEntry,
    /// The canonical PROV-JSON the entry's digest commits to.
    pub canonical_json: String,
}

/// Chain-integrity check shared by open-time recovery and the verify
/// endpoint: every chain (own ledger + replication cursors) must verify
/// internally, and every surviving document's bytes must hash to the
/// latest digest *some* chain committed for its id — a document may be
/// committed by one chain and legitimately replaced through another
/// after a promotion moves write ownership between nodes.
fn verify_chains(
    ledger: &Ledger,
    repl: &BTreeMap<String, Ledger>,
    lookup: impl Fn(&str) -> Option<Vec<u8>>,
) -> Result<(), ServiceError> {
    let mut latest: HashMap<String, Vec<String>> = HashMap::new();
    for chain in std::iter::once(ledger).chain(repl.values()) {
        chain.verify_chain()?;
        let mut per_chain: HashMap<&str, &str> = HashMap::new();
        for e in chain.entries() {
            per_chain.insert(&e.document_id, &e.document_digest);
        }
        for (id, digest) in per_chain {
            latest
                .entry(id.to_string())
                .or_default()
                .push(digest.to_string());
        }
    }
    for (id, digests) in &latest {
        if let Some(bytes) = lookup(id) {
            let actual = sha256_hex(&bytes);
            if !digests.contains(&actual) {
                return Err(ServiceError::LedgerVerification(
                    crate::ledger::LedgerIssue::DocumentChanged {
                        index: 0,
                        document_id: id.clone(),
                    },
                ));
            }
        }
    }
    Ok(())
}

/// How a replicated frame was absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationApply {
    /// The frame extended the source's chain and the document was
    /// stored (or refreshed) locally.
    Applied,
    /// The frame was already applied — duplicate delivery is idempotent.
    Duplicate,
    /// The frame extended the chain but carried no document bytes (a
    /// re-synced entry superseded by a later upload of the same id);
    /// only the cursor advanced.
    ChainOnly,
}

/// A thread-safe store of provenance documents keyed by handle ids
/// (`doc-1`, `doc-2`, ...). Cheap to clone (shared state).
#[derive(Clone)]
pub struct DocumentStore {
    inner: Arc<Inner>,
}

struct Inner {
    backend: Box<dyn StorageBackend>,
    docs: RwLock<BTreeMap<String, Arc<ProvDocument>>>,
    /// Per-document graph index cache; entries are invalidated on
    /// replace/delete and rebuilt lazily on query.
    graphs: RwLock<HashMap<String, SharedGraph>>,
    next_id: AtomicU64,
    /// Tamper-evident hash chain over uploads this node accepted as
    /// the write primary.
    ledger: Mutex<Ledger>,
    /// Per-source verified replication cursors: the exact chain of
    /// frames applied from each upstream peer, byte-identical to the
    /// upstream's own ledger prefix.
    repl: Mutex<BTreeMap<String, Ledger>>,
    registry: Arc<obs::Registry>,
    metrics: StoreMetrics,
    /// Version cursors for the watch endpoint.
    watch: WatchHub,
}

impl Default for DocumentStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DocumentStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::with_backend(MemoryBackend::new()).expect("in-memory backend cannot fail to open")
    }

    /// A store persisted under `dir` with the default fsync cadence:
    /// documents live as `<id>.json` files written atomically
    /// (tmp + rename), uploads append one line to the tamper-evident
    /// ledger (`ledger.txt`), and reopening the directory restores
    /// both. The ledger is verified against the reloaded documents on
    /// open, so a provenance file edited behind the service's back
    /// fails loudly.
    pub fn persistent(dir: impl Into<PathBuf>) -> Result<Self, ServiceError> {
        Self::with_backend(DurableBackend::open(dir)?)
    }

    /// [`Self::persistent`] with an explicit [`SyncPolicy`].
    pub fn persistent_with_sync(
        dir: impl Into<PathBuf>,
        sync: SyncPolicy,
    ) -> Result<Self, ServiceError> {
        Self::with_backend(DurableBackend::open_with_sync(dir, sync)?)
    }

    /// Opens a store over any [`StorageBackend`]: replays the backend's
    /// ledger, loads and parses every stored document, restores the id
    /// counter past the highest `doc-N`, and verifies the ledger chain
    /// against the surviving documents.
    pub fn with_backend(backend: impl StorageBackend) -> Result<Self, ServiceError> {
        Self::open(Box::new(backend))
    }

    fn open(backend: Box<dyn StorageBackend>) -> Result<Self, ServiceError> {
        let ledger = match backend.ledger_load()? {
            Some(text) => Ledger::from_text(&text)?,
            None => Ledger::new(),
        };

        // Restore every replication cursor so a restarted replica
        // resumes exactly where its verified chains left off.
        let mut repl = BTreeMap::new();
        for source in backend.repl_sources()? {
            if let Some(text) = backend.repl_load(&source)? {
                let chain = Ledger::from_text(&text)?;
                chain.verify_chain()?;
                repl.insert(source, chain);
            }
        }

        let mut docs = BTreeMap::new();
        let mut max_id = 0u64;
        backend.scan(&mut |id, bytes| {
            let text = std::str::from_utf8(bytes).map_err(|e| ServiceError::InvalidDocument {
                reason: format!("{id}: stored bytes are not UTF-8: {e}"),
            })?;
            let doc =
                ProvDocument::from_json_str(text).map_err(|e| ServiceError::InvalidDocument {
                    reason: format!("{id}: {e}"),
                })?;
            if let Some(n) = id.strip_prefix("doc-").and_then(|n| n.parse::<u64>().ok()) {
                max_id = max_id.max(n);
            }
            docs.insert(id.to_string(), Arc::new(doc));
            Ok(())
        })?;

        // Integrity: every chain must be sound and the latest surviving
        // version of every document must hash as recorded by some chain.
        verify_chains(&ledger, &repl, |id| backend.get(id).ok().flatten())?;

        let registry = Arc::new(obs::Registry::new());
        let metrics = StoreMetrics::new(&registry);
        // Every chain load above has happened by now; surface the torn
        // tails the backend repaired so they are visible in /metrics.
        metrics.ledger_truncations.add(backend.ledger_truncations());
        // Reloaded documents start their watch cursor at 1 — a watcher
        // reconnecting after a restart with `after=0` sees them as
        // changed and refetches.
        let versions = docs.keys().map(|id| (id.clone(), 1u64)).collect();
        Ok(DocumentStore {
            inner: Arc::new(Inner {
                backend,
                docs: RwLock::new(docs),
                graphs: RwLock::new(HashMap::new()),
                next_id: AtomicU64::new(max_id),
                ledger: Mutex::new(ledger),
                repl: Mutex::new(repl),
                registry,
                metrics,
                watch: WatchHub {
                    versions: Mutex::new(versions),
                    cv: Condvar::new(),
                },
            }),
        })
    }

    /// The active backend's name (`"memory"`, `"durable"`).
    pub fn backend_name(&self) -> &'static str {
        self.inner.backend.name()
    }

    /// The store's metrics registry (cache hit/miss counters, backend
    /// latency histograms).
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.inner.registry
    }

    /// `(hits, misses)` of the graph index cache so far.
    pub fn graph_cache_stats(&self) -> (u64, u64) {
        (
            self.inner.metrics.cache_hits.get(),
            self.inner.metrics.cache_misses.get(),
        )
    }

    /// How many delta merges extended the cached graph index in place
    /// (the `store_incremental_merges_total` counter).
    pub fn incremental_merges(&self) -> u64 {
        self.inner.metrics.incremental_merges.get()
    }

    /// The ledger entries, oldest first.
    pub fn ledger_entries(&self) -> Vec<crate::ledger::LedgerEntry> {
        self.inner.ledger.lock().entries().to_vec()
    }

    /// Forces outstanding backend state (ledger tail, directory
    /// entries) to stable storage.
    pub fn flush(&self) -> Result<(), ServiceError> {
        self.inner.backend.flush()
    }

    /// Drops every cached graph index (they rebuild lazily on the next
    /// query). Exists for benchmarks and tests that need a cold cache.
    #[doc(hidden)]
    pub fn clear_index_cache(&self) {
        self.inner.graphs.write().clear();
    }

    /// Serializes, persists and indexes one document under `id`.
    ///
    /// The document is canonicalized first, so the stored bytes (and the
    /// digest the ledger commits to) are identical however the relations
    /// were ordered at upload — which is what lets a stream of deltas
    /// converge byte-for-byte with a finalize-only upload.
    fn insert(&self, id: String, mut doc: ProvDocument) -> Result<Upload, ServiceError> {
        doc.canonicalize();
        let json = doc.to_json_string()?;
        // One critical section for the byte write, the ledger append
        // *and* the in-memory maps, so chain order always matches
        // visible state even under concurrent replacement of the same
        // id — and a concurrent delta merge can never interleave its
        // read-modify-write with ours.
        let ledger = &mut *self.inner.ledger.lock();
        let put_span = self.inner.metrics.put_seconds.start_span();
        self.inner.backend.put(&id, json.as_bytes())?;
        drop(put_span);
        let entry = ledger.append(&id, json.as_bytes()).clone();
        self.inner.backend.ledger_append(&entry.to_line())?;
        let doc = Arc::new(doc);
        {
            // Graph and document swap under both write locks (graphs
            // before docs, the store-wide order) so no reader ever pairs
            // the new document with a superseded index or vice versa.
            let mut graphs = self.inner.graphs.write();
            let mut docs = self.inner.docs.write();
            // Build the graph index once, at upload time; queries share it.
            graphs.insert(id.clone(), SharedGraph::new(Arc::clone(&doc)));
            docs.insert(id.clone(), doc);
        }
        self.inner.watch.bump(&id);
        Ok(Upload {
            id,
            entry,
            canonical_json: json,
        })
    }

    /// Stores a document, returning its handle id.
    pub fn upload(&self, doc: ProvDocument) -> Result<String, ServiceError> {
        self.upload_full(doc).map(|u| u.id)
    }

    /// [`Self::upload`] returning the full [`Upload`] (ledger entry +
    /// canonical bytes) — what a replicating primary streams downstream.
    pub fn upload_full(&self, doc: ProvDocument) -> Result<Upload, ServiceError> {
        let id = format!(
            "doc-{}",
            self.inner.next_id.fetch_add(1, Ordering::Relaxed) + 1
        );
        self.insert(id, doc)
    }

    /// Stores a document under a caller-chosen id (replacing any
    /// previous document with that id, which also invalidates its
    /// cached graph index).
    ///
    /// Claiming a `doc-N` id advances the auto-id counter past `N`, so
    /// a later [`Self::upload`] can never silently overwrite it.
    pub fn upload_as(
        &self,
        id: impl Into<String>,
        doc: ProvDocument,
    ) -> Result<String, ServiceError> {
        self.upload_as_full(id, doc).map(|u| u.id)
    }

    /// [`Self::upload_as`] returning the full [`Upload`].
    pub fn upload_as_full(
        &self,
        id: impl Into<String>,
        doc: ProvDocument,
    ) -> Result<Upload, ServiceError> {
        let id = id.into();
        if let Some(n) = id.strip_prefix("doc-").and_then(|n| n.parse::<u64>().ok()) {
            self.inner.next_id.fetch_max(n, Ordering::Relaxed);
        }
        self.insert(id, doc)
    }

    /// Fetches a document.
    pub fn get(&self, id: &str) -> Option<Arc<ProvDocument>> {
        self.inner.docs.read().get(id).cloned()
    }

    /// The document's canonical JSON, served from the backend's stored
    /// bytes when available (timed as backend get latency) and
    /// re-serialized from the parsed document otherwise.
    pub fn document_json(&self, id: &str) -> Result<String, ServiceError> {
        let get_span = self.inner.metrics.get_seconds.start_span();
        let bytes = self.inner.backend.get(id)?;
        drop(get_span);
        if let Some(bytes) = bytes {
            return String::from_utf8(bytes).map_err(|e| ServiceError::InvalidDocument {
                reason: format!("{id}: stored bytes are not UTF-8: {e}"),
            });
        }
        match self.get(id) {
            Some(doc) => Ok(doc.to_json_string()?),
            None => Err(ServiceError::NotFound { id: id.to_string() }),
        }
    }

    /// Removes a document; `Ok(true)` when it existed. The ledger keeps
    /// its record — deletions stay visible in history — and the cached
    /// graph index is dropped.
    pub fn delete(&self, id: &str) -> Result<bool, ServiceError> {
        let existed_on_backend = self.inner.backend.delete(id)?;
        let existed = {
            // Both maps clear under both write locks: a lazy graph
            // builder can no longer observe the half-deleted state
            // (graph gone, document still present) and resurrect a
            // cache entry for a dead id.
            let mut graphs = self.inner.graphs.write();
            let mut docs = self.inner.docs.write();
            graphs.remove(id);
            docs.remove(id).is_some()
        };
        self.inner.watch.remove(id);
        Ok(existed || existed_on_backend)
    }

    /// All handle ids, sorted.
    pub fn list(&self) -> Vec<String> {
        self.inner.docs.read().keys().cloned().collect()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.inner.docs.read().len()
    }

    /// True when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached [`SharedGraph`] for `id`, building (and caching) it
    /// on first use. Every lineage query and explorer traversal routes
    /// through here — the hit path is a map lookup plus two `Arc`
    /// clones.
    pub fn graph(&self, id: &str) -> Result<SharedGraph, ServiceError> {
        if let Some(g) = self.inner.graphs.read().get(id) {
            self.inner.metrics.cache_hits.inc();
            return Ok(g.clone());
        }
        let doc = self
            .get(id)
            .ok_or_else(|| ServiceError::NotFound { id: id.to_string() })?;
        self.inner.metrics.cache_misses.inc();
        let built = SharedGraph::new(Arc::clone(&doc));
        let mut graphs = self.inner.graphs.write();
        // A racing query may have built it first; keep the existing one
        // so concurrent views share a single index.
        if let Some(g) = graphs.get(id) {
            return Ok(g.clone());
        }
        // Re-check, under the write lock, that the document we indexed
        // is still the current one. Without this a builder racing a
        // replace (or delete) would re-insert an index over the
        // superseded document *after* the writer invalidated the cache,
        // and every later query would serve stale lineage as a "hit".
        let docs = self.inner.docs.read();
        match docs.get(id) {
            Some(current) if Arc::ptr_eq(current, &doc) => {
                graphs.insert(id.to_string(), built.clone());
                Ok(built)
            }
            // Replaced while we were building: serve an index over the
            // current document but leave the cache to the writer.
            Some(current) => Ok(SharedGraph::new(Arc::clone(current))),
            None => Err(ServiceError::NotFound { id: id.to_string() }),
        }
    }

    /// Provenance ancestors of `focus` inside document `id` (the
    /// lineage query of the yProv API), answered from the cached index.
    pub fn ancestors(&self, id: &str, focus: &QName) -> Result<Vec<QName>, ServiceError> {
        let shared = self.graph(id)?;
        let graph = shared.view();
        Ok(graph.ancestors(focus).into_iter().collect())
    }

    /// The sub-document induced by `focus` and everything connected to
    /// it (ancestors + descendants), answered from the cached index.
    pub fn subgraph(&self, id: &str, focus: &QName) -> Result<ProvDocument, ServiceError> {
        let shared = self.graph(id)?;
        let graph = shared.view();
        let mut keep = graph.ancestors(focus);
        keep.extend(graph.descendants(focus));
        keep.insert(focus.clone());
        Ok(prov_graph::subgraph(shared.document(), &keep))
    }

    // -----------------------------------------------------------------
    // Planned path-pattern queries
    // -----------------------------------------------------------------

    /// Counts one served query under its scenario label
    /// (`query_requests_total{scenario="..."}`). Audit handlers that do
    /// not route through [`Self::run_query`] call this directly.
    pub fn note_query(&self, scenario: &str) {
        self.inner
            .registry
            .counter(&format!("query_requests_total{{scenario=\"{scenario}\"}}"))
            .inc();
    }

    /// Records a query's plan/execute split into the store's latency
    /// histograms.
    pub fn note_query_timing(&self, planned: Duration, executed: Duration) {
        self.inner.metrics.query_plan_seconds.record(planned);
        self.inner.metrics.query_exec_seconds.record(executed);
    }

    /// The graph a query runs against: document `id`'s cached index
    /// when `extra` is empty, otherwise an ad-hoc index over the
    /// canonical merge of `id` and every document in `extra` (the
    /// cross-document join view). The merged view is built per request
    /// — joins are explicitly the expensive path; single-document
    /// queries stay on the O(1)-lookup cache.
    pub fn query_view(&self, id: &str, extra: &[String]) -> Result<SharedGraph, ServiceError> {
        if extra.is_empty() {
            return self.graph(id);
        }
        let mut docs = vec![self
            .get(id)
            .ok_or_else(|| ServiceError::NotFound { id: id.to_string() })?];
        for other in extra {
            docs.push(self.get(other).ok_or_else(|| ServiceError::NotFound {
                id: other.to_string(),
            })?);
        }
        let refs: Vec<&ProvDocument> = docs.iter().map(|d| &**d).collect();
        let merged =
            prov_graph::engine::merged_document(&refs).map_err(|e| ServiceError::Conflict {
                reason: format!("merging query view over {id} + {extra:?}: {e}"),
            })?;
        Ok(SharedGraph::new(Arc::new(merged)))
    }

    /// Plans and executes one IR path query over document `id` (merged
    /// with `extra` when non-empty), recording the scenario counter and
    /// the plan/execute latency split. Returns the result set together
    /// with the view it ran over, so callers can render the matched
    /// subgraph without re-resolving documents.
    pub fn run_query(
        &self,
        id: &str,
        extra: &[String],
        query: &PathQuery,
    ) -> Result<(prov_graph::MatchSet, SharedGraph), ServiceError> {
        let shared = self.query_view(id, extra)?;
        self.note_query("path");
        let graph = shared.view();
        let t0 = Instant::now();
        let plan = prov_graph::plan(&graph, query);
        let planned = t0.elapsed();
        let t1 = Instant::now();
        let set = prov_graph::execute_with_plan(&graph, query, plan);
        let executed = t1.elapsed();
        self.note_query_timing(planned, executed);
        Ok((set, shared))
    }

    // -----------------------------------------------------------------
    // Live streaming: delta merge + watch cursors
    // -----------------------------------------------------------------

    /// Folds a standalone PROV-JSON delta document into the stored
    /// document `id`: elements in the delta replace their stored
    /// counterparts wholesale (so re-emitted aggregates supersede stale
    /// values), genuinely new relations splice in at their canonical
    /// positions, and the result is persisted, ledgered and replicated
    /// exactly like a full upload.
    ///
    /// When the cached [`SharedGraph`] still indexes the pre-merge
    /// document, the index is *extended* with just the new nodes and
    /// edges ([`prov_graph::GraphIndex::extended`]) instead of rebuilt —
    /// counted by `store_incremental_merges_total`.
    ///
    /// Returns the [`Upload`] (carrying the merged canonical bytes, so
    /// the existing full-document replication path ships it unchanged)
    /// and the document's new watch version.
    pub fn merge_delta(
        &self,
        id: &str,
        delta: &ProvDocument,
    ) -> Result<(Upload, u64), ServiceError> {
        // The whole read-modify-write runs under the ledger lock — the
        // same critical section `insert` uses — so concurrent merges
        // and replacements of one id serialize instead of losing
        // updates.
        let ledger = &mut *self.inner.ledger.lock();
        let current = self
            .inner
            .docs
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| ServiceError::NotFound { id: id.to_string() })?;
        let cached = self.inner.graphs.read().get(id).cloned();
        let mut merged = (*current).clone();
        let applied = merged
            .apply_delta(delta)
            .map_err(|e| ServiceError::Conflict {
                reason: format!("merging delta into {id}: {e}"),
            })?;
        let json = merged.to_json_string()?;
        let put_span = self.inner.metrics.put_seconds.start_span();
        self.inner.backend.put(id, json.as_bytes())?;
        drop(put_span);
        let entry = ledger.append(id, json.as_bytes()).clone();
        self.inner.backend.ledger_append(&entry.to_line())?;
        let merged = Arc::new(merged);
        let shared = match &cached {
            // The cached index describes exactly the document we merged
            // into: extend it with the delta's additions only.
            Some(g) if Arc::ptr_eq(g.document(), &current) => {
                self.inner.metrics.incremental_merges.inc();
                let index = g.index().extended(&merged, &applied.new_relations);
                SharedGraph::from_parts(Arc::clone(&merged), Arc::new(index))
            }
            // Cold cache (reopened store) or a stale entry: full build.
            _ => SharedGraph::new(Arc::clone(&merged)),
        };
        {
            let mut graphs = self.inner.graphs.write();
            let mut docs = self.inner.docs.write();
            graphs.insert(id.to_string(), shared);
            docs.insert(id.to_string(), Arc::clone(&merged));
        }
        let version = self.inner.watch.bump(id);
        Ok((
            Upload {
                id: id.to_string(),
                entry,
                canonical_json: json,
            },
            version,
        ))
    }

    /// The document's current watch version, if it exists. Versions
    /// start at 1 and bump on every mutation (replace, delta merge,
    /// replicated refresh).
    pub fn document_version(&self, id: &str) -> Option<u64> {
        self.inner.watch.versions.lock().get(id).copied()
    }

    /// Parks the caller until document `id` moves past version `after`,
    /// the timeout elapses, or the document is deleted. This is the
    /// blocking half of the long-poll watch endpoint; spurious condvar
    /// wakeups re-check and keep waiting.
    pub fn wait_for_newer(&self, id: &str, after: u64, timeout: Duration) -> WatchOutcome {
        let deadline = Instant::now() + timeout;
        let hub = &self.inner.watch;
        let mut versions = hub.versions.lock();
        loop {
            match versions.get(id).copied() {
                None => return WatchOutcome::Gone,
                Some(v) if v > after => return WatchOutcome::Changed(v),
                Some(_) => {
                    if hub.cv.wait_until(&mut versions, deadline).timed_out() {
                        return match versions.get(id).copied() {
                            None => WatchOutcome::Gone,
                            Some(v) if v > after => WatchOutcome::Changed(v),
                            Some(v) => WatchOutcome::Unchanged(v),
                        };
                    }
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Replication: replica-side verified apply + primary-side log
    // -----------------------------------------------------------------

    /// Applies one replicated frame from `source`: a ledger entry plus
    /// (usually) the document bytes its digest commits to.
    ///
    /// The frame is verified *before* anything is stored:
    ///
    /// 1. the entry's recorded hash must recompute from its fields;
    /// 2. it must extend this replica's verified chain for `source`
    ///    (right index, `prev_hash` == chain head) — duplicates of
    ///    already-applied entries are acknowledged idempotently, gaps
    ///    and divergence are rejected with the index to re-sync from;
    /// 3. when document bytes ride along, their SHA-256 must equal the
    ///    entry's digest — a torn or corrupted frame dies here.
    ///
    /// Only then are the bytes stored, the document parsed and indexed
    /// (so the replica serves reads immediately), and the entry appended
    /// verbatim to the durable replication cursor.
    pub fn apply_replicated(
        &self,
        source: &str,
        entry: LedgerEntry,
        doc_json: Option<&str>,
    ) -> Result<ReplicationApply, ServiceError> {
        if !entry.is_self_consistent() {
            return Err(ServiceError::Replication {
                reason: format!("entry {} hash does not recompute", entry.index),
                expect_index: None,
            });
        }
        let mut repl = self.inner.repl.lock();
        let chain = repl.entry(source.to_string()).or_default();
        let next = chain.len() as u64;

        if entry.index < next {
            // Duplicate delivery. Idempotent when it matches what we
            // applied; a *different* entry at an applied index means the
            // source forked — re-syncing cannot reconcile that.
            return if chain.entries()[entry.index as usize] == entry {
                Ok(ReplicationApply::Duplicate)
            } else {
                Err(ServiceError::Replication {
                    reason: format!("entry {} conflicts with applied history", entry.index),
                    expect_index: None,
                })
            };
        }
        if entry.index > next {
            return Err(ServiceError::Replication {
                reason: format!("entry {} leaves a gap (stale replica)", entry.index),
                expect_index: Some(next),
            });
        }
        if entry.prev_hash != chain.head_hash() {
            return Err(ServiceError::Replication {
                reason: format!("entry {} does not extend this chain head", entry.index),
                expect_index: Some(next),
            });
        }
        if let Some(json) = doc_json {
            if sha256_hex(json.as_bytes()) != entry.document_digest {
                return Err(ServiceError::Replication {
                    reason: format!(
                        "entry {} document bytes do not hash to the recorded digest \
                         (torn or corrupted frame)",
                        entry.index
                    ),
                    expect_index: Some(next),
                });
            }
            let doc = ProvDocument::from_json_str(json).map_err(|e| ServiceError::Replication {
                reason: format!("entry {} document does not parse: {e}", entry.index),
                expect_index: Some(next),
            })?;
            let id = entry.document_id.clone();
            self.inner.backend.put(&id, json.as_bytes())?;
            if let Some(n) = id.strip_prefix("doc-").and_then(|n| n.parse::<u64>().ok()) {
                self.inner.next_id.fetch_max(n, Ordering::Relaxed);
            }
            let doc = Arc::new(doc);
            {
                let mut graphs = self.inner.graphs.write();
                let mut docs = self.inner.docs.write();
                graphs.insert(id.clone(), SharedGraph::new(Arc::clone(&doc)));
                docs.insert(id.clone(), doc);
            }
            self.inner.watch.bump(&id);
        }
        let line = entry.to_line();
        chain
            .append_entry(entry)
            .map_err(ServiceError::LedgerVerification)?;
        self.inner.backend.repl_append(source, &line)?;
        Ok(if doc_json.is_some() {
            ReplicationApply::Applied
        } else {
            ReplicationApply::ChainOnly
        })
    }

    /// `(next_index, head_hash)` of this replica's verified chain for
    /// `source` — the cursor a primary probes before streaming.
    pub fn replication_head(&self, source: &str) -> (u64, String) {
        let repl = self.inner.repl.lock();
        match repl.get(source) {
            Some(chain) => (chain.len() as u64, chain.head_hash()),
            None => (0, crate::ledger::GENESIS.to_string()),
        }
    }

    /// Every source this node replicates, with its applied-entry count.
    pub fn replication_sources(&self) -> Vec<(String, u64)> {
        self.inner
            .repl
            .lock()
            .iter()
            .map(|(s, c)| (s.clone(), c.len() as u64))
            .collect()
    }

    /// The primary-side replication log: this node's own ledger suffix
    /// starting at `from`, each entry paired with the canonical bytes
    /// its digest commits to — or `None` when the entry was superseded
    /// by a later upload of the same id (the bytes no longer exist; the
    /// replica advances its cursor without touching the document).
    pub fn replication_log(
        &self,
        from: u64,
    ) -> Result<Vec<(LedgerEntry, Option<String>)>, ServiceError> {
        let entries: Vec<LedgerEntry> = {
            let ledger = self.inner.ledger.lock();
            ledger
                .entries()
                .iter()
                .filter(|e| e.index >= from)
                .cloned()
                .collect()
        };
        let mut out = Vec::with_capacity(entries.len());
        for entry in entries {
            let bytes = self.inner.backend.get(&entry.document_id)?;
            let json = bytes
                .and_then(|b| String::from_utf8(b).ok())
                .filter(|j| sha256_hex(j.as_bytes()) == entry.document_digest);
            out.push((entry, json));
        }
        Ok(out)
    }

    /// Verifies every hash chain this node holds — its own ledger
    /// (against the stored documents) plus each replication cursor's
    /// internal integrity, and that every replicated document's current
    /// bytes hash to the latest digest some chain committed to.
    pub fn verify_all(&self) -> Result<(), ServiceError> {
        let ledger = self.inner.ledger.lock();
        let repl = self.inner.repl.lock();
        verify_chains(&ledger, &repl, |id| {
            self.inner.backend.get(id).ok().flatten()
        })
    }

    /// Merges every stored document into one (cross-run lineage);
    /// namespace clashes surface as [`ServiceError::Conflict`].
    pub fn merged(&self) -> Result<ProvDocument, ServiceError> {
        let docs = self.inner.docs.read();
        let mut merged = ProvDocument::new();
        for (id, doc) in docs.iter() {
            merged.merge(doc).map_err(|e| ServiceError::Conflict {
                reason: format!("merging {id}: {e}"),
            })?;
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::LedgerIssue;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    fn pipeline_doc() -> ProvDocument {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("data"));
        doc.activity(q("train"));
        doc.entity(q("model"));
        doc.used(q("train"), q("data"));
        doc.was_generated_by(q("model"), q("train"));
        doc
    }

    #[test]
    fn upload_get_delete() {
        let store = DocumentStore::new();
        let id = store.upload(pipeline_doc()).unwrap();
        assert_eq!(id, "doc-1");
        assert!(store.get(&id).is_some());
        assert_eq!(store.list(), vec!["doc-1"]);
        assert!(store.delete(&id).unwrap());
        assert!(!store.delete(&id).unwrap());
        assert!(store.is_empty());
    }

    #[test]
    fn ids_are_unique_under_concurrency() {
        let store = DocumentStore::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|_| store.upload(ProvDocument::new()).unwrap())
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<String> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 800);
        assert_eq!(store.len(), 800);
    }

    #[test]
    fn lineage_queries() {
        let store = DocumentStore::new();
        let id = store.upload(pipeline_doc()).unwrap();
        let anc = store.ancestors(&id, &q("model")).unwrap();
        assert!(anc.contains(&q("train")));
        assert!(anc.contains(&q("data")));
        assert!(matches!(
            store.ancestors("nope", &q("model")),
            Err(ServiceError::NotFound { .. })
        ));

        let sub = store.subgraph(&id, &q("train")).unwrap();
        assert_eq!(sub.element_count(), 3);
    }

    #[test]
    fn queries_hit_the_index_built_at_upload() {
        let store = DocumentStore::new();
        let id = store.upload(pipeline_doc()).unwrap();
        assert_eq!(store.graph_cache_stats(), (0, 0));
        store.ancestors(&id, &q("model")).unwrap();
        store.subgraph(&id, &q("train")).unwrap();
        // Both queries reuse the index built at upload time: all hits.
        assert_eq!(store.graph_cache_stats(), (2, 0));
        // Replacement invalidates and rebuilds at upload; still a hit.
        store.upload_as(&id, pipeline_doc()).unwrap();
        store.ancestors(&id, &q("model")).unwrap();
        assert_eq!(store.graph_cache_stats(), (3, 0));
    }

    #[test]
    fn reopened_store_misses_then_hits() {
        let dir = std::env::temp_dir().join(format!("ysvc_cache_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let id;
        {
            let store = DocumentStore::persistent(&dir).unwrap();
            id = store.upload(pipeline_doc()).unwrap();
        }
        let store = DocumentStore::persistent(&dir).unwrap();
        assert_eq!(store.graph_cache_stats(), (0, 0));
        store.ancestors(&id, &q("model")).unwrap();
        let (hits, misses) = store.graph_cache_stats();
        assert_eq!((hits, misses), (0, 1), "first query builds the index");
        store.ancestors(&id, &q("model")).unwrap();
        let (hits, misses) = store.graph_cache_stats();
        assert_eq!((hits, misses), (1, 1), "second query hits the cache");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn upload_as_replaces() {
        let store = DocumentStore::new();
        store.upload_as("run-1", pipeline_doc()).unwrap();
        store.upload_as("run-1", ProvDocument::new()).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get("run-1").unwrap().element_count(), 0);
    }

    #[test]
    fn upload_as_advances_the_id_counter() {
        // Regression: claiming "doc-5" must bump next_id past 5, or a
        // later upload() would silently overwrite it.
        let store = DocumentStore::new();
        store.upload_as("doc-5", pipeline_doc()).unwrap();
        let next = store.upload(ProvDocument::new()).unwrap();
        assert_eq!(next, "doc-6");
        assert_eq!(store.get("doc-5").unwrap().element_count(), 3);
        assert_eq!(store.len(), 2);
        // Non-doc-N ids leave the counter alone.
        store.upload_as("run-7", ProvDocument::new()).unwrap();
        assert_eq!(store.upload(ProvDocument::new()).unwrap(), "doc-7");
    }

    #[test]
    fn persistent_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("ysvc_persist_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let id;
        {
            let store = DocumentStore::persistent(&dir).unwrap();
            id = store.upload(pipeline_doc()).unwrap();
            store.upload(ProvDocument::new()).unwrap();
            assert_eq!(store.ledger_entries().len(), 2);
        }
        let reopened = DocumentStore::persistent(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        let doc = reopened.get(&id).unwrap();
        assert_eq!(doc.element_count(), 3);
        // Ids keep counting past the reloaded maximum.
        let new_id = reopened.upload(ProvDocument::new()).unwrap();
        assert_eq!(new_id, "doc-3");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ledger_file_is_appended_not_rewritten() {
        let dir = std::env::temp_dir().join(format!("ysvc_append_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = DocumentStore::persistent(&dir).unwrap();
        store.upload(pipeline_doc()).unwrap();
        store.flush().unwrap();
        let after_one = std::fs::read_to_string(dir.join("ledger.txt")).unwrap();
        store.upload(ProvDocument::new()).unwrap();
        store.flush().unwrap();
        let after_two = std::fs::read_to_string(dir.join("ledger.txt")).unwrap();
        assert!(
            after_two.starts_with(&after_one),
            "appends must preserve the existing prefix"
        );
        assert_eq!(after_one.lines().count(), 1);
        assert_eq!(after_two.lines().count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn upload_as_replacement_survives_reopen_with_verification() {
        // Satellite: re-uploading an existing id must keep the ledger
        // verifiable across a close-and-reopen cycle.
        let dir = std::env::temp_dir().join(format!("ysvc_replace_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let store = DocumentStore::persistent(&dir).unwrap();
            store.upload_as("run-1", pipeline_doc()).unwrap();
            store.upload_as("run-1", ProvDocument::new()).unwrap();
            assert_eq!(store.ledger_entries().len(), 2, "history keeps both");
        }
        let reopened = DocumentStore::persistent(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.get("run-1").unwrap().element_count(), 0);
        let entries = reopened.ledger_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].document_id, "run-1");
        assert_eq!(entries[1].document_id, "run-1");
        assert_ne!(entries[0].document_digest, entries[1].document_digest);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistent_store_detects_tampering() {
        let dir = std::env::temp_dir().join(format!("ysvc_tamper_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let store = DocumentStore::persistent(&dir).unwrap();
            store.upload(pipeline_doc()).unwrap();
        }
        // Edit the stored provenance behind the service's back.
        let path = dir.join("doc-1.json");
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = text.replace("ex:model", "ex:fudged");
        std::fs::write(&path, text).unwrap();
        let err = match DocumentStore::persistent(&dir) {
            Err(e) => e,
            Ok(_) => panic!("tampered store must fail to open"),
        };
        assert!(
            matches!(
                err,
                ServiceError::LedgerVerification(LedgerIssue::DocumentChanged { .. })
            ),
            "{err}"
        );
        assert_eq!(err.http_status(), 500);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_upload_leaves_no_torn_document() {
        // Simulated kill-during-upload: the tmp file exists, the rename
        // never happened. Reopen must ignore (and sweep) the debris and
        // still verify.
        let dir = std::env::temp_dir().join(format!("ysvc_kill_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let store = DocumentStore::persistent(&dir).unwrap();
            store.upload(pipeline_doc()).unwrap();
        }
        std::fs::write(dir.join("doc-2.json.tmp"), b"{\"torn").unwrap();
        let reopened = DocumentStore::persistent(&dir).unwrap();
        assert_eq!(reopened.len(), 1, "the torn upload never became visible");
        assert!(!dir.join("doc-2.json.tmp").exists(), "debris swept");
        // The interrupted id is still usable.
        let id = reopened.upload(pipeline_doc()).unwrap();
        assert_eq!(id, "doc-2");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistent_delete_keeps_ledger_history() {
        let dir = std::env::temp_dir().join(format!("ysvc_del_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let store = DocumentStore::persistent(&dir).unwrap();
            let id = store.upload(pipeline_doc()).unwrap();
            assert!(store.delete(&id).unwrap());
        }
        // Reopen: document gone, history intact and verifiable.
        let reopened = DocumentStore::persistent(&dir).unwrap();
        assert_eq!(reopened.len(), 0);
        assert_eq!(reopened.ledger_entries().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merged_combines_documents() {
        let store = DocumentStore::new();
        store.upload(pipeline_doc()).unwrap();
        let mut other = ProvDocument::new();
        other.namespaces_mut().register("ex", "http://ex/").unwrap();
        other.entity(q("report"));
        store.upload(other).unwrap();
        let merged = store.merged().unwrap();
        assert_eq!(merged.element_count(), 4);
    }

    #[test]
    fn merged_fails_on_conflicting_namespaces() {
        let store = DocumentStore::new();
        store.upload(pipeline_doc()).unwrap();
        let mut other = ProvDocument::new();
        other
            .namespaces_mut()
            .register("ex", "http://other/")
            .unwrap();
        other.entity(q("x"));
        store.upload(other).unwrap();
        assert!(matches!(store.merged(), Err(ServiceError::Conflict { .. })));
    }

    #[test]
    fn document_json_serves_canonical_bytes() {
        let store = DocumentStore::new();
        let id = store.upload(pipeline_doc()).unwrap();
        let json = store.document_json(&id).unwrap();
        let parsed = ProvDocument::from_json_str(&json).unwrap();
        assert_eq!(parsed.element_count(), 3);
        assert!(matches!(
            store.document_json("ghost"),
            Err(ServiceError::NotFound { .. })
        ));
    }

    #[test]
    fn replicated_frames_apply_and_chains_verify() {
        let primary = DocumentStore::new();
        let replica = DocumentStore::new();
        let up1 = primary.upload_as_full("run-1", pipeline_doc()).unwrap();
        let up2 = primary
            .upload_as_full("run-2", ProvDocument::new())
            .unwrap();
        for up in [&up1, &up2] {
            let applied = replica
                .apply_replicated("node-a", up.entry.clone(), Some(&up.canonical_json))
                .unwrap();
            assert_eq!(applied, ReplicationApply::Applied);
        }
        // The replica serves the documents and its cursor matches the
        // primary's chain head exactly.
        assert_eq!(replica.get("run-1").unwrap().element_count(), 3);
        assert_eq!(replica.len(), 2);
        let (next, head) = replica.replication_head("node-a");
        assert_eq!(next, 2);
        assert_eq!(head, primary.ledger_entries().last().unwrap().entry_hash);
        assert_eq!(replica.replication_sources(), vec![("node-a".into(), 2)]);
        replica.verify_all().unwrap();
        // Lineage queries work on replicated documents too.
        assert!(replica
            .ancestors("run-1", &q("model"))
            .unwrap()
            .contains(&q("data")));
    }

    #[test]
    fn duplicate_frame_delivery_is_idempotent() {
        let primary = DocumentStore::new();
        let replica = DocumentStore::new();
        let up = primary.upload_as_full("run-1", pipeline_doc()).unwrap();
        let first = replica
            .apply_replicated("node-a", up.entry.clone(), Some(&up.canonical_json))
            .unwrap();
        assert_eq!(first, ReplicationApply::Applied);
        // Redelivery of the same frame changes nothing.
        let again = replica
            .apply_replicated("node-a", up.entry.clone(), Some(&up.canonical_json))
            .unwrap();
        assert_eq!(again, ReplicationApply::Duplicate);
        assert_eq!(replica.len(), 1);
        assert_eq!(replica.replication_head("node-a").0, 1);
        replica.verify_all().unwrap();

        // A *different* entry at an applied index is a fork, not a
        // duplicate — rejected with no re-sync point.
        let forked = DocumentStore::new();
        let other = forked.upload_as_full("run-x", ProvDocument::new()).unwrap();
        let err = replica
            .apply_replicated("node-a", other.entry, Some(&other.canonical_json))
            .unwrap_err();
        match err {
            ServiceError::Replication { expect_index, .. } => assert_eq!(expect_index, None),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn prev_hash_mismatch_rejected_then_resyncs_from_divergence_point() {
        // The replica followed primary A; a frame whose prev-hash grew
        // out of a different history must be rejected, naming the index
        // to re-sync from — and the true chain's entry then applies.
        let primary = DocumentStore::new();
        let imposter = DocumentStore::new();
        let replica = DocumentStore::new();
        let a0 = primary.upload_as_full("run-1", pipeline_doc()).unwrap();
        let a1 = primary
            .upload_as_full("run-2", ProvDocument::new())
            .unwrap();
        imposter
            .upload_as_full("evil-0", ProvDocument::new())
            .unwrap();
        let b1 = imposter
            .upload_as_full("evil-1", ProvDocument::new())
            .unwrap();

        replica
            .apply_replicated("node-a", a0.entry.clone(), Some(&a0.canonical_json))
            .unwrap();
        // b1 has the right index (1) but extends the imposter's chain.
        let err = replica
            .apply_replicated("node-a", b1.entry, Some(&b1.canonical_json))
            .unwrap_err();
        match err {
            ServiceError::Replication {
                expect_index,
                ref reason,
            } => {
                assert_eq!(expect_index, Some(1), "{reason}");
                assert!(reason.contains("does not extend"), "{reason}");
            }
            other => panic!("unexpected error: {other}"),
        }
        // Nothing was applied; the cursor still sits at 1.
        assert_eq!(replica.replication_head("node-a").0, 1);
        assert!(replica.get("evil-1").is_none());
        // Re-sync from the named divergence point with the real entry.
        let applied = replica
            .apply_replicated("node-a", a1.entry.clone(), Some(&a1.canonical_json))
            .unwrap();
        assert_eq!(applied, ReplicationApply::Applied);
        assert_eq!(replica.replication_head("node-a").0, 2);
        replica.verify_all().unwrap();
    }

    #[test]
    fn gaps_and_torn_frames_are_rejected() {
        let primary = DocumentStore::new();
        let replica = DocumentStore::new();
        let up0 = primary.upload_as_full("run-1", pipeline_doc()).unwrap();
        let up1 = primary
            .upload_as_full("run-2", ProvDocument::new())
            .unwrap();

        // A stale replica (never saw frame 0) rejects frame 1, naming 0
        // as the re-sync point.
        let err = replica
            .apply_replicated("node-a", up1.entry.clone(), Some(&up1.canonical_json))
            .unwrap_err();
        match err {
            ServiceError::Replication { expect_index, .. } => assert_eq!(expect_index, Some(0)),
            other => panic!("unexpected error: {other}"),
        }

        // A torn frame — bytes that no longer hash to the entry's
        // digest — dies before anything is stored.
        let torn = &up0.canonical_json[..up0.canonical_json.len() / 2];
        let err = replica
            .apply_replicated("node-a", up0.entry.clone(), Some(torn))
            .unwrap_err();
        match err {
            ServiceError::Replication {
                ref reason,
                expect_index,
            } => {
                assert!(reason.contains("torn"), "{reason}");
                assert_eq!(expect_index, Some(0));
            }
            other => panic!("unexpected error: {other}"),
        }
        assert!(replica.is_empty(), "rejected frames must store nothing");

        // The clean frames then apply in order.
        for up in [&up0, &up1] {
            replica
                .apply_replicated("node-a", up.entry.clone(), Some(&up.canonical_json))
                .unwrap();
        }
        replica.verify_all().unwrap();
    }

    #[test]
    fn replication_cursor_survives_reopen_byte_identically() {
        let pdir = std::env::temp_dir().join(format!("ysvc_repl_p_{}", std::process::id()));
        let rdir = std::env::temp_dir().join(format!("ysvc_repl_r_{}", std::process::id()));
        std::fs::remove_dir_all(&pdir).ok();
        std::fs::remove_dir_all(&rdir).ok();
        let primary = DocumentStore::persistent(&pdir).unwrap();
        {
            let replica = DocumentStore::persistent(&rdir).unwrap();
            for i in 0..3 {
                let up = primary
                    .upload_as_full(format!("run-{i}"), pipeline_doc())
                    .unwrap();
                replica
                    .apply_replicated("node-a", up.entry, Some(&up.canonical_json))
                    .unwrap();
            }
            replica.flush().unwrap();
        }
        // The durable cursor is a byte-identical prefix (here: copy) of
        // the primary's own ledger file.
        let primary_chain = std::fs::read_to_string(pdir.join("ledger.txt")).unwrap();
        let cursor = std::fs::read_to_string(rdir.join("repl-node-a.chain")).unwrap();
        assert_eq!(cursor, primary_chain);
        // Reopen: cursor, documents and verification all intact.
        let reopened = DocumentStore::persistent(&rdir).unwrap();
        assert_eq!(reopened.replication_head("node-a").0, 3);
        assert_eq!(reopened.len(), 3);
        reopened.verify_all().unwrap();
        // The restored cursor still rejects stale frames correctly.
        let up = primary
            .upload_as_full("run-9", ProvDocument::new())
            .unwrap();
        let applied = reopened
            .apply_replicated("node-a", up.entry, Some(&up.canonical_json))
            .unwrap();
        assert_eq!(applied, ReplicationApply::Applied);
        std::fs::remove_dir_all(&pdir).ok();
        std::fs::remove_dir_all(&rdir).ok();
    }

    #[test]
    fn replication_log_marks_superseded_entries() {
        let primary = DocumentStore::new();
        primary.upload_as_full("run-1", pipeline_doc()).unwrap();
        primary
            .upload_as_full("run-1", ProvDocument::new())
            .unwrap();
        let log = primary.replication_log(0).unwrap();
        assert_eq!(log.len(), 2);
        assert!(
            log[0].1.is_none(),
            "the replaced version's bytes are gone; the entry ships chain-only"
        );
        assert!(log[1].1.is_some());
        // And a chain-only frame advances a replica's cursor without
        // inventing a document.
        let replica = DocumentStore::new();
        let applied = replica
            .apply_replicated("node-a", log[0].0.clone(), None)
            .unwrap();
        assert_eq!(applied, ReplicationApply::ChainOnly);
        assert!(replica.is_empty());
        let applied = replica
            .apply_replicated("node-a", log[1].0.clone(), log[1].1.as_deref())
            .unwrap();
        assert_eq!(applied, ReplicationApply::Applied);
        assert_eq!(replica.get("run-1").unwrap().element_count(), 0);
        replica.verify_all().unwrap();
    }

    #[test]
    fn backend_names_are_reported() {
        let store = DocumentStore::new();
        assert_eq!(store.backend_name(), "memory");
        let dir = std::env::temp_dir().join(format!("ysvc_name_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = DocumentStore::persistent(&dir).unwrap();
        assert_eq!(store.backend_name(), "durable");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A standalone delta extending [`pipeline_doc`]: an `eval` activity
    /// consuming the model, generating a report.
    fn eval_delta() -> ProvDocument {
        let mut delta = ProvDocument::new();
        delta.namespaces_mut().register("ex", "http://ex/").unwrap();
        delta.activity(q("eval"));
        delta.entity(q("report"));
        delta.used(q("eval"), q("model"));
        delta.was_generated_by(q("report"), q("eval"));
        delta
    }

    #[test]
    fn delta_merges_match_the_premerged_upload_byte_for_byte() {
        // Streamed path: base document, then a delta folded in.
        let streamed = DocumentStore::new();
        streamed.upload_as("run-1", pipeline_doc()).unwrap();
        let (up, _) = streamed.merge_delta("run-1", &eval_delta()).unwrap();

        // Finalize-only path: the same content uploaded once, with the
        // relations deliberately inserted in a scrambled order.
        let mut full = ProvDocument::new();
        full.namespaces_mut().register("ex", "http://ex/").unwrap();
        full.entity(q("report"));
        full.activity(q("eval"));
        full.was_generated_by(q("report"), q("eval"));
        full.used(q("eval"), q("model"));
        full.entity(q("data"));
        full.activity(q("train"));
        full.entity(q("model"));
        full.was_generated_by(q("model"), q("train"));
        full.used(q("train"), q("data"));
        let premerged = DocumentStore::new();
        premerged.upload_as("run-1", full).unwrap();

        let streamed_json = streamed.document_json("run-1").unwrap();
        assert_eq!(
            streamed_json,
            premerged.document_json("run-1").unwrap(),
            "streamed deltas must converge to the finalize-only bytes"
        );
        assert_eq!(up.canonical_json, streamed_json);
        // The merged lineage spans base and delta.
        let anc = streamed.ancestors("run-1", &q("report")).unwrap();
        assert!(anc.contains(&q("eval")));
        assert!(anc.contains(&q("model")));
        assert!(anc.contains(&q("data")));
    }

    #[test]
    fn merge_delta_extends_the_cached_index_instead_of_rebuilding() {
        let store = DocumentStore::new();
        store.upload_as("run-1", pipeline_doc()).unwrap();
        assert_eq!(store.incremental_merges(), 0);
        store.merge_delta("run-1", &eval_delta()).unwrap();
        assert_eq!(
            store.incremental_merges(),
            1,
            "a warm cache entry must be extended, not rebuilt"
        );
        // The extended index answers queries as a plain cache hit.
        let (hits_before, misses_before) = store.graph_cache_stats();
        let anc = store.ancestors("run-1", &q("report")).unwrap();
        assert!(anc.contains(&q("data")));
        assert_eq!(store.graph_cache_stats(), (hits_before + 1, misses_before));

        // With the cache evicted (reopened store / cold cache) the merge
        // falls back to a full rebuild and the counter stays put.
        store.clear_index_cache();
        store.merge_delta("run-1", &ProvDocument::new()).unwrap();
        assert_eq!(store.incremental_merges(), 1);
        let g = store.graph("run-1").unwrap();
        assert_eq!(g.view().edge_count(), g.document().relation_count());
    }

    #[test]
    fn merge_delta_rejects_unknown_ids_and_namespace_conflicts() {
        let store = DocumentStore::new();
        assert!(matches!(
            store.merge_delta("ghost", &eval_delta()),
            Err(ServiceError::NotFound { .. })
        ));
        let id = store.upload(pipeline_doc()).unwrap();
        let mut clash = ProvDocument::new();
        clash
            .namespaces_mut()
            .register("ex", "http://other/")
            .unwrap();
        clash.entity(q("x"));
        assert!(matches!(
            store.merge_delta(&id, &clash),
            Err(ServiceError::Conflict { .. })
        ));
        // The failed merge left nothing behind: same version, same bytes.
        assert_eq!(store.document_version(&id), Some(1));
        assert!(store.get(&id).unwrap().get(&q("x")).is_none());
    }

    #[test]
    fn merged_delta_replicates_like_a_full_upload() {
        let primary = DocumentStore::new();
        let replica = DocumentStore::new();
        let up1 = primary.upload_as_full("run-1", pipeline_doc()).unwrap();
        let (up2, _) = primary.merge_delta("run-1", &eval_delta()).unwrap();
        // The merge's Upload rides the ordinary frame path: entry plus
        // full merged bytes.
        replica
            .apply_replicated("node-a", up1.entry.clone(), Some(&up1.canonical_json))
            .unwrap();
        let applied = replica
            .apply_replicated("node-a", up2.entry.clone(), Some(&up2.canonical_json))
            .unwrap();
        assert_eq!(applied, ReplicationApply::Applied);
        assert_eq!(
            replica.document_json("run-1").unwrap(),
            primary.document_json("run-1").unwrap()
        );
        assert!(replica
            .ancestors("run-1", &q("report"))
            .unwrap()
            .contains(&q("data")));
        // Each applied frame bumped the replica's watch cursor too.
        assert_eq!(replica.document_version("run-1"), Some(2));
        replica.verify_all().unwrap();
    }

    #[test]
    fn watch_cursors_track_mutations_and_deletion() {
        let store = DocumentStore::new();
        assert_eq!(store.document_version("doc-1"), None);
        assert_eq!(
            store.wait_for_newer("ghost", 0, Duration::from_millis(10)),
            WatchOutcome::Gone
        );
        let id = store.upload(pipeline_doc()).unwrap();
        assert_eq!(store.document_version(&id), Some(1));

        // A parked watcher wakes on the merge, well before its timeout.
        let waiter = {
            let store = store.clone();
            let id = id.clone();
            std::thread::spawn(move || store.wait_for_newer(&id, 1, Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(50));
        let (_, version) = store.merge_delta(&id, &eval_delta()).unwrap();
        assert_eq!(version, 2);
        assert_eq!(waiter.join().unwrap(), WatchOutcome::Changed(2));

        // A cursor already at the head times out unchanged; a stale one
        // returns immediately.
        assert_eq!(
            store.wait_for_newer(&id, 2, Duration::from_millis(20)),
            WatchOutcome::Unchanged(2)
        );
        assert_eq!(
            store.wait_for_newer(&id, 0, Duration::from_secs(10)),
            WatchOutcome::Changed(2)
        );

        // Deletion wakes parked watchers with Gone.
        let waiter = {
            let store = store.clone();
            let id = id.clone();
            std::thread::spawn(move || store.wait_for_newer(&id, 2, Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(50));
        store.delete(&id).unwrap();
        assert_eq!(waiter.join().unwrap(), WatchOutcome::Gone);
    }

    #[test]
    fn replace_while_querying_never_serves_stale_graph() {
        // Pins the graph() TOCTOU fix: with the cache evicted, a lazy
        // builder racing replacements must never re-insert (or serve) an
        // index over a superseded document.
        const GENS: usize = 60;
        fn doc_gen(n: usize) -> ProvDocument {
            let mut doc = ProvDocument::new();
            doc.namespaces_mut().register("ex", "http://ex/").unwrap();
            doc.activity(q("train"));
            for i in 0..=n {
                let e = q(&format!("gen-{i}"));
                doc.entity(e.clone());
                doc.used(q("train"), e);
            }
            doc
        }
        let store = DocumentStore::new();
        store.upload_as("run-1", doc_gen(0)).unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let store = store.clone();
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut last = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    // Evict so this thread exercises the lazy-build path
                    // the race lived in.
                    store.clear_index_cache();
                    let g = store.graph("run-1").unwrap();
                    let doc = g.document();
                    let gen = doc.element_count() - 2;
                    assert_eq!(
                        g.view().edge_count(),
                        doc.relation_count(),
                        "a served index must describe its own document"
                    );
                    assert!(
                        gen >= last,
                        "lineage regressed from generation {last} to {gen}"
                    );
                    last = gen;
                }
            }));
        }
        for n in 1..=GENS {
            store.upload_as("run-1", doc_gen(n)).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        // After the last replacement no stale entry may linger: the next
        // query must serve the final generation.
        let g = store.graph("run-1").unwrap();
        assert_eq!(g.document().element_count(), GENS + 2);
        assert_eq!(g.view().edge_count(), GENS + 1);
    }

    #[test]
    fn run_query_plans_executes_and_records_metrics() {
        let store = DocumentStore::new();
        let id = store.upload(pipeline_doc()).unwrap();
        let query = PathQuery {
            start: prov_model::ElementFilter::by_id(q("model")),
            steps: vec![prov_model::query::Step {
                kinds: Vec::new(),
                direction: prov_model::StepDirection::Forward,
                repeat: prov_model::query::Repeat::plus(),
                target: prov_model::ElementFilter::by_id(q("data")),
            }],
            limit: None,
        };
        let (set, _shared) = store.run_query(&id, &[], &query).unwrap();
        assert_eq!(set.rows.len(), 1);
        assert_eq!(set.rows[0].start, q("model"));
        assert_eq!(set.rows[0].end, q("data"));
        let scrape = store.registry().render_prometheus();
        assert!(
            scrape.contains("query_requests_total{scenario=\"path\"} 1"),
            "{scrape}"
        );
        assert!(scrape.contains("query_plan_seconds_count 1"), "{scrape}");
        assert!(scrape.contains("query_exec_seconds_count 1"), "{scrape}");

        assert!(matches!(
            store.run_query("ghost", &[], &query),
            Err(ServiceError::NotFound { .. })
        ));
    }

    #[test]
    fn query_view_merges_extra_documents() {
        let store = DocumentStore::new();
        let a = store.upload(pipeline_doc()).unwrap();
        let mut other = ProvDocument::new();
        other.namespaces_mut().register("ex", "http://ex/").unwrap();
        other.activity(q("deploy"));
        other.used(q("deploy"), q("model"));
        let b = store.upload(other).unwrap();

        // Single-document views come straight from the cache.
        let solo = store.query_view(&a, &[]).unwrap();
        assert_eq!(solo.document().element_count(), 3);

        // The joined view spans both documents' elements and edges.
        let joined = store.query_view(&a, &[b.clone()]).unwrap();
        assert_eq!(joined.document().element_count(), 4);
        assert_eq!(joined.view().edge_count(), 3);

        assert!(matches!(
            store.query_view(&a, &["ghost".to_string()]),
            Err(ServiceError::NotFound { .. })
        ));
    }
}
