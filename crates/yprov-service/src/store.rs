//! The in-process provenance document store.

use crate::ledger::Ledger;
use parking_lot::{Mutex, RwLock};
use prov_graph::ProvGraph;
use prov_model::{ProvDocument, QName};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A thread-safe store of provenance documents keyed by handle ids
/// (`doc-1`, `doc-2`, ...). Cheap to clone (shared state).
#[derive(Clone, Default)]
pub struct DocumentStore {
    inner: Arc<Inner>,
}

#[derive(Default)]
struct Inner {
    docs: RwLock<BTreeMap<String, Arc<ProvDocument>>>,
    next_id: AtomicU64,
    /// Directory for on-disk persistence, when enabled.
    dir: Option<PathBuf>,
    /// Tamper-evident hash chain over uploads (persistent mode only).
    ledger: Mutex<Ledger>,
}

impl DocumentStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store persisted under `dir`: documents live as `<id>.json`
    /// files, uploads append to a tamper-evident [`Ledger`]
    /// (`ledger.txt`), and reopening the directory restores both. The
    /// ledger is verified against the reloaded documents on open, so a
    /// provenance file edited behind the service's back fails loudly.
    pub fn persistent(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;

        let ledger_path = dir.join("ledger.txt");
        let ledger = if ledger_path.is_file() {
            let text = std::fs::read_to_string(&ledger_path).map_err(|e| e.to_string())?;
            Ledger::from_text(&text)?
        } else {
            Ledger::new()
        };

        let mut docs = BTreeMap::new();
        let mut max_id = 0u64;
        for entry in std::fs::read_dir(&dir).map_err(|e| e.to_string())? {
            let path = entry.map_err(|e| e.to_string())?.path();
            if path.extension().is_some_and(|e| e == "json") {
                let id = path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let text = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
                let doc = ProvDocument::from_json_str(&text)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                if let Some(n) = id.strip_prefix("doc-").and_then(|n| n.parse::<u64>().ok()) {
                    max_id = max_id.max(n);
                }
                docs.insert(id, Arc::new(doc));
            }
        }

        // Integrity: the chain must be sound and surviving documents
        // must hash as recorded.
        ledger
            .verify_against(|id| std::fs::read(dir.join(format!("{id}.json"))).ok())
            .map_err(|issue| format!("ledger verification failed: {issue:?}"))?;

        Ok(DocumentStore {
            inner: Arc::new(Inner {
                docs: RwLock::new(docs),
                next_id: AtomicU64::new(max_id),
                dir: Some(dir),
                ledger: Mutex::new(ledger),
            }),
        })
    }

    /// The ledger entries (empty for in-memory stores).
    pub fn ledger_entries(&self) -> Vec<crate::ledger::LedgerEntry> {
        self.inner.ledger.lock().entries().to_vec()
    }

    fn persist(&self, id: &str, doc: &ProvDocument) {
        if let Some(dir) = &self.inner.dir {
            if let Ok(json) = doc.to_json_string() {
                let _ = std::fs::write(dir.join(format!("{id}.json")), &json);
                let mut ledger = self.inner.ledger.lock();
                ledger.append(id, json.as_bytes());
                let _ = std::fs::write(dir.join("ledger.txt"), ledger.to_text());
            }
        }
    }

    /// Stores a document, returning its handle id.
    pub fn upload(&self, doc: ProvDocument) -> String {
        let id = format!(
            "doc-{}",
            self.inner.next_id.fetch_add(1, Ordering::Relaxed) + 1
        );
        self.persist(&id, &doc);
        self.inner.docs.write().insert(id.clone(), Arc::new(doc));
        id
    }

    /// Stores a document under a caller-chosen id (replacing any
    /// previous document with that id).
    pub fn upload_as(&self, id: impl Into<String>, doc: ProvDocument) -> String {
        let id = id.into();
        self.persist(&id, &doc);
        self.inner.docs.write().insert(id.clone(), Arc::new(doc));
        id
    }

    /// Fetches a document.
    pub fn get(&self, id: &str) -> Option<Arc<ProvDocument>> {
        self.inner.docs.read().get(id).cloned()
    }

    /// Removes a document; true when it existed. In persistent mode the
    /// file is removed but the ledger keeps its record — deletions stay
    /// visible in history.
    pub fn delete(&self, id: &str) -> bool {
        if let Some(dir) = &self.inner.dir {
            let _ = std::fs::remove_file(dir.join(format!("{id}.json")));
        }
        self.inner.docs.write().remove(id).is_some()
    }

    /// All handle ids, sorted.
    pub fn list(&self) -> Vec<String> {
        self.inner.docs.read().keys().cloned().collect()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.inner.docs.read().len()
    }

    /// True when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Provenance ancestors of `focus` inside document `id` (the
    /// lineage query of the yProv API).
    pub fn ancestors(&self, id: &str, focus: &QName) -> Option<Vec<QName>> {
        let doc = self.get(id)?;
        let graph = ProvGraph::new(&doc);
        Some(graph.ancestors(focus).into_iter().collect())
    }

    /// The sub-document induced by `focus` and everything connected to
    /// it (ancestors + descendants).
    pub fn subgraph(&self, id: &str, focus: &QName) -> Option<ProvDocument> {
        let doc = self.get(id)?;
        let graph = ProvGraph::new(&doc);
        let mut keep = graph.ancestors(focus);
        keep.extend(graph.descendants(focus));
        keep.insert(focus.clone());
        Some(prov_graph::subgraph(&doc, &keep))
    }

    /// Merges every stored document into one (cross-run lineage), or
    /// `None` when a namespace conflict prevents it.
    pub fn merged(&self) -> Option<ProvDocument> {
        let docs = self.inner.docs.read();
        let mut merged = ProvDocument::new();
        for doc in docs.values() {
            merged.merge(doc).ok()?;
        }
        Some(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    fn pipeline_doc() -> ProvDocument {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("data"));
        doc.activity(q("train"));
        doc.entity(q("model"));
        doc.used(q("train"), q("data"));
        doc.was_generated_by(q("model"), q("train"));
        doc
    }

    #[test]
    fn upload_get_delete() {
        let store = DocumentStore::new();
        let id = store.upload(pipeline_doc());
        assert_eq!(id, "doc-1");
        assert!(store.get(&id).is_some());
        assert_eq!(store.list(), vec!["doc-1"]);
        assert!(store.delete(&id));
        assert!(!store.delete(&id));
        assert!(store.is_empty());
    }

    #[test]
    fn ids_are_unique_under_concurrency() {
        let store = DocumentStore::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|_| store.upload(ProvDocument::new()))
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<String> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 800);
        assert_eq!(store.len(), 800);
    }

    #[test]
    fn lineage_queries() {
        let store = DocumentStore::new();
        let id = store.upload(pipeline_doc());
        let anc = store.ancestors(&id, &q("model")).unwrap();
        assert!(anc.contains(&q("train")));
        assert!(anc.contains(&q("data")));
        assert!(store.ancestors("nope", &q("model")).is_none());

        let sub = store.subgraph(&id, &q("train")).unwrap();
        assert_eq!(sub.element_count(), 3);
    }

    #[test]
    fn upload_as_replaces() {
        let store = DocumentStore::new();
        store.upload_as("run-1", pipeline_doc());
        store.upload_as("run-1", ProvDocument::new());
        assert_eq!(store.len(), 1);
        assert_eq!(store.get("run-1").unwrap().element_count(), 0);
    }

    #[test]
    fn persistent_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("ysvc_persist_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let id;
        {
            let store = DocumentStore::persistent(&dir).unwrap();
            id = store.upload(pipeline_doc());
            store.upload(ProvDocument::new());
            assert_eq!(store.ledger_entries().len(), 2);
        }
        let reopened = DocumentStore::persistent(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        let doc = reopened.get(&id).unwrap();
        assert_eq!(doc.element_count(), 3);
        // Ids keep counting past the reloaded maximum.
        let new_id = reopened.upload(ProvDocument::new());
        assert_eq!(new_id, "doc-3");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistent_store_detects_tampering() {
        let dir = std::env::temp_dir().join(format!("ysvc_tamper_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let store = DocumentStore::persistent(&dir).unwrap();
            store.upload(pipeline_doc());
        }
        // Edit the stored provenance behind the service's back.
        let path = dir.join("doc-1.json");
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = text.replace("ex:model", "ex:fudged");
        std::fs::write(&path, text).unwrap();
        let err = match DocumentStore::persistent(&dir) {
            Err(e) => e,
            Ok(_) => panic!("tampered store must fail to open"),
        };
        assert!(err.contains("ledger verification failed"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistent_delete_keeps_ledger_history() {
        let dir = std::env::temp_dir().join(format!("ysvc_del_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let store = DocumentStore::persistent(&dir).unwrap();
            let id = store.upload(pipeline_doc());
            assert!(store.delete(&id));
        }
        // Reopen: document gone, history intact and verifiable.
        let reopened = DocumentStore::persistent(&dir).unwrap();
        assert_eq!(reopened.len(), 0);
        assert_eq!(reopened.ledger_entries().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merged_combines_documents() {
        let store = DocumentStore::new();
        store.upload(pipeline_doc());
        let mut other = ProvDocument::new();
        other.namespaces_mut().register("ex", "http://ex/").unwrap();
        other.entity(q("report"));
        store.upload(other);
        let merged = store.merged().unwrap();
        assert_eq!(merged.element_count(), 4);
    }

    #[test]
    fn merged_fails_on_conflicting_namespaces() {
        let store = DocumentStore::new();
        store.upload(pipeline_doc());
        let mut other = ProvDocument::new();
        other
            .namespaces_mut()
            .register("ex", "http://other/")
            .unwrap();
        other.entity(q("x"));
        store.upload(other);
        assert!(store.merged().is_none());
    }
}
