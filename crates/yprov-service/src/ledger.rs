//! A tamper-evident provenance ledger.
//!
//! The paper closes §4 noting that input/output tracking "would be a
//! step towards the creation of a trustworthy provenance
//! infrastructure" (citing a blockchain-based follow-up work). This
//! module implements the core of that idea without the blockchain
//! machinery: an append-only hash chain over document digests. Each
//! entry commits to the document's SHA-256 *and* the previous entry's
//! hash, so any retroactive edit of a stored provenance file — or any
//! reordering / deletion of history — breaks verification from that
//! point on.

use crate::error::ServiceError;
use yprov4ml::hash::{sha256_hex, Sha256};

/// One link of the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Position in the chain (0-based).
    pub index: u64,
    /// Store handle of the document.
    pub document_id: String,
    /// SHA-256 of the document's canonical PROV-JSON.
    pub document_digest: String,
    /// Hash of the previous entry (`GENESIS` for the first).
    pub prev_hash: String,
    /// This entry's hash: `H(index ‖ id ‖ digest ‖ prev)`.
    pub entry_hash: String,
}

impl LedgerEntry {
    /// The entry's one-line wire form (newline included) — the unit the
    /// durable backend appends per upload and the replication protocol
    /// ships per frame.
    pub fn to_line(&self) -> String {
        format!(
            "{} {} {} {} {}\n",
            self.index, self.document_id, self.document_digest, self.prev_hash, self.entry_hash
        )
    }

    /// Recomputes what this entry's hash *should* be from its fields.
    /// A replica calls this before applying a replicated frame: an
    /// entry whose recorded `entry_hash` disagrees was corrupted or
    /// forged in flight.
    pub fn expected_hash(&self) -> String {
        entry_hash(
            self.index,
            &self.document_id,
            &self.document_digest,
            &self.prev_hash,
        )
    }

    /// Whether the entry's recorded hash matches its contents.
    pub fn is_self_consistent(&self) -> bool {
        self.expected_hash() == self.entry_hash
    }

    /// Parses one wire line (the inverse of [`Self::to_line`]).
    pub fn from_line(line: &str) -> Result<LedgerEntry, ServiceError> {
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 5 {
            return Err(ServiceError::LedgerFormat {
                line: 1,
                reason: format!("expected 5 fields, got {}", parts.len()),
            });
        }
        Ok(LedgerEntry {
            index: parts[0].parse().map_err(|_| ServiceError::LedgerFormat {
                line: 1,
                reason: format!("bad index {:?}", parts[0]),
            })?,
            document_id: parts[1].to_string(),
            document_digest: parts[2].to_string(),
            prev_hash: parts[3].to_string(),
            entry_hash: parts[4].to_string(),
        })
    }
}

/// Hash of the implicit genesis predecessor.
pub const GENESIS: &str = "0000000000000000000000000000000000000000000000000000000000000000";

fn entry_hash(index: u64, id: &str, digest: &str, prev: &str) -> String {
    let mut h = Sha256::new();
    h.update(&index.to_le_bytes());
    h.update(id.as_bytes());
    h.update(b"\0");
    h.update(digest.as_bytes());
    h.update(b"\0");
    h.update(prev.as_bytes());
    yprov4ml::hash::to_hex(&h.finish())
}

/// An append-only hash chain over provenance documents.
#[derive(Debug, Default, Clone)]
pub struct Ledger {
    entries: Vec<LedgerEntry>,
}

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerIssue {
    /// An entry's own hash does not match its contents.
    EntryTampered {
        /// Index of the bad entry.
        index: u64,
    },
    /// An entry's `prev_hash` does not match its predecessor.
    ChainBroken {
        /// Index where the chain breaks.
        index: u64,
    },
    /// A document's current bytes hash differently than recorded.
    DocumentChanged {
        /// Index of the entry whose document drifted.
        index: u64,
        /// The document id.
        document_id: String,
    },
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, oldest first.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// The chain head's hash — what the next entry's `prev_hash` must
    /// be ([`GENESIS`] for an empty chain).
    pub fn head_hash(&self) -> String {
        self.entries
            .last()
            .map(|e| e.entry_hash.clone())
            .unwrap_or_else(|| GENESIS.to_string())
    }

    /// Appends an already-hashed entry *verbatim* — the replica-side
    /// apply path, which must reproduce the primary's chain
    /// byte-identically rather than re-derive its own hashes. The entry
    /// must extend the chain: right index, matching `prev_hash`, and a
    /// self-consistent `entry_hash`.
    pub fn append_entry(&mut self, entry: LedgerEntry) -> Result<(), LedgerIssue> {
        if entry.index != self.entries.len() as u64 || entry.prev_hash != self.head_hash() {
            return Err(LedgerIssue::ChainBroken { index: entry.index });
        }
        if !entry.is_self_consistent() {
            return Err(LedgerIssue::EntryTampered { index: entry.index });
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Appends a commitment to a document's canonical JSON bytes.
    pub fn append(
        &mut self,
        document_id: impl Into<String>,
        canonical_json: &[u8],
    ) -> &LedgerEntry {
        let document_id = document_id.into();
        let document_digest = sha256_hex(canonical_json);
        let prev_hash = self
            .entries
            .last()
            .map(|e| e.entry_hash.clone())
            .unwrap_or_else(|| GENESIS.to_string());
        let index = self.entries.len() as u64;
        let hash = entry_hash(index, &document_id, &document_digest, &prev_hash);
        self.entries.push(LedgerEntry {
            index,
            document_id,
            document_digest,
            prev_hash,
            entry_hash: hash,
        });
        self.entries.last().expect("just pushed")
    }

    /// Verifies the chain's internal integrity.
    pub fn verify_chain(&self) -> Result<(), LedgerIssue> {
        let mut prev = GENESIS.to_string();
        for e in &self.entries {
            if e.prev_hash != prev {
                return Err(LedgerIssue::ChainBroken { index: e.index });
            }
            let expect = entry_hash(e.index, &e.document_id, &e.document_digest, &e.prev_hash);
            if expect != e.entry_hash {
                return Err(LedgerIssue::EntryTampered { index: e.index });
            }
            prev = e.entry_hash.clone();
        }
        Ok(())
    }

    /// Verifies the chain *and* that each referenced document, fetched
    /// through `lookup`, still hashes to its recorded digest.
    ///
    /// Only the *latest* entry per document id is checked against the
    /// current bytes: a re-upload under the same id (legitimate
    /// replacement via `upload_as`) supersedes earlier entries, whose
    /// digests describe document versions that no longer exist. The
    /// superseded entries still participate in [`Self::verify_chain`],
    /// so history stays tamper-evident. Documents that no longer exist
    /// are skipped (deletion is visible through the chain itself; this
    /// checks the survivors for silent edits).
    pub fn verify_against(
        &self,
        lookup: impl Fn(&str) -> Option<Vec<u8>>,
    ) -> Result<(), LedgerIssue> {
        self.verify_chain()?;
        let mut latest: std::collections::HashMap<&str, &LedgerEntry> =
            std::collections::HashMap::new();
        for e in &self.entries {
            latest.insert(e.document_id.as_str(), e);
        }
        for e in latest.into_values() {
            if let Some(bytes) = lookup(&e.document_id) {
                if sha256_hex(&bytes) != e.document_digest {
                    return Err(LedgerIssue::DocumentChanged {
                        index: e.index,
                        document_id: e.document_id.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Serializes the ledger to a line-oriented text format
    /// (concatenated [`LedgerEntry::to_line`]s).
    pub fn to_text(&self) -> String {
        self.entries.iter().map(LedgerEntry::to_line).collect()
    }

    /// Parses the format written by [`Self::to_text`] /
    /// [`LedgerEntry::to_line`].
    ///
    /// Appends always write whole newline-terminated records, so a file
    /// that does not end in a newline was torn by a crash mid-append:
    /// the partial tail is dropped and the chain before it still
    /// verifies (the crash lost only the in-flight commitment, never
    /// history).
    pub fn from_text(text: &str) -> Result<Ledger, ServiceError> {
        let text = if text.is_empty() || text.ends_with('\n') {
            text
        } else {
            match text.rfind('\n') {
                Some(pos) => &text[..=pos],
                None => "",
            }
        };
        let mut entries = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 5 {
                return Err(ServiceError::LedgerFormat {
                    line: lineno + 1,
                    reason: format!("expected 5 fields, got {}", parts.len()),
                });
            }
            entries.push(LedgerEntry {
                index: parts[0].parse().map_err(|_| ServiceError::LedgerFormat {
                    line: lineno + 1,
                    reason: format!("bad index {:?}", parts[0]),
                })?,
                document_id: parts[1].to_string(),
                document_digest: parts[2].to_string(),
                prev_hash: parts[3].to_string(),
                entry_hash: parts[4].to_string(),
            });
        }
        Ok(Ledger { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Ledger {
        let mut ledger = Ledger::new();
        for i in 0..n {
            ledger.append(format!("doc-{i}"), format!("{{\"run\": {i}}}").as_bytes());
        }
        ledger
    }

    #[test]
    fn clean_chain_verifies() {
        let ledger = chain(10);
        assert_eq!(ledger.len(), 10);
        ledger.verify_chain().unwrap();
        assert_eq!(ledger.entries()[0].prev_hash, GENESIS);
    }

    #[test]
    fn tampered_digest_detected() {
        let mut ledger = chain(5);
        ledger.entries[2].document_digest = "ff".repeat(32);
        assert_eq!(
            ledger.verify_chain(),
            Err(LedgerIssue::EntryTampered { index: 2 })
        );
    }

    #[test]
    fn reordering_detected() {
        let mut ledger = chain(5);
        ledger.entries.swap(1, 3);
        assert!(matches!(
            ledger.verify_chain(),
            Err(LedgerIssue::ChainBroken { .. })
        ));
    }

    #[test]
    fn deletion_detected() {
        let mut ledger = chain(5);
        ledger.entries.remove(2);
        assert!(matches!(
            ledger.verify_chain(),
            Err(LedgerIssue::ChainBroken { index: 3 })
        ));
    }

    #[test]
    fn silent_document_edit_detected() {
        let mut ledger = Ledger::new();
        let good = br#"{"loss": 0.5}"#.to_vec();
        ledger.append("doc-1", &good);
        // Unedited document passes.
        let store = good.clone();
        ledger
            .verify_against(|id| (id == "doc-1").then(|| store.clone()))
            .unwrap();
        // Edited ("the loss was better than it was") fails.
        let edited = br#"{"loss": 0.1}"#.to_vec();
        assert_eq!(
            ledger.verify_against(|id| (id == "doc-1").then(|| edited.clone())),
            Err(LedgerIssue::DocumentChanged {
                index: 0,
                document_id: "doc-1".into()
            })
        );
        // Deleted documents are skipped (the chain still proves they existed).
        ledger.verify_against(|_| None).unwrap();
    }

    #[test]
    fn replacement_checks_only_the_latest_entry_per_id() {
        // Two uploads under the same id: the store now holds only v2.
        let mut ledger = Ledger::new();
        let v1 = br#"{"loss": 0.5}"#.to_vec();
        let v2 = br#"{"loss": 0.4}"#.to_vec();
        ledger.append("doc-1", &v1);
        ledger.append("doc-1", &v2);
        // The superseded v1 digest must not fail verification...
        ledger
            .verify_against(|id| (id == "doc-1").then(|| v2.clone()))
            .unwrap();
        // ...but the latest entry still catches a silent edit.
        let edited = br#"{"loss": 0.1}"#.to_vec();
        assert_eq!(
            ledger.verify_against(|id| (id == "doc-1").then(|| edited.clone())),
            Err(LedgerIssue::DocumentChanged {
                index: 1,
                document_id: "doc-1".into()
            })
        );
    }

    #[test]
    fn entry_line_matches_text_format() {
        let ledger = chain(3);
        let lines: String = ledger.entries().iter().map(LedgerEntry::to_line).collect();
        assert_eq!(lines, ledger.to_text());
    }

    #[test]
    fn text_roundtrip() {
        let ledger = chain(7);
        let text = ledger.to_text();
        let back = Ledger::from_text(&text).unwrap();
        assert_eq!(back.entries(), ledger.entries());
        back.verify_chain().unwrap();
        assert!(Ledger::from_text("1 two three\n").is_err());
        assert!(Ledger::from_text("").unwrap().is_empty());
    }

    #[test]
    fn torn_tail_from_crashed_append_is_dropped() {
        let ledger = chain(4);
        let mut text = ledger.to_text();
        // A crash mid-append leaves a partial, unterminated line.
        text.push_str("4 doc-4 deadbeef");
        let back = Ledger::from_text(&text).unwrap();
        assert_eq!(back.len(), 4);
        back.verify_chain().unwrap();
        // A lone torn fragment (no completed history) parses as empty.
        assert!(Ledger::from_text("0 doc-0 dead").unwrap().is_empty());
    }

    #[test]
    fn hash_depends_on_every_field() {
        let base = entry_hash(0, "doc", "digest", GENESIS);
        assert_ne!(base, entry_hash(1, "doc", "digest", GENESIS));
        assert_ne!(base, entry_hash(0, "doc2", "digest", GENESIS));
        assert_ne!(base, entry_hash(0, "doc", "digest2", GENESIS));
        assert_ne!(base, entry_hash(0, "doc", "digest", "aa"));
    }
}
