//! A retrying HTTP client for the provenance service.
//!
//! The one-shot [`crate::http::request`] helper is fine for tests; real
//! upload paths (a training job shipping its provenance at the end of a
//! run) must survive transient server trouble — connection refused
//! during a restart, 503 while overloaded. [`Client`] wraps the same
//! wire format in bounded, deterministic exponential backoff: delays
//! double from [`RetryPolicy::base_delay`] up to
//! [`RetryPolicy::max_delay`], each scaled by a jitter factor in
//! [0.5, 1.0) derived from [`RetryPolicy::jitter_seed`] — so tests and
//! replayed runs see identical schedules, while distinct seeds decorrelate
//! real clients.
//!
//! Only transport errors and 502/503/504 (and unparseable responses)
//! are retried; any other status is a definitive answer and is returned
//! as-is.
//!
//! When a retryable response names its own schedule — the server's
//! bounded-queue shedding path answers 503 with a `Retry-After` header
//! — that wait is honored (capped at [`MAX_RETRY_AFTER`]) instead of
//! the backoff schedule: the server knows when it will have capacity
//! better than a blind exponential guess does.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Ceiling on a server-supplied `Retry-After` wait, so a confused (or
/// hostile) server cannot park a client indefinitely.
pub const MAX_RETRY_AFTER: Duration = Duration::from_secs(30);

/// splitmix64: the same tiny deterministic generator the simulator's
/// fault planner uses.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Retry/backoff/timeout knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included); clamped to at least 1.
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Ceiling on the exponential delay (before jitter).
    pub max_delay: Duration,
    /// Per-request connect/read/write timeout.
    pub request_timeout: Duration,
    /// Seed for the deterministic jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            request_timeout: Duration::from_secs(10),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0 = first retry):
    /// `min(max_delay, base_delay · 2^attempt)` scaled by a
    /// deterministic jitter factor in [0.5, 1.0).
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        let exp = self.base_delay.saturating_mul(factor).min(self.max_delay);
        let mut s = self.jitter_seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let frac = (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        exp.mul_f64(0.5 + 0.5 * frac)
    }
}

/// A completed (non-retried-away) HTTP exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// Attempts it took (1 = first try succeeded).
    pub attempts: u32,
}

/// The terminal failure of one attempt — what was happening when the
/// retry budget ran out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// Connect/read/write failed before a response arrived.
    Transport(String),
    /// A retryable HTTP status (502/503/504; 0 marks an unparseable
    /// response).
    Status(u16),
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Transport(msg) => write!(f, "i/o error: {msg}"),
            Failure::Status(code) => write!(f, "HTTP {code}"),
        }
    }
}

/// Why a request ultimately failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Every attempt failed; `last` is the final attempt's failure.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The last attempt's failure mode.
        last: Failure,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted { attempts, last } => {
                write!(
                    f,
                    "request failed after {attempts} attempts; last error: {last}"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A blocking client with retries.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    policy: RetryPolicy,
}

impl Client {
    /// A client for the server at `addr`.
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> Client {
        Client { addr, policy }
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Sends `method path` with an optional body, retrying transport
    /// errors and 502/503/504 with backoff. Any other status — success
    /// or definitive client error — is returned as-is.
    pub fn send(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, ClientError> {
        let max_attempts = self.policy.max_attempts.max(1);
        // One span covers the whole logical request (all attempts); the
        // traceparent derived from it is attached to every attempt so
        // the server's handler spans join this client's trace.
        let mut trace = obs::trace::span("http_request");
        if obs::trace::is_enabled() {
            trace.annotate("method", method);
            trace.annotate("path", path);
        }
        let traceparent = obs::trace::traceparent();
        let mut last = Failure::Status(0);
        // Set when the previous retryable response carried Retry-After:
        // the server's schedule overrides the backoff schedule.
        let mut server_wait: Option<Duration> = None;
        for attempt in 0..max_attempts {
            if attempt > 0 {
                let wait = server_wait
                    .take()
                    .unwrap_or_else(|| self.policy.backoff_delay(attempt - 1));
                std::thread::sleep(wait);
            }
            match self.once(method, path, body, traceparent.as_deref()) {
                // Status 0 = unparseable response; treat like a
                // transport failure.
                Ok((status, _, resp_body)) if !matches!(status, 0 | 502 | 503 | 504) => {
                    return Ok(Response {
                        status,
                        body: resp_body,
                        attempts: attempt + 1,
                    });
                }
                Ok((status, retry_after, _)) => {
                    last = Failure::Status(status);
                    server_wait = retry_after.map(|s| Duration::from_secs(s).min(MAX_RETRY_AFTER));
                }
                Err(e) => last = Failure::Transport(e.to_string()),
            }
        }
        Err(ClientError::Exhausted {
            attempts: max_attempts,
            last,
        })
    }

    /// One wire exchange, under the per-request timeouts. Returns
    /// `(status, retry_after_seconds, body)`.
    fn once(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        traceparent: Option<&str>,
    ) -> std::io::Result<(u16, Option<u64>, String)> {
        let stream = TcpStream::connect_timeout(&self.addr, self.policy.request_timeout)?;
        stream.set_read_timeout(Some(self.policy.request_timeout))?;
        stream.set_write_timeout(Some(self.policy.request_timeout))?;
        let body = body.unwrap_or("");
        let trace_header = traceparent
            .map(|tp| format!("traceparent: {tp}\r\n"))
            .unwrap_or_default();
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n{trace_header}Connection: close\r\n\r\n{body}",
            body.len()
        );
        let mut stream = stream;
        stream.write_all(req.as_bytes())?;
        let mut response = String::new();
        BufReader::new(stream).read_to_string(&mut response)?;
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let (head, payload) = response
            .split_once("\r\n\r\n")
            .map(|(h, b)| (h.to_string(), b.to_string()))
            .unwrap_or_default();
        // Integer-seconds Retry-After only; the HTTP-date form is not
        // something this server emits.
        let retry_after = head.lines().find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("retry-after")
                .then(|| value.trim().parse::<u64>().ok())
                .flatten()
        });
        Ok((status, retry_after, payload))
    }

    /// GET convenience.
    pub fn get(&self, path: &str) -> Result<Response, ClientError> {
        self.send("GET", path, None)
    }

    /// Liveness probe.
    pub fn health(&self) -> Result<Response, ClientError> {
        self.get("/healthz")
    }

    /// Uploads a PROV-JSON document; on 201 the body carries `{"id"}`.
    pub fn upload_document(&self, prov_json: &str) -> Result<Response, ClientError> {
        self.send("POST", "/api/v0/documents", Some(prov_json))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Server, ServerConfig};
    use crate::store::DocumentStore;

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(40),
            request_timeout: Duration::from_secs(5),
            jitter_seed: 42,
        }
    }

    fn sample_doc_json() -> String {
        let mut doc = prov_model::ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(prov_model::QName::new("ex", "data"));
        doc.to_json_string().unwrap()
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 0..8u32 {
            let d1 = p.backoff_delay(attempt);
            let d2 = p.backoff_delay(attempt);
            assert_eq!(d1, d2, "same attempt, same delay");
            let envelope = p
                .base_delay
                .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                .min(p.max_delay);
            assert!(d1 <= envelope, "attempt {attempt}: {d1:?} > {envelope:?}");
            assert!(
                d1 >= envelope / 2,
                "attempt {attempt}: {d1:?} < half envelope"
            );
        }
        // A different seed gives a different (but still bounded) schedule.
        let other = RetryPolicy {
            jitter_seed: 1,
            ..p
        };
        assert_ne!(p.backoff_delay(0), other.backoff_delay(0));
    }

    #[test]
    fn retries_through_injected_upload_faults() {
        let server = Server::bind(
            "127.0.0.1:0",
            DocumentStore::new(),
            ServerConfig {
                chaos_fail_uploads: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let client = Client::new(server.addr(), fast_policy());
        let resp = client.upload_document(&sample_doc_json()).unwrap();
        assert_eq!(resp.status, 201);
        assert_eq!(resp.attempts, 3, "two 503s, then success");
        server.shutdown();
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let server = Server::bind(
            "127.0.0.1:0",
            DocumentStore::new(),
            ServerConfig {
                chaos_fail_uploads: 100,
                ..Default::default()
            },
        )
        .unwrap();
        let client = Client::new(
            server.addr(),
            RetryPolicy {
                max_attempts: 2,
                ..fast_policy()
            },
        );
        let err = client.upload_document(&sample_doc_json()).unwrap_err();
        match err {
            ClientError::Exhausted { attempts, ref last } => {
                assert_eq!(attempts, 2);
                assert_eq!(*last, Failure::Status(503));
            }
        }
        assert!(err.to_string().contains("HTTP 503"), "{err}");
        server.shutdown();
    }

    #[test]
    fn honors_server_retry_after_over_backoff() {
        // A hand-rolled peer: sheds the first request with
        // `Retry-After: 1`, serves the second. The client's own backoff
        // (5 ms base) would retry almost immediately; honoring the
        // server's schedule means waiting the full second.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut buf = [0u8; 4096];
            let (mut s, _) = listener.accept().unwrap();
            let _ = s.read(&mut buf);
            s.write_all(
                b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 2\r\nRetry-After: 1\r\nConnection: close\r\n\r\n{}",
            )
            .unwrap();
            drop(s);
            let (mut s, _) = listener.accept().unwrap();
            let _ = s.read(&mut buf);
            s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}")
                .unwrap();
        });
        let client = Client::new(addr, fast_policy());
        let started = std::time::Instant::now();
        let resp = client.health().unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.attempts, 2);
        assert!(
            started.elapsed() >= Duration::from_millis(900),
            "the 1 s Retry-After must override the 5 ms backoff; waited {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn non_retryable_statuses_return_immediately() {
        let server =
            Server::bind("127.0.0.1:0", DocumentStore::new(), ServerConfig::default()).unwrap();
        let client = Client::new(server.addr(), fast_policy());
        let resp = client.upload_document("{not json").unwrap();
        assert_eq!(resp.status, 400);
        assert_eq!(resp.attempts, 1, "4xx is definitive, no retry");
        server.shutdown();
    }

    #[test]
    fn dead_server_exhausts_with_io_error() {
        // Bind then drop a listener to get a port that refuses.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = Client::new(
            addr,
            RetryPolicy {
                max_attempts: 2,
                ..fast_policy()
            },
        );
        let err = client.health().unwrap_err();
        assert!(err.to_string().contains("after 2 attempts"), "{err}");
        let ClientError::Exhausted { last, .. } = err;
        assert!(matches!(last, Failure::Transport(_)), "{last:?}");
    }
}
