//! A retrying HTTP client for the provenance service.
//!
//! The one-shot [`crate::http::request`] helper is fine for tests; real
//! upload paths (a training job shipping its provenance at the end of a
//! run) must survive transient server trouble — connection refused
//! during a restart, 503 while overloaded. [`Client`] wraps the same
//! wire format in bounded, deterministic exponential backoff: delays
//! double from [`RetryPolicy::base_delay`] up to
//! [`RetryPolicy::max_delay`], each scaled by a jitter factor in
//! [0.5, 1.0) derived from [`RetryPolicy::jitter_seed`] — so tests and
//! replayed runs see identical schedules, while distinct seeds decorrelate
//! real clients.
//!
//! Only transport errors and 502/503/504 (and unparseable responses)
//! are retried; any other status is a definitive answer and is returned
//! as-is.
//!
//! When a retryable response names its own schedule — the server's
//! watermark shedding path answers 503 with a `Retry-After` header —
//! that wait is honored (capped at [`MAX_RETRY_AFTER`]) instead of
//! the backoff schedule: the server knows when it will have capacity
//! better than a blind exponential guess does.
//!
//! Requests are sent with `Connection: keep-alive`, and a connection
//! whose response agrees is parked and reused by the next request (a
//! clone of the client shares the same parked connection). Replication
//! streams — many small frames to the same peer — stop paying a TCP
//! connect per frame. A parked connection the server has since closed
//! is detected on first use (the failure happens before any response
//! byte); **idempotent** requests (GET/HEAD/PUT/DELETE) are replayed
//! on a fresh connect transparently, while non-idempotent ones (POST —
//! uploads, replication frames) surface the failure as a transport
//! error instead, because a server can act on a request and die before
//! writing a single response byte, and silently resending would apply
//! the side effect twice. The caller-visible retry policy decides
//! whether such a request is attempted again. Servers that answer
//! `Connection: close` simply never get pooled.

use parking_lot::Mutex;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Ceiling on a server-supplied `Retry-After` wait, so a confused (or
/// hostile) server cannot park a client indefinitely.
pub const MAX_RETRY_AFTER: Duration = Duration::from_secs(30);

/// splitmix64: the same tiny deterministic generator the simulator's
/// fault planner uses.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Retry/backoff/timeout knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included); clamped to at least 1.
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Ceiling on the exponential delay (before jitter).
    pub max_delay: Duration,
    /// Per-request connect/read/write timeout.
    pub request_timeout: Duration,
    /// Seed for the deterministic jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            request_timeout: Duration::from_secs(10),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0 = first retry):
    /// `min(max_delay, base_delay · 2^attempt)` scaled by a
    /// deterministic jitter factor in [0.5, 1.0).
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        let exp = self.base_delay.saturating_mul(factor).min(self.max_delay);
        let mut s = self.jitter_seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let frac = (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        exp.mul_f64(0.5 + 0.5 * frac)
    }
}

/// A completed (non-retried-away) HTTP exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// Attempts it took (1 = first try succeeded).
    pub attempts: u32,
}

/// The terminal failure of one attempt — what was happening when the
/// retry budget ran out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// Connect/read/write failed before a response arrived.
    Transport(String),
    /// A retryable HTTP status (502/503/504; 0 marks an unparseable
    /// response).
    Status(u16),
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Transport(msg) => write!(f, "i/o error: {msg}"),
            Failure::Status(code) => write!(f, "HTTP {code}"),
        }
    }
}

/// Why a request ultimately failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Every attempt failed; `last` is the final attempt's failure.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The last attempt's failure mode.
        last: Failure,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted { attempts, last } => {
                write!(
                    f,
                    "request failed after {attempts} attempts; last error: {last}"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A blocking client with retries and keep-alive connection reuse.
/// Clones share the parked connection.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    policy: RetryPolicy,
    /// The parked keep-alive connection, if the last response allowed
    /// reuse. One slot is enough: each exchange is serialized under the
    /// lock, and concurrent callers simply open fresh connections.
    pool: Arc<Mutex<Option<BufReader<TcpStream>>>>,
}

impl Client {
    /// A client for the server at `addr`.
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> Client {
        Client {
            addr,
            policy,
            pool: Arc::new(Mutex::new(None)),
        }
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Sends `method path` with an optional body, retrying transport
    /// errors and 502/503/504 with backoff. Any other status — success
    /// or definitive client error — is returned as-is.
    pub fn send(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, ClientError> {
        self.send_with_read_timeout(method, path, body, self.policy.request_timeout)
    }

    /// [`Self::send`] with an explicit socket read timeout — the
    /// long-poll [`Self::watch`] legitimately waits far past the normal
    /// per-request budget while the server parks its request.
    fn send_with_read_timeout(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        read_timeout: Duration,
    ) -> Result<Response, ClientError> {
        let max_attempts = self.policy.max_attempts.max(1);
        // One span covers the whole logical request (all attempts); the
        // traceparent derived from it is attached to every attempt so
        // the server's handler spans join this client's trace.
        let mut trace = obs::trace::span("http_request");
        if obs::trace::is_enabled() {
            trace.annotate("method", method);
            trace.annotate("path", path);
        }
        let traceparent = obs::trace::traceparent();
        let mut last = Failure::Status(0);
        // Set when the previous retryable response carried Retry-After:
        // the server's schedule overrides the backoff schedule.
        let mut server_wait: Option<Duration> = None;
        for attempt in 0..max_attempts {
            if attempt > 0 {
                let wait = server_wait
                    .take()
                    .unwrap_or_else(|| self.policy.backoff_delay(attempt - 1));
                std::thread::sleep(wait);
            }
            match self.once(method, path, body, traceparent.as_deref(), read_timeout) {
                // Status 0 = unparseable response; treat like a
                // transport failure.
                Ok((status, _, resp_body)) if !matches!(status, 0 | 502 | 503 | 504) => {
                    return Ok(Response {
                        status,
                        body: resp_body,
                        attempts: attempt + 1,
                    });
                }
                Ok((status, retry_after, _)) => {
                    last = Failure::Status(status);
                    server_wait = retry_after.map(|s| Duration::from_secs(s).min(MAX_RETRY_AFTER));
                }
                Err(e) => last = Failure::Transport(e.to_string()),
            }
        }
        Err(ClientError::Exhausted {
            attempts: max_attempts,
            last,
        })
    }

    /// One wire exchange, under the per-request timeouts. Returns
    /// `(status, retry_after_seconds, body)`.
    ///
    /// A parked keep-alive connection is tried first. If it fails
    /// before a single response byte arrives — usually the server
    /// idle-closed it while parked — an idempotent request is replayed
    /// once on a fresh connection. A non-idempotent request is not: the
    /// server may have acted on it before dying, so the failure
    /// propagates to the caller's retry policy instead of being
    /// silently resent. Failures on a fresh connection, or after
    /// response bytes were seen, always propagate.
    fn once(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        traceparent: Option<&str>,
        read_timeout: Duration,
    ) -> std::io::Result<(u16, Option<u64>, String)> {
        let body = body.unwrap_or("");
        let trace_header = traceparent
            .map(|tp| format!("traceparent: {tp}\r\n"))
            .unwrap_or_default();
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n{trace_header}Connection: keep-alive\r\n\r\n{body}",
            body.len()
        );
        let replayable = matches!(method, "GET" | "HEAD" | "PUT" | "DELETE" | "OPTIONS");
        // Take the parked connection in its own statement: an
        // `if let Some(r) = self.pool.lock().take()` scrutinee keeps
        // the MutexGuard alive for the whole if-let body (2021-edition
        // temporary scope), and re-parking below would self-deadlock.
        let parked = self.pool.lock().take();
        if let Some(mut reader) = parked {
            // The parked socket keeps whatever read timeout its last
            // request used; re-arm it for this one.
            reader.get_ref().set_read_timeout(Some(read_timeout))?;
            match exchange(&mut reader, req.as_bytes()) {
                Ok((status, retry_after, payload, reuse)) => {
                    if reuse {
                        *self.pool.lock() = Some(reader);
                    }
                    return Ok((status, retry_after, payload));
                }
                Err(ExchangeError::Stale) if replayable => {} // fall through to a fresh connect
                Err(ExchangeError::Stale) => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "stale keep-alive connection closed before a response",
                    ));
                }
                Err(ExchangeError::Io(e)) => return Err(e),
            }
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.policy.request_timeout)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(self.policy.request_timeout))?;
        let mut reader = BufReader::new(stream);
        let (status, retry_after, payload, reuse) =
            exchange(&mut reader, req.as_bytes()).map_err(|e| match e {
                ExchangeError::Stale => {
                    io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed unanswered")
                }
                ExchangeError::Io(e) => e,
            })?;
        if reuse {
            *self.pool.lock() = Some(reader);
        }
        Ok((status, retry_after, payload))
    }

    /// GET convenience.
    pub fn get(&self, path: &str) -> Result<Response, ClientError> {
        self.send("GET", path, None)
    }

    /// Liveness probe.
    pub fn health(&self) -> Result<Response, ClientError> {
        self.get("/healthz")
    }

    /// Uploads a PROV-JSON document; on 201 the body carries `{"id"}`.
    pub fn upload_document(&self, prov_json: &str) -> Result<Response, ClientError> {
        self.send("POST", "/api/v0/documents", Some(prov_json))
    }

    /// Merges a standalone PROV-JSON delta into document `id`; on 200
    /// the body carries `{"id", "version"}` with the post-merge watch
    /// cursor.
    pub fn upload_delta(&self, id: &str, delta_json: &str) -> Result<Response, ClientError> {
        self.send(
            "POST",
            &format!("/api/v0/documents/{id}/deltas"),
            Some(delta_json),
        )
    }

    /// Runs a lineage query or ML audit against document `id`. The
    /// body is the query endpoint's JSON form — either
    /// `{"query": <PathQuery IR>}` or `{"audit": "leakage" | "gdpr" |
    /// "fairness" | "join", ...}`, optionally with `"docs"` (joined
    /// documents) and `"render": "dot"`.
    pub fn query(&self, id: &str, body_json: &str) -> Result<Response, ClientError> {
        self.send(
            "POST",
            &format!("/api/v0/documents/{id}/query"),
            Some(body_json),
        )
    }

    /// Long-polls document `id` for a version newer than `after`,
    /// parking server-side for up to `timeout`. The socket read timeout
    /// is widened past the park window so a quiet document does not
    /// read as a transport failure.
    pub fn watch(&self, id: &str, after: u64, timeout: Duration) -> Result<Response, ClientError> {
        let timeout_ms = timeout.as_millis().min(30_000) as u64;
        self.send_with_read_timeout(
            "GET",
            &format!("/api/v0/documents/{id}/watch?after={after}&timeout_ms={timeout_ms}"),
            None,
            self.policy.request_timeout + Duration::from_millis(timeout_ms),
        )
    }
}

/// How one wire exchange failed.
enum ExchangeError {
    /// The connection died before a single response byte arrived — for
    /// a parked keep-alive connection this means the server closed it
    /// while idle, and the request is safe to replay on a fresh socket.
    Stale,
    /// An I/O failure after response bytes were seen (or any other
    /// hard error); not silently replayable.
    Io(io::Error),
}

/// Writes `req` and reads one `Content-Length`-framed response.
/// Returns `(status, retry_after_seconds, body, reusable)` where
/// `reusable` says the server agreed to keep the connection alive.
fn exchange(
    reader: &mut BufReader<TcpStream>,
    req: &[u8],
) -> Result<(u16, Option<u64>, String, bool), ExchangeError> {
    // A write onto a dead socket fails before any response byte is
    // read, so the request was not observed to be acted on: stale.
    if reader.get_mut().write_all(req).is_err() || reader.get_mut().flush().is_err() {
        return Err(ExchangeError::Stale);
    }
    let mut head = String::new();
    let mut got_any = false;
    loop {
        let start = head.len();
        match reader.read_line(&mut head) {
            Ok(0) => {
                return Err(if got_any {
                    ExchangeError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-response",
                    ))
                } else {
                    ExchangeError::Stale
                });
            }
            Ok(_) => got_any = true,
            Err(e) => {
                return Err(if got_any {
                    ExchangeError::Io(e)
                } else {
                    ExchangeError::Stale
                });
            }
        }
        if head[start..].trim_end().is_empty() {
            break; // blank line: end of the header section
        }
        if head.len() > 64 * 1024 {
            return Err(ExchangeError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                "response header section too large",
            )));
        }
    }
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut content_length = 0usize;
    let mut retry_after = None;
    let mut reusable = false;
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().unwrap_or(0);
        } else if name.eq_ignore_ascii_case("retry-after") {
            // Integer-seconds Retry-After only; the HTTP-date form is
            // not something this server emits.
            retry_after = value.parse::<u64>().ok();
        } else if name.eq_ignore_ascii_case("connection") {
            reusable = value.eq_ignore_ascii_case("keep-alive");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(ExchangeError::Io)?;
    let payload = String::from_utf8_lossy(&body).into_owned();
    Ok((status, retry_after, payload, reusable && status != 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Server, ServerConfig};
    use crate::store::DocumentStore;

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(40),
            request_timeout: Duration::from_secs(5),
            jitter_seed: 42,
        }
    }

    fn sample_doc_json() -> String {
        let mut doc = prov_model::ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(prov_model::QName::new("ex", "data"));
        doc.to_json_string().unwrap()
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 0..8u32 {
            let d1 = p.backoff_delay(attempt);
            let d2 = p.backoff_delay(attempt);
            assert_eq!(d1, d2, "same attempt, same delay");
            let envelope = p
                .base_delay
                .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                .min(p.max_delay);
            assert!(d1 <= envelope, "attempt {attempt}: {d1:?} > {envelope:?}");
            assert!(
                d1 >= envelope / 2,
                "attempt {attempt}: {d1:?} < half envelope"
            );
        }
        // A different seed gives a different (but still bounded) schedule.
        let other = RetryPolicy {
            jitter_seed: 1,
            ..p
        };
        assert_ne!(p.backoff_delay(0), other.backoff_delay(0));
    }

    #[test]
    fn retries_through_injected_upload_faults() {
        let server = Server::bind(
            "127.0.0.1:0",
            DocumentStore::new(),
            ServerConfig {
                chaos_fail_uploads: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let client = Client::new(server.addr(), fast_policy());
        let resp = client.upload_document(&sample_doc_json()).unwrap();
        assert_eq!(resp.status, 201);
        assert_eq!(resp.attempts, 3, "two 503s, then success");
        server.shutdown();
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let server = Server::bind(
            "127.0.0.1:0",
            DocumentStore::new(),
            ServerConfig {
                chaos_fail_uploads: 100,
                ..Default::default()
            },
        )
        .unwrap();
        let client = Client::new(
            server.addr(),
            RetryPolicy {
                max_attempts: 2,
                ..fast_policy()
            },
        );
        let err = client.upload_document(&sample_doc_json()).unwrap_err();
        match err {
            ClientError::Exhausted { attempts, ref last } => {
                assert_eq!(attempts, 2);
                assert_eq!(*last, Failure::Status(503));
            }
        }
        assert!(err.to_string().contains("HTTP 503"), "{err}");
        server.shutdown();
    }

    #[test]
    fn honors_server_retry_after_over_backoff() {
        // A hand-rolled peer: sheds the first request with
        // `Retry-After: 1`, serves the second. The client's own backoff
        // (5 ms base) would retry almost immediately; honoring the
        // server's schedule means waiting the full second.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut buf = [0u8; 4096];
            let (mut s, _) = listener.accept().unwrap();
            let _ = s.read(&mut buf);
            s.write_all(
                b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 2\r\nRetry-After: 1\r\nConnection: close\r\n\r\n{}",
            )
            .unwrap();
            drop(s);
            let (mut s, _) = listener.accept().unwrap();
            let _ = s.read(&mut buf);
            s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}")
                .unwrap();
        });
        let client = Client::new(addr, fast_policy());
        let started = std::time::Instant::now();
        let resp = client.health().unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.attempts, 2);
        assert!(
            started.elapsed() >= Duration::from_millis(900),
            "the 1 s Retry-After must override the 5 ms backoff; waited {:?}",
            started.elapsed()
        );
    }

    /// A hand-rolled peer that answers one keep-alive response, closes
    /// the connection while the client has it parked, then serves one
    /// more request on a fresh connection.
    fn park_then_close_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut buf = [0u8; 4096];
            let (mut s, _) = listener.accept().unwrap();
            let _ = s.read(&mut buf);
            s.write_all(
                b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\n{}",
            )
            .unwrap();
            drop(s); // the parked connection goes stale here
            let (mut s, _) = listener.accept().unwrap();
            let _ = s.read(&mut buf);
            s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}")
                .unwrap();
        });
        (addr, handle)
    }

    #[test]
    fn stale_parked_connection_replays_get_transparently() {
        let (addr, server) = park_then_close_server();
        let client = Client::new(addr, fast_policy());
        assert_eq!(client.get("/a").unwrap().status, 200);
        std::thread::sleep(Duration::from_millis(50)); // let the FIN land
        let resp = client.get("/b").unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.attempts, 1,
            "an idempotent replay is transparent, not a visible retry"
        );
    }

    #[test]
    fn parked_connection_is_reused_across_sequential_requests() {
        // A healthy keep-alive peer that serves three requests on ONE
        // accepted connection. Every request after the first goes
        // through the pooled-reuse path in `once()` — the path that
        // used to self-deadlock on re-parking (the if-let scrutinee
        // held the pool MutexGuard across the body).
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut buf = [0u8; 4096];
            let (mut s, _) = listener.accept().unwrap();
            for _ in 0..3 {
                let _ = s.read(&mut buf);
                s.write_all(
                    b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\n{}",
                )
                .unwrap();
            }
        });
        let client = Client::new(addr, fast_policy());
        for i in 0..3 {
            let resp = client.get("/a").unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.attempts, 1, "request {i} must not burn retries");
        }
        server.join().unwrap();
    }

    #[test]
    fn stale_parked_connection_does_not_silently_replay_post() {
        let (addr, server) = park_then_close_server();
        let client = Client::new(addr, fast_policy());
        assert_eq!(client.get("/a").unwrap().status, 200);
        std::thread::sleep(Duration::from_millis(50)); // let the FIN land

        // The POST hits the stale parked connection. It must NOT be
        // replayed by the pool — the server could have acted on it —
        // so the failure costs a visible attempt and the retry policy
        // decides to resend.
        let resp = client.send("POST", "/b", Some("{}")).unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.attempts, 2,
            "a non-idempotent resend must be a counted retry"
        );
    }

    #[test]
    fn delta_upload_and_watch_long_poll_round_trip() {
        let server =
            Server::bind("127.0.0.1:0", DocumentStore::new(), ServerConfig::default()).unwrap();
        let client = Client::new(server.addr(), fast_policy());
        let up = client.upload_document(&sample_doc_json()).unwrap();
        assert_eq!(up.status, 201);
        let id = up.body.split('"').nth(3).unwrap().to_string();

        // A watcher parked past the current version must wake when the
        // delta lands, carrying the merged document.
        let watcher = {
            let client = client.clone();
            let id = id.clone();
            std::thread::spawn(move || client.watch(&id, 1, Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(100)); // let the watcher park

        let mut delta = prov_model::ProvDocument::new();
        delta.namespaces_mut().register("ex", "http://ex/").unwrap();
        delta.entity(prov_model::QName::new("ex", "extra"));
        let resp = client
            .upload_delta(&id, &delta.to_json_string().unwrap())
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"version\":2"), "{}", resp.body);

        let woke = watcher.join().unwrap().unwrap();
        assert_eq!(woke.status, 200);
        assert!(woke.body.contains("\"changed\":true"), "{}", woke.body);
        assert!(woke.body.contains("\"version\":2"), "{}", woke.body);
        assert!(
            woke.body.contains("extra"),
            "woken watch carries the merged document: {}",
            woke.body
        );
        server.shutdown();
    }

    #[test]
    fn non_retryable_statuses_return_immediately() {
        let server =
            Server::bind("127.0.0.1:0", DocumentStore::new(), ServerConfig::default()).unwrap();
        let client = Client::new(server.addr(), fast_policy());
        let resp = client.upload_document("{not json").unwrap();
        assert_eq!(resp.status, 400);
        assert_eq!(resp.attempts, 1, "4xx is definitive, no retry");
        server.shutdown();
    }

    #[test]
    fn dead_server_exhausts_with_io_error() {
        // Bind then drop a listener to get a port that refuses.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = Client::new(
            addr,
            RetryPolicy {
                max_attempts: 2,
                ..fast_policy()
            },
        );
        let err = client.health().unwrap_err();
        assert!(err.to_string().contains("after 2 attempts"), "{err}");
        let ClientError::Exhausted { last, .. } = err;
        assert!(matches!(last, Failure::Transport(_)), "{last:?}");
    }
}
