//! Per-connection HTTP/1.1 state machines for the event-loop core.
//!
//! The reactor owns the sockets; this module owns the bytes. Each
//! connection carries an [`HttpParser`] (an incremental request
//! decoder: bytes are pushed as they arrive, complete requests come
//! out, pipelined requests queue up behind each other) and a
//! [`WriteQueue`] (response bytes buffered until the socket will take
//! them). Neither side ever blocks: the parser works on whatever has
//! arrived, the queue writes whatever the kernel will accept.
//!
//! The parser reproduces the blocking parser's error taxonomy exactly —
//! 431 for a header section over the byte budget or field cap
//! (detected *incrementally*, so a flood is rejected before any
//! terminator arrives), 501 for `Transfer-Encoding: chunked`, 400 for
//! everything else malformed — because the robustness tests assert on
//! those bytes.

use crate::http::Request;
use std::collections::VecDeque;
use std::io::{self, Write};

/// Parser limits, lifted from the server config.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Limits {
    /// Maximum accepted request-body size in bytes.
    pub max_body: usize,
    /// Maximum total bytes in the request line + header section.
    pub max_header_bytes: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
}

/// A fully parsed header section, waiting for its body.
#[derive(Debug)]
struct Head {
    method: String,
    target: String,
    traceparent: Option<String>,
    keep_alive: bool,
    content_length: usize,
}

#[derive(Debug)]
enum State {
    /// Accumulating the request line + headers.
    Head,
    /// Header section done; `Content-Length` body bytes outstanding.
    Body(Head),
}

/// An incremental HTTP/1.1 request parser. Push bytes in with
/// [`HttpParser::push`], pull complete requests out with
/// [`HttpParser::next`]; a protocol violation surfaces as
/// `Err((status, message))` exactly once, after which the connection
/// should answer and close.
#[derive(Debug)]
pub(crate) struct HttpParser {
    buf: Vec<u8>,
    /// How far the head-terminator scan has progressed, so a slowloris
    /// trickling one byte at a time costs O(1) per byte, not O(n²).
    scan: usize,
    state: State,
}

impl HttpParser {
    pub fn new() -> HttpParser {
        HttpParser {
            buf: Vec::new(),
            scan: 0,
            state: State::Head,
        }
    }

    /// Appends freshly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when bytes of an incomplete request are buffered — what the
    /// read timeout watches.
    pub fn has_partial(&self) -> bool {
        match self.state {
            State::Head => !self.buf.is_empty(),
            State::Body(_) => true,
        }
    }

    /// Tries to complete one request from the buffered bytes. `Ok(None)`
    /// means "need more bytes"; call again after the next [`Self::push`].
    pub fn next(&mut self, limits: &Limits) -> Result<Option<Request>, (u16, String)> {
        loop {
            match &self.state {
                State::Head => {
                    // A peer is allowed stray CRLFs between requests
                    // (and the shutdown nudge is an empty connection):
                    // skip blank space before the request line.
                    let lead = self
                        .buf
                        .iter()
                        .take_while(|&&b| b == b'\r' || b == b'\n')
                        .count();
                    if lead > 0 {
                        self.buf.drain(..lead);
                        self.scan = 0;
                    }
                    if self.buf.is_empty() {
                        return Ok(None);
                    }
                    match find_head_end(&self.buf, self.scan) {
                        Some(end) => {
                            if end > limits.max_header_bytes {
                                return Err(over_budget(limits));
                            }
                            let head_bytes: Vec<u8> = self.buf.drain(..end).collect();
                            self.scan = 0;
                            let head = parse_head(&head_bytes, limits)?;
                            if head.content_length > limits.max_body {
                                return Err((
                                    400,
                                    format!("body of {} bytes exceeds limit", head.content_length),
                                ));
                            }
                            if head.content_length == 0 {
                                return Ok(Some(build_request(head, Vec::new())));
                            }
                            self.state = State::Body(head);
                        }
                        None => {
                            // No terminator yet: enforce the budgets
                            // incrementally, so a flood with no blank
                            // line is still rejected (431) instead of
                            // buffered without bound.
                            let lines = self.buf.iter().filter(|&&b| b == b'\n').count();
                            if lines.saturating_sub(1) > limits.max_headers {
                                return Err((
                                    431,
                                    format!("more than {} header fields", limits.max_headers),
                                ));
                            }
                            if self.buf.len() >= limits.max_header_bytes {
                                return Err(over_budget(limits));
                            }
                            // Back off two bytes so a terminator split
                            // across reads is still found.
                            self.scan = self.buf.len().saturating_sub(2);
                            return Ok(None);
                        }
                    }
                }
                State::Body(head) => {
                    if self.buf.len() < head.content_length {
                        return Ok(None);
                    }
                    let State::Body(head) = std::mem::replace(&mut self.state, State::Head) else {
                        unreachable!()
                    };
                    let body: Vec<u8> = self.buf.drain(..head.content_length).collect();
                    self.scan = 0;
                    return Ok(Some(build_request(head, body)));
                }
            }
        }
    }

    /// The peer closed its write side. `None` means the connection
    /// ended cleanly between requests; `Some((status, message))` is the
    /// rejection for a request cut off mid-flight, mirroring what the
    /// blocking parser answered when its reads hit EOF.
    pub fn finish_eof(&mut self, limits: &Limits) -> Option<(u16, String)> {
        match &self.state {
            State::Body(_) => {
                // The blocking parser's `read_exact` failed here with
                // `failed to fill whole buffer`; keep the message.
                Some((400, "short body: failed to fill whole buffer".to_string()))
            }
            State::Head => {
                let trimmed: Vec<u8> = self
                    .buf
                    .iter()
                    .copied()
                    .skip_while(|&b| b == b'\r' || b == b'\n')
                    .collect();
                if trimmed.is_empty() {
                    return None;
                }
                Some(head_eof_error(&trimmed, limits))
            }
        }
    }
}

/// What the blocking parser would have said about a head section that
/// ended (EOF) before its blank line: request-line errors first, then
/// per-header errors on the complete lines, then the generic
/// "ended without a blank line".
fn head_eof_error(head: &[u8], limits: &Limits) -> (u16, String) {
    let mut lines = head.split(|&b| b == b'\n');
    let request_line = lines.next().unwrap_or_default();
    if let Err(e) = parse_request_line(request_line) {
        return e;
    }
    let mut header_count = 0usize;
    for line in lines {
        let Ok(text) = std::str::from_utf8(line) else {
            return (
                400,
                "read error: stream did not contain valid UTF-8".to_string(),
            );
        };
        let text = text.trim_end_matches('\r');
        if text.trim().is_empty() {
            continue;
        }
        header_count += 1;
        if header_count > limits.max_headers {
            return (
                431,
                format!("more than {} header fields", limits.max_headers),
            );
        }
        if let Some((name, value)) = text.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") && value.trim().parse::<usize>().is_err()
            {
                return (400, "bad content-length".to_string());
            }
        }
    }
    (400, "header section ended without a blank line".to_string())
}

fn over_budget(limits: &Limits) -> (u16, String) {
    (
        431,
        format!("header section exceeds {} bytes", limits.max_header_bytes),
    )
}

/// Finds the end of the header section (the byte *after* the blank
/// line), scanning from `from`. The section ends at the first empty
/// line: `\n\r\n` or `\n\n`.
fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if buf.get(i + 1) == Some(&b'\n') {
                return Some(i + 2);
            }
            if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// Parses `METHOD TARGET HTTP/1.x` with the blocking parser's error
/// messages.
fn parse_request_line(line: &[u8]) -> Result<(String, String), (u16, String)> {
    let Ok(line) = std::str::from_utf8(line) else {
        return Err((
            400,
            "read error: stream did not contain valid UTF-8".to_string(),
        ));
    };
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or((400, "missing method".to_string()))?
        .to_string();
    let target = parts
        .next()
        .ok_or((400, "missing path".to_string()))?
        .to_string();
    let version = parts.next().ok_or((400, "missing version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err((400, format!("unsupported version {version}")));
    }
    Ok((method, target))
}

/// Parses a complete header section (request line through blank line).
fn parse_head(head: &[u8], limits: &Limits) -> Result<Head, (u16, String)> {
    let mut lines = head.split(|&b| b == b'\n');
    let (method, target) = parse_request_line(lines.next().unwrap_or_default())?;

    let mut content_length = 0usize;
    let mut chunked = false;
    let mut traceparent = None;
    let mut keep_alive = false;
    let mut header_count = 0usize;
    for line in lines {
        let Ok(text) = std::str::from_utf8(line) else {
            return Err((
                400,
                "read error: stream did not contain valid UTF-8".to_string(),
            ));
        };
        let text = text.trim_end_matches('\r');
        if text.trim().is_empty() {
            continue;
        }
        header_count += 1;
        if header_count > limits.max_headers {
            return Err((
                431,
                format!("more than {} header fields", limits.max_headers),
            ));
        }
        if let Some((name, value)) = text.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| (400, "bad content-length".to_string()))?;
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.to_ascii_lowercase().contains("chunked")
            {
                chunked = true;
            } else if name.eq_ignore_ascii_case("traceparent") {
                traceparent = Some(value.trim().to_string());
            } else if name.eq_ignore_ascii_case("connection") {
                // Keep-alive is opt-in: only an explicit request header
                // holds the connection open, so clients built for the
                // one-shot server (read to EOF) still see a close.
                keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
            }
        }
    }
    if chunked {
        return Err((
            501,
            "Transfer-Encoding: chunked is not supported; send Content-Length".to_string(),
        ));
    }
    Ok(Head {
        method,
        target,
        traceparent,
        keep_alive,
        content_length,
    })
}

fn build_request(head: Head, body: Vec<u8>) -> Request {
    Request::from_parts(
        head.method,
        &head.target,
        body,
        head.traceparent,
        head.keep_alive,
    )
}

// ---------------------------------------------------------------------------
// Buffered writes
// ---------------------------------------------------------------------------

/// Response bytes queued toward one socket. Chunks go in whole (a
/// response head, then its body — no copy of large bodies), bytes come
/// out as fast as the kernel accepts them.
#[derive(Debug, Default)]
pub(crate) struct WriteQueue {
    chunks: VecDeque<Vec<u8>>,
    /// Bytes of the front chunk already written.
    front: usize,
    len: usize,
}

impl WriteQueue {
    pub fn new() -> WriteQueue {
        WriteQueue::default()
    }

    pub fn push(&mut self, bytes: Vec<u8>) {
        if !bytes.is_empty() {
            self.len += bytes.len();
            self.chunks.push_back(bytes);
        }
    }

    /// Unwritten bytes queued.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes as much as the socket will take. Returns the bytes
    /// written; a non-empty queue afterwards means the socket is full
    /// (wait for writability). Hard I/O errors propagate.
    pub fn write_to<W: Write>(&mut self, w: &mut W) -> io::Result<usize> {
        let mut written = 0usize;
        while let Some(chunk) = self.chunks.front() {
            match w.write(&chunk[self.front..]) {
                Ok(0) => break,
                Ok(n) => {
                    written += n;
                    self.len -= n;
                    self.front += n;
                    if self.front == chunk.len() {
                        self.chunks.pop_front();
                        self.front = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> Limits {
        Limits {
            max_body: 1024,
            max_header_bytes: 512,
            max_headers: 8,
        }
    }

    #[test]
    fn parses_a_complete_request_in_one_push() {
        let mut p = HttpParser::new();
        p.push(b"POST /api/v0/documents?x=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody");
        let req = p.next(&limits()).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/api/v0/documents");
        assert_eq!(req.query, vec![("x".to_string(), "1".to_string())]);
        assert_eq!(req.body, b"body");
        assert!(!req.keep_alive);
        assert!(p.next(&limits()).unwrap().is_none());
        assert!(!p.has_partial());
    }

    #[test]
    fn parses_byte_at_a_time() {
        let raw = b"GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
        let mut p = HttpParser::new();
        for (i, b) in raw.iter().enumerate() {
            p.push(&[*b]);
            let got = p.next(&limits()).unwrap();
            if i + 1 < raw.len() {
                assert!(got.is_none(), "complete too early at byte {i}");
            } else {
                let req = got.unwrap();
                assert_eq!(req.path, "/healthz");
                assert!(req.keep_alive);
            }
        }
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let mut p = HttpParser::new();
        p.push(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n");
        let paths: Vec<String> = std::iter::from_fn(|| p.next(&limits()).unwrap())
            .map(|r| r.path)
            .collect();
        assert_eq!(paths, ["/a", "/b", "/c"]);
    }

    #[test]
    fn header_field_cap_fires_without_a_terminator() {
        let mut p = HttpParser::new();
        p.push(b"GET / HTTP/1.1\r\n");
        for i in 0..=limits().max_headers {
            p.push(format!("X-{i}: v\r\n").as_bytes());
        }
        let err = p.next(&limits()).unwrap_err();
        assert_eq!(err.0, 431);
        assert!(err.1.contains("header fields"), "{}", err.1);
    }

    #[test]
    fn header_byte_budget_fires_without_a_terminator() {
        let mut p = HttpParser::new();
        p.push(b"GET / HTTP/1.1\r\nX-Flood: ");
        p.push(&vec![b'a'; limits().max_header_bytes]);
        let err = p.next(&limits()).unwrap_err();
        assert_eq!(err.0, 431);
        assert!(err.1.contains("exceeds"), "{}", err.1);
    }

    #[test]
    fn chunked_rejected_with_501() {
        let mut p = HttpParser::new();
        p.push(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        let err = p.next(&limits()).unwrap_err();
        assert_eq!(err.0, 501);
    }

    #[test]
    fn oversized_body_rejected_before_the_body_arrives() {
        let mut p = HttpParser::new();
        p.push(b"POST / HTTP/1.1\r\nContent-Length: 99999\r\n\r\n");
        let err = p.next(&limits()).unwrap_err();
        assert_eq!(err.0, 400);
        assert!(err.1.contains("exceeds limit"), "{}", err.1);
    }

    #[test]
    fn eof_mid_body_is_a_short_body() {
        let mut p = HttpParser::new();
        p.push(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhal");
        assert!(p.next(&limits()).unwrap().is_none());
        let (status, msg) = p.finish_eof(&limits()).unwrap();
        assert_eq!(status, 400);
        assert!(msg.starts_with("short body"), "{msg}");
    }

    #[test]
    fn eof_between_requests_is_clean() {
        let mut p = HttpParser::new();
        p.push(b"GET / HTTP/1.1\r\n\r\n");
        assert!(p.next(&limits()).unwrap().is_some());
        assert!(p.finish_eof(&limits()).is_none());
        let mut empty = HttpParser::new();
        empty.push(b"\r\n");
        assert!(empty.next(&limits()).unwrap().is_none());
        assert!(empty.finish_eof(&limits()).is_none());
    }

    #[test]
    fn eof_mid_head_mirrors_the_blocking_errors() {
        for (raw, want) in [
            (&b"GET"[..], "missing path"),
            (&b"GET /x"[..], "missing version"),
            (&b"GET /x SPDY/99"[..], "unsupported version"),
            (
                &b"GET /x HTTP/1.1\r\nHost: h\r\n"[..],
                "without a blank line",
            ),
        ] {
            let mut p = HttpParser::new();
            p.push(raw);
            assert!(p.next(&limits()).unwrap().is_none(), "{want}");
            let (status, msg) = p.finish_eof(&limits()).unwrap();
            assert_eq!(status, 400, "{msg}");
            assert!(msg.contains(want), "{msg} vs {want}");
        }
    }

    #[test]
    fn write_queue_drains_across_partial_writes() {
        struct Dribble(Vec<u8>);
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let n = buf.len().min(3);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut q = WriteQueue::new();
        q.push(b"HTTP/1.1 200 OK\r\n\r\n".to_vec());
        q.push(b"hello world".to_vec());
        let mut sink = Dribble(Vec::new());
        let mut total = 0;
        while !q.is_empty() {
            total += q.write_to(&mut sink).unwrap();
        }
        assert_eq!(total, sink.0.len());
        assert!(sink.0.ends_with(b"hello world"));
        assert_eq!(q.len(), 0);
    }
}
