//! The server's ops plane: the glue between the `obs` building blocks
//! (tsdb history, alert rules, slow-request log) and the service.
//!
//! A server owns one [`Ops`] handle. A scraper thread (spawned by
//! `Server::bind` unless [`OpsConfig::self_scrape`] is off) snapshots
//! the server's and the store's registries on each cadence tick, feeds
//! the merged snapshot to the tsdb, and evaluates the alert rules
//! against the freshly recorded series. The HTTP surface
//! (`/api/v0/obs/*`) renders what this module exposes:
//!
//! * `health` — liveness plus readiness checks (backend writable,
//!   ledger verified, replication sources, reactor watermarks);
//! * `timeseries` — windowed tsdb queries;
//! * `slowlog` — the per-route slowest/erroring requests;
//! * `alerts` — every rule's lifecycle state;
//! * `cluster` — the federated view: each member's `/metrics` and
//!   health, fetched over the replicator's pooled keep-alive clients
//!   and merged into one per-member-labelled snapshot.
//!
//! Everything here is read-mostly and clock-agnostic: ticks take `f64`
//! seconds, so integration tests drive the whole plane — scrape,
//! downsampling, alert transitions — from a virtual clock.

use crate::cluster::Replicator;
use crate::slowlog::SlowLog;
use crate::store::DocumentStore;
use obs::alerts::{AlertRule, AlertSet};
use obs::tsdb::{Tsdb, TsdbConfig};
use obs::{Registry, Snapshot};
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

/// Ops-plane tunables, carried inside `ServerConfig`.
#[derive(Debug, Clone)]
pub struct OpsConfig {
    /// Self-scrape cadence.
    pub scrape_interval: Duration,
    /// Tsdb downsampling tiers.
    pub tsdb: TsdbConfig,
    /// Slowlog entries kept per route (slowest + erroring each).
    pub slowlog_per_route: usize,
    /// Declarative alert rules evaluated on every scrape tick.
    pub alert_rules: Vec<AlertRule>,
    /// Spawn the scraper thread. Turn off to drive ticks manually
    /// (tests) or to run without history.
    pub self_scrape: bool,
}

impl Default for OpsConfig {
    fn default() -> Self {
        OpsConfig {
            scrape_interval: Duration::from_secs(1),
            tsdb: TsdbConfig::default(),
            slowlog_per_route: 8,
            alert_rules: Vec::new(),
            self_scrape: true,
        }
    }
}

/// The assembled ops plane for one server.
pub struct Ops {
    tsdb: Tsdb,
    alerts: Arc<AlertSet>,
    slowlog: SlowLog,
    /// How stale a series may be and still satisfy an alert lookup:
    /// two scrape intervals, so one missed tick does not flap rules.
    alert_staleness_s: f64,
}

impl Ops {
    /// Builds the plane, exporting `alerts_firing{rule}` gauges into
    /// `registry` and installing the alert set as the process-global
    /// one (so run finalization can fold alert state into PROV).
    pub fn new(cfg: &OpsConfig, registry: &Registry) -> Arc<Ops> {
        let alerts = Arc::new(AlertSet::new(cfg.alert_rules.clone()));
        alerts.export_to(registry);
        obs::alerts::set_global(Arc::clone(&alerts));
        Arc::new(Ops {
            tsdb: Tsdb::new(cfg.tsdb.clone()),
            alerts,
            slowlog: SlowLog::new(cfg.slowlog_per_route),
            alert_staleness_s: cfg.scrape_interval.as_secs_f64().max(0.001) * 2.0,
        })
    }

    pub fn tsdb(&self) -> &Tsdb {
        &self.tsdb
    }

    pub fn alerts(&self) -> &AlertSet {
        &self.alerts
    }

    pub fn slowlog(&self) -> &SlowLog {
        &self.slowlog
    }

    /// One scrape tick at `now_s`: merges the registries' snapshots
    /// (instrument names are disjoint across the server's and the
    /// store's registries), records them into the tsdb, then evaluates
    /// the alert rules against the fresh series.
    pub fn tick(&self, now_s: f64, registries: &[&Registry]) {
        let mut merged = Snapshot::default();
        for reg in registries {
            let snap = reg.snapshot();
            merged.counters.extend(snap.counters);
            merged.gauges.extend(snap.gauges);
            merged.histograms.extend(snap.histograms);
        }
        self.tsdb.tick(now_s, &merged);
        let staleness = self.alert_staleness_s;
        self.alerts
            .evaluate(now_s, |metric| self.tsdb.latest(metric, now_s, staleness));
    }

    /// The `/api/v0/obs/alerts` body.
    pub fn alerts_json(&self) -> String {
        let states: Vec<serde_json::Value> = self
            .alerts
            .states()
            .into_iter()
            .map(|s| {
                json!({
                    "rule": s.rule.name,
                    "metric": s.rule.metric,
                    "cmp": s.rule.cmp.symbol(),
                    "threshold": s.rule.threshold,
                    "for_s": s.rule.for_s,
                    "phase": s.phase.as_str(),
                    "pending_since_s": s.pending_since_s,
                    "fired_at_s": s.fired_at_s,
                    "resolved_at_s": s.resolved_at_s,
                    "last_value": s.last_value,
                })
            })
            .collect();
        json!({"alerts": states}).to_string()
    }

    /// The `/api/v0/obs/slowlog` body.
    pub fn slowlog_json(&self) -> String {
        let entry_json = |e: &crate::slowlog::SlowEntry| {
            json!({
                "method": e.method,
                "path": e.path,
                "status": e.status,
                "latency_ns": e.latency_ns,
                "shed": e.shed,
                "trace_id": e.trace_id,
                "seq": e.seq,
            })
        };
        let routes: Vec<serde_json::Value> = self
            .slowlog
            .snapshot()
            .into_iter()
            .map(|(route, slowest, errors)| {
                json!({
                    "route": route,
                    "slowest": slowest.iter().map(entry_json).collect::<Vec<_>>(),
                    "errors": errors.iter().map(entry_json).collect::<Vec<_>>(),
                })
            })
            .collect();
        json!({"routes": routes}).to_string()
    }

    /// The `/api/v0/obs/timeseries` body for one query.
    pub fn timeseries_json(&self, metric: &str, since_s: f64, step_s: f64, now_s: f64) -> String {
        let series = self.tsdb.query(metric, since_s, step_s, now_s);
        let points: Vec<serde_json::Value> = series
            .points
            .iter()
            .map(|p| {
                json!({
                    "t_s": p.t_s,
                    "avg": p.avg,
                    "min": p.min,
                    "max": p.max,
                    "count": p.count,
                })
            })
            .collect();
        json!({
            "metric": series.metric,
            "step_s": series.step_s,
            "points": points,
        })
        .to_string()
    }
}

/// Builds the `/api/v0/obs/health` body. Returns `(ready, body)`; the
/// route serves 200 when ready, 503 otherwise (so a load balancer can
/// take the node out on the status code alone).
pub fn health_json(store: &DocumentStore, registry: &Registry) -> (bool, String) {
    let backend = store.flush();
    let ledger = store.verify_all();
    let ready = backend.is_ok() && ledger.is_ok();
    let check = |r: &Result<(), crate::error::ServiceError>| match r {
        Ok(()) => json!({"ok": true}),
        Err(e) => json!({"ok": false, "error": e.to_string()}),
    };
    let sources: Vec<serde_json::Value> = store
        .replication_sources()
        .into_iter()
        .map(|(source, entries)| json!({"source": source, "entries": entries}))
        .collect();
    // The reactor publishes its watermarks as gauges; a health probe
    // reads them from the registry rather than reaching into the core
    // (the threaded core simply reports zeros).
    let snap = registry.snapshot();
    let gauge = |name: &str| snap.gauges.get(name).copied().unwrap_or(0);
    let body = json!({
        "live": true,
        "ready": ready,
        "checks": {
            "backend_writable": check(&backend),
            "ledger_verified": check(&ledger),
        },
        "backend": store.backend_name(),
        "ledger_entries": store.ledger_entries().len(),
        "replication_sources": sources,
        "reactor": {
            "connections_open": gauge("server_connections_open"),
            "queued_jobs": gauge("reactor_queued_jobs"),
            "queued_bytes": gauge("reactor_queued_bytes"),
        },
    })
    .to_string();
    (ready, body)
}

/// Injects `member="<id>"` as the first label of every sample line of a
/// Prometheus exposition, dropping comment lines (a federated snapshot
/// concatenates many members; repeating `# TYPE` per member would make
/// the merge invalid).
pub(crate) fn label_member(exposition: &str, member: &str) -> String {
    let mut out = String::with_capacity(exposition.len() + exposition.len() / 4);
    for line in exposition.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `name{labels} value` or `name value`.
        let (series, rest) = match line.split_once(' ') {
            Some(parts) => parts,
            None => continue,
        };
        match series.split_once('{') {
            Some((name, labels)) => {
                out.push_str(name);
                out.push_str("{member=\"");
                out.push_str(member);
                out.push_str("\",");
                out.push_str(labels);
            }
            None => {
                out.push_str(series);
                out.push_str("{member=\"");
                out.push_str(member);
                out.push_str("\"}");
            }
        }
        out.push(' ');
        out.push_str(rest);
        out.push('\n');
    }
    out
}

/// Builds the `/api/v0/obs/cluster` body: this node's own metrics and
/// health plus every peer's, fetched over the replicator's pooled
/// keep-alive clients. A dead peer degrades its member entry
/// (`ok: false` + error detail) — the endpoint itself stays 200, so a
/// dashboard keeps rendering the surviving members.
pub fn cluster_json(
    store: &DocumentStore,
    registry: &Registry,
    replicator: Option<&Replicator>,
    self_exposition: &str,
) -> String {
    let mut members = Vec::new();
    let mut merged = String::new();
    let mut degraded = false;

    let self_id = replicator.map_or("self", |r| r.node_id()).to_string();
    let (_, own_health) = health_json(store, registry);
    merged.push_str(&label_member(self_exposition, &self_id));
    members.push(json!({
        "id": self_id,
        "ok": true,
        "health": serde_json::from_str::<serde_json::Value>(&own_health)
            .unwrap_or(serde_json::Value::Null),
    }));

    if let Some(replicator) = replicator {
        for peer in replicator.peers() {
            let client = replicator.peer_client(peer);
            let metrics = client.get("/metrics");
            let health = client.get("/api/v0/obs/health");
            match (metrics, health) {
                (Ok(m), Ok(h)) if m.status == 200 => {
                    merged.push_str(&label_member(&m.body, &peer.id));
                    members.push(json!({
                        "id": peer.id,
                        "ok": h.status == 200,
                        "health": serde_json::from_str::<serde_json::Value>(&h.body)
                            .unwrap_or(serde_json::Value::Null),
                    }));
                    if h.status != 200 {
                        degraded = true;
                    }
                }
                (m, h) => {
                    degraded = true;
                    let error = match (&m, &h) {
                        (Err(e), _) => e.to_string(),
                        (_, Err(e)) => e.to_string(),
                        (Ok(m), _) => format!("metrics returned {}", m.status),
                    };
                    members.push(json!({
                        "id": peer.id,
                        "ok": false,
                        "error": error,
                    }));
                }
            }
        }
    }

    json!({
        "self": members[0]["id"],
        "ok": !degraded,
        "members": members,
        "metrics": merged,
    })
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_merges_registries_and_drives_alerts() {
        let server_reg = Registry::new();
        let store_reg = Registry::new();
        let cfg = OpsConfig {
            alert_rules: vec![AlertRule::new(
                "busy",
                "requests_total",
                obs::alerts::Cmp::Gt,
                5.0,
                0.0,
            )],
            self_scrape: false,
            ..OpsConfig::default()
        };
        let ops = Ops::new(&cfg, &server_reg);
        let c = server_reg.counter("requests_total");
        let g = store_reg.gauge("store_cache_entries");
        g.set(3);
        ops.tick(0.0, &[&server_reg, &store_reg]);
        c.add(100);
        ops.tick(1.0, &[&server_reg, &store_reg]);
        // Both registries' series landed...
        assert!(ops.tsdb().latest("requests_total", 1.0, 2.0).is_some());
        assert_eq!(ops.tsdb().latest("store_cache_entries", 1.0, 2.0), Some(3.0));
        // ...and the rule fired off the merged view (rate 100/s > 5).
        assert_eq!(
            ops.alerts().states()[0].phase,
            obs::alerts::Phase::Firing,
            "{}",
            ops.alerts_json()
        );
        assert_eq!(
            server_reg.gauge("alerts_firing{rule=\"busy\"}").get(),
            1,
            "firing gauge exported to the server registry"
        );
    }

    #[test]
    fn label_member_rewrites_samples_and_drops_comments() {
        let exposition = "# HELP x y\n# TYPE x counter\nx 3\nhttp_requests_total{route=\"/a\",status=\"200\"} 7\n";
        let out = label_member(exposition, "node-b");
        assert_eq!(
            out,
            "x{member=\"node-b\"} 3\nhttp_requests_total{member=\"node-b\",route=\"/a\",status=\"200\"} 7\n"
        );
    }

    #[test]
    fn health_reports_ready_on_a_fresh_store() {
        let store = DocumentStore::new();
        let registry = Registry::new();
        let (ready, body) = health_json(&store, &registry);
        assert!(ready, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["live"], json!(true));
        assert_eq!(v["ready"], json!(true));
        assert_eq!(v["checks"]["backend_writable"]["ok"], json!(true));
        assert_eq!(v["checks"]["ledger_verified"]["ok"], json!(true));
    }

    #[test]
    fn single_node_cluster_json_reports_self_only() {
        let store = DocumentStore::new();
        let registry = Registry::new();
        registry.counter("up_total").inc();
        let body = cluster_json(&store, &registry, None, &registry.render_prometheus());
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["self"], json!("self"));
        assert_eq!(v["ok"], json!(true));
        assert_eq!(v["members"].as_array().unwrap().len(), 1);
        assert!(v["metrics"]
            .as_str()
            .unwrap()
            .contains("up_total{member=\"self\"} 1"));
    }
}
