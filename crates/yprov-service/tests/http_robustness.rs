//! Robustness of the hand-rolled HTTP server: malformed requests,
//! garbage bytes and abrupt disconnects must never take the service
//! down — after every abuse, a well-formed request still succeeds.

use std::io::Write as _;
use std::net::TcpStream;
use yprov_service::http::request;
use yprov_service::{DocumentStore, Server, ServerConfig};

fn start() -> Server {
    Server::bind("127.0.0.1:0", DocumentStore::new(), ServerConfig::default()).unwrap()
}

fn assert_alive(server: &Server) {
    let (status, body) = request(server.addr(), "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "server died: {body}");
}

#[test]
fn survives_malformed_request_lines() {
    let server = start();
    for garbage in [
        "",
        "\r\n",
        "GET\r\n\r\n",
        "GET /healthz\r\n\r\n",
        "GET /healthz SPDY/99\r\n\r\n",
        "POST /api/v0/documents HTTP/1.1\r\nContent-Length: notanumber\r\n\r\n",
        "GET /healthz HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort", // body shorter than declared
    ] {
        if let Ok(mut s) = TcpStream::connect(server.addr()) {
            let _ = s.write_all(garbage.as_bytes());
            // Drop without reading the response.
        }
        assert_alive(&server);
    }
    server.shutdown();
}

#[test]
fn survives_binary_garbage() {
    let server = start();
    let mut x = 0x1234_5678_9ABC_DEF0u64;
    for _ in 0..20 {
        let blob: Vec<u8> = (0..200)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 40) as u8
            })
            .collect();
        if let Ok(mut s) = TcpStream::connect(server.addr()) {
            let _ = s.write_all(&blob);
        }
    }
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn rejects_oversized_bodies_without_dying() {
    let server = Server::bind(
        "127.0.0.1:0",
        DocumentStore::new(),
        ServerConfig {
            workers: 2,
            max_body: 1024,
            ..Default::default()
        },
    )
    .unwrap();
    let big = "x".repeat(10_000);
    // The server refuses before reading the body, so the client may see
    // either a clean 400 or a connection reset mid-upload — both are
    // acceptable refusals; crashing the server is not.
    match request(server.addr(), "POST", "/api/v0/documents", Some(&big)) {
        Ok((status, _)) => assert_eq!(status, 400),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
            ),
            "unexpected error: {e}"
        ),
    }
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn survives_abrupt_disconnect_mid_body() {
    let server = start();
    for _ in 0..5 {
        if let Ok(mut s) = TcpStream::connect(server.addr()) {
            // Declare a big body, send a fragment, hang up.
            let _ = s.write_all(
                b"POST /api/v0/documents HTTP/1.1\r\nContent-Length: 100000\r\n\r\n{\"pre",
            );
            drop(s);
        }
    }
    // Workers blocked on the dead sockets time out; the pool recovers.
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn many_sequential_clients_do_not_exhaust_the_pool() {
    let server = start();
    for i in 0..100 {
        let (status, _) = request(server.addr(), "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200, "request {i}");
    }
    server.shutdown();
}
