//! W3C trace-context propagation across the wire: the client stamps a
//! `traceparent` header derived from its open request span, the server
//! adopts it before opening the handler span, and both spans end up in
//! one trace — asserted on the real TCP path, not a mock.
//!
//! Lives in its own integration-test file so it owns the process-global
//! tracer without racing other tests.

use std::time::Duration;

use yprov_service::{Client, DocumentStore, RetryPolicy, Server, ServerConfig};

fn sample_doc_json() -> String {
    let mut doc = prov_model::ProvDocument::new();
    doc.namespaces_mut().register("ex", "http://ex/").unwrap();
    doc.entity(prov_model::QName::new("ex", "data"));
    doc.to_json_string().unwrap()
}

#[test]
fn server_handler_span_shares_the_clients_trace_id() {
    obs::trace::set_enabled(true);
    obs::trace::drain();
    obs::trace::set_trace_id(0x5EED_CAFE_F00D);

    let server =
        Server::bind("127.0.0.1:0", DocumentStore::new(), ServerConfig::default()).unwrap();
    let client = Client::new(
        server.addr(),
        RetryPolicy {
            max_attempts: 2,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(40),
            request_timeout: Duration::from_secs(5),
            jitter_seed: 1,
        },
    );
    let resp = client.upload_document(&sample_doc_json()).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body);
    server.shutdown();

    let spans = obs::trace::drain();
    obs::trace::set_enabled(false);
    obs::trace::set_trace_id(0);

    let request = spans
        .iter()
        .find(|s| s.name == "http_request")
        .expect("client records a request span");
    let handler = spans
        .iter()
        .find(|s| s.name == "handle_request")
        .expect("server records a handler span");
    assert_eq!(
        handler.trace_id, request.trace_id,
        "handler joined the client's trace"
    );
    assert_eq!(
        handler.parent, request.id,
        "handler span is parented to the request span"
    );
    assert_ne!(
        handler.track, request.track,
        "recorded on different threads"
    );
    assert!(handler
        .args
        .iter()
        .any(|(k, v)| k == "path" && v == "/api/v0/documents"));
}
