//! The event-loop core's new behaviors: keep-alive reuse, pipelined
//! ordering, adversarial clients (slowloris, half-close), graceful
//! drain, watermark shedding, and the `server_*` metrics.
//!
//! Byte-level compatibility with the old blocking core (431/501/503
//! bodies, error strings) is covered by `http_robustness.rs`, which
//! runs against the same default event-loop core.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;
use yprov_service::http::request;
use yprov_service::{DocumentStore, Server, ServerConfig, ServerCore};

fn start(config: ServerConfig) -> Server {
    Server::bind("127.0.0.1:0", DocumentStore::new(), config).unwrap()
}

/// Connects with generous socket timeouts so a server bug fails the
/// test instead of hanging it.
fn connect(server: &Server) -> TcpStream {
    let s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

/// Reads one `Content-Length`-framed response; returns
/// `(status, head, body)`. Panics on a closed or reset connection.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String, String) {
    let mut head = String::new();
    loop {
        let start = head.len();
        let n = reader.read_line(&mut head).unwrap();
        assert!(n > 0, "connection closed mid-head; got {head:?}");
        if head[start..].trim_end().is_empty() {
            break;
        }
    }
    let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    let content_length = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            if name.eq_ignore_ascii_case("content-length") {
                value.trim().parse::<usize>().ok()
            } else {
                None
            }
        })
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, head, String::from_utf8_lossy(&body).into_owned())
}

fn header(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|line| {
        let (n, v) = line.split_once(':')?;
        if n.eq_ignore_ascii_case(name) {
            Some(v.trim().to_string())
        } else {
            None
        }
    })
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = start(ServerConfig::default());
    let stream = connect(&server);
    let mut reader = BufReader::new(stream);
    for i in 0..5 {
        reader
            .get_mut()
            .write_all(b"GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")
            .unwrap();
        let (status, head, body) = read_response(&mut reader);
        assert_eq!(status, 200, "request {i}: {body}");
        assert_eq!(
            header(&head, "connection").as_deref(),
            Some("keep-alive"),
            "request {i} should keep the connection open: {head}"
        );
    }
    // Without the opt-in header the server answers and closes, exactly
    // like the one-shot core.
    reader
        .get_mut()
        .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
        .unwrap();
    let (status, head, _) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(header(&head, "connection").as_deref(), Some("close"));
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "no bytes may follow the final response");
    server.shutdown();
}

#[test]
fn pipelined_burst_is_answered_in_order() {
    let server = start(ServerConfig::default());
    let stream = connect(&server);
    let mut reader = BufReader::new(stream);
    // Three requests in a single write; responses must come back in
    // request order even though handlers run on a worker pool.
    reader
        .get_mut()
        .write_all(
            b"GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n\
              GET /api/v0/documents HTTP/1.1\r\nConnection: keep-alive\r\n\r\n\
              GET /metrics HTTP/1.1\r\nConnection: keep-alive\r\n\r\n",
        )
        .unwrap();
    let (status, _, body) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(body.contains("ok"), "healthz first: {body}");
    let (status, _, body) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(body.contains("documents"), "document list second: {body}");
    let (status, head, body) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(
        header(&head, "content-type").is_some_and(|ct| ct.starts_with("text/plain")),
        "metrics third: {head}"
    );
    // The second and third request arrived while earlier ones were
    // still queued, so the pipelining counter must have moved.
    let pipelined = body
        .lines()
        .find_map(|l| l.strip_prefix("server_requests_pipelined_total "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0);
    assert!(pipelined >= 1, "pipelined counter missing:\n{body}");
    server.shutdown();
}

#[test]
fn pipelined_burst_beyond_the_pipeline_cap_fully_drains() {
    // 100 requests in one write — more than the 64-request pipelining
    // cap. The whole burst lands in the reactor's first read, so the
    // socket never turns readable again: the requests parked behind the
    // cap must be parsed when backpressure clears, not stranded until
    // the read timeout rejects them.
    let server = start(ServerConfig::default());
    let stream = connect(&server);
    let mut reader = BufReader::new(stream);
    let burst: String = (0..100)
        .map(|_| "GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")
        .collect();
    reader.get_mut().write_all(burst.as_bytes()).unwrap();
    for i in 0..100 {
        let (status, _, body) = read_response(&mut reader);
        assert_eq!(status, 200, "request {i}: {body}");
    }
    server.shutdown();
}

#[test]
fn parse_error_waits_its_turn_behind_pipelined_responses() {
    // A good request and a malformed one arrive in one burst. The 400
    // answers the *second* request, so it must come back second — a
    // pipelining client correlates responses strictly by order.
    let server = start(ServerConfig::default());
    let stream = connect(&server);
    let mut reader = BufReader::new(stream);
    reader
        .get_mut()
        .write_all(
            b"GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n\
              BOGUS /nope\r\n\r\n",
        )
        .unwrap();
    let (status, _, body) = read_response(&mut reader);
    assert_eq!(status, 200, "the good request answers first: {body}");
    assert!(body.contains("ok"), "{body}");
    let (status, head, body) = read_response(&mut reader);
    assert_eq!(status, 400, "then the rejection: {body}");
    assert!(body.contains("missing version"), "{body}");
    assert_eq!(header(&head, "connection").as_deref(), Some("close"));
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(
        rest.is_empty(),
        "nothing may follow the rejection: {rest:?}"
    );
    server.shutdown();
}

#[test]
fn slowloris_times_out_without_pinning_the_worker() {
    let server = start(ServerConfig {
        workers: 1,
        read_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    // A peer that sends a request head one fragment at a time and then
    // stalls forever.
    let mut slow = connect(&server);
    slow.write_all(b"GET /slow HTTP/1.1\r\nX-Dribble: 1\r\n")
        .unwrap();
    // The single worker must keep serving other clients meanwhile.
    for _ in 0..5 {
        let (status, body) = request(server.addr(), "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200, "worker pinned by slowloris: {body}");
    }
    // The stalled connection is rejected once the read timeout lapses.
    let mut answer = String::new();
    slow.read_to_string(&mut answer).unwrap();
    assert!(answer.starts_with("HTTP/1.1 400"), "{answer}");
    assert!(answer.contains("timed out"), "{answer}");
    server.shutdown();
}

#[test]
fn half_close_mid_body_is_rejected_as_short_body() {
    let server = start(ServerConfig::default());
    let mut stream = connect(&server);
    stream
        .write_all(b"POST /api/v0/documents HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"tru")
        .unwrap();
    // FIN our write side: the server sees EOF with 95 body bytes
    // outstanding and must answer (the response direction is open).
    stream.shutdown(Shutdown::Write).unwrap();
    let mut answer = String::new();
    stream.read_to_string(&mut answer).unwrap();
    assert!(answer.starts_with("HTTP/1.1 400"), "{answer}");
    assert!(answer.contains("short body"), "{answer}");
    server.shutdown();
}

#[test]
fn graceful_stop_drains_a_mid_flight_response_without_reset() {
    // A document big enough that its response cannot hide in socket
    // buffers: the drain has to keep streaming it after stop().
    let mut doc = prov_model::ProvDocument::new();
    doc.namespaces_mut().register("ex", "http://ex/").unwrap();
    for i in 0..20_000 {
        doc.entity(prov_model::QName::new("ex", format!("entity-{i:05}")));
    }
    let server = start(ServerConfig::default());
    let (status, upload) = request(
        server.addr(),
        "POST",
        "/api/v0/documents",
        Some(&doc.to_json_string().unwrap()),
    )
    .unwrap();
    assert_eq!(status, 201, "{upload}");
    let id: serde_json::Value = serde_json::from_str(&upload).unwrap();
    let id = id["id"].as_str().unwrap().to_string();

    let stream = connect(&server);
    let mut reader = BufReader::new(stream);
    reader
        .get_mut()
        .write_all(
            format!("GET /api/v0/documents/{id} HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
    // Let the reactor parse and dispatch the request, then stop the
    // server while the (unread) response is still in flight.
    std::thread::sleep(Duration::from_millis(300));
    let stopper = std::thread::spawn(move || server.shutdown());
    let (status, _, body) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(
        body.contains("entity-19999"),
        "response truncated by shutdown: {} bytes",
        body.len()
    );
    // A clean FIN, not an RST: further reads see EOF, not an error.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    stopper.join().unwrap();
}

#[test]
fn connection_watermark_sheds_with_503_and_counts_it() {
    let server = start(ServerConfig {
        workers: 1,
        queue_depth: 0, // admission watermark: exactly one connection
        ..ServerConfig::default()
    });
    let parked = connect(&server);
    std::thread::sleep(Duration::from_millis(100)); // let the accept land
    let stream = connect(&server);
    let mut reader = BufReader::new(stream);
    reader
        .get_mut()
        .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
        .unwrap();
    let (status, head, body) = read_response(&mut reader);
    assert_eq!(status, 503, "{body}");
    assert_eq!(header(&head, "retry-after").as_deref(), Some("1"));
    assert_eq!(header(&head, "connection").as_deref(), Some("close"));
    assert!(body.contains("overloaded"), "{body}");
    drop(parked);
    std::thread::sleep(Duration::from_millis(200)); // let the close land
    let (status, metrics) = request(server.addr(), "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    for needle in [
        "# HELP server_connections_open ",
        "# HELP server_connections_accepted_total ",
        "# HELP server_requests_pipelined_total ",
        "# HELP server_shed_total ",
        "server_shed_total{reason=\"connections\"} 1",
    ] {
        assert!(
            metrics.contains(needle),
            "missing {needle:?} in:\n{metrics}"
        );
    }
    server.shutdown();
}

#[test]
fn reactor_loop_metrics_surface_in_the_scrape() {
    let server = start(ServerConfig::default());
    // A few served requests guarantee the reactor loop has spun and
    // recorded at least one lag sample and a queue-depth level.
    for _ in 0..3 {
        let (status, _) = request(server.addr(), "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
    }
    let (status, metrics) = request(server.addr(), "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    for needle in [
        "# HELP reactor_loop_lag_seconds ",
        "# TYPE reactor_loop_lag_seconds histogram",
        "# HELP reactor_queued_jobs ",
        "# TYPE reactor_queued_jobs gauge",
        "# HELP reactor_queued_bytes ",
        "# TYPE reactor_queued_bytes gauge",
    ] {
        assert!(metrics.contains(needle), "missing {needle:?} in:\n{metrics}");
    }
    let lag_count = metrics
        .lines()
        .find_map(|l| l.strip_prefix("reactor_loop_lag_seconds_count "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0);
    assert!(lag_count >= 1, "loop lag never recorded:\n{metrics}");
    // Nothing is in flight at scrape time, so the gauge reads a level
    // (zero), not garbage.
    assert!(
        metrics.contains("reactor_queued_jobs 0") || metrics.contains("reactor_queued_jobs 1"),
        "queued-jobs gauge missing or implausible:\n{metrics}"
    );
    server.shutdown();
}

#[test]
fn idle_keep_alive_connection_is_reaped() {
    let server = start(ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let stream = connect(&server);
    let mut reader = BufReader::new(stream);
    reader
        .get_mut()
        .write_all(b"GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")
        .unwrap();
    let (status, _, _) = read_response(&mut reader);
    assert_eq!(status, 200);
    // Served once, then silent: the server closes without a response
    // (reading just sees EOF) once the idle timeout lapses.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "idle reap must be silent: {rest:?}");
    server.shutdown();
}

#[test]
fn parked_watch_outlives_the_idle_reaper() {
    // A long-poll watch parks far longer than the idle timeout. The
    // sweep must not reap it while parked (it is in flight, not idle),
    // and after the response lands the idle clock must restart — a
    // regression guard for the sweep judging quiet time from the last
    // *read* instead of the last activity.
    let store = DocumentStore::new();
    let server = Server::bind(
        "127.0.0.1:0",
        store,
        ServerConfig {
            idle_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut doc = prov_model::ProvDocument::new();
    doc.namespaces_mut().register("ex", "http://ex/").unwrap();
    doc.entity(prov_model::QName::new("ex", "data"));
    let (status, upload) = request(
        server.addr(),
        "POST",
        "/api/v0/documents",
        Some(&doc.to_json_string().unwrap()),
    )
    .unwrap();
    assert_eq!(status, 201, "{upload}");
    let id: serde_json::Value = serde_json::from_str(&upload).unwrap();
    let id = id["id"].as_str().unwrap().to_string();

    let stream = connect(&server);
    let mut reader = BufReader::new(stream);
    // Serve once so the connection is reap-eligible, then park a watch
    // for up to 2 s — ten times the idle timeout.
    reader
        .get_mut()
        .write_all(b"GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")
        .unwrap();
    let (status, _, _) = read_response(&mut reader);
    assert_eq!(status, 200);
    reader
        .get_mut()
        .write_all(
            format!(
                "GET /api/v0/documents/{id}/watch?after=1&timeout_ms=2000 HTTP/1.1\r\n\
                 Connection: keep-alive\r\n\r\n"
            )
            .as_bytes(),
        )
        .unwrap();

    // Stay parked well past the idle timeout, then merge a delta.
    std::thread::sleep(Duration::from_millis(600));
    let mut delta = prov_model::ProvDocument::new();
    delta.namespaces_mut().register("ex", "http://ex/").unwrap();
    delta.entity(prov_model::QName::new("ex", "extra"));
    let (status, merged) = request(
        server.addr(),
        "POST",
        &format!("/api/v0/documents/{id}/deltas"),
        Some(&delta.to_json_string().unwrap()),
    )
    .unwrap();
    assert_eq!(status, 200, "{merged}");

    // The parked watch gets its event instead of a silent reap.
    let (status, _, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"changed\":true"), "{body}");
    assert!(body.contains("\"version\":2"), "{body}");

    // The idle clock restarted at the response: after a pause shorter
    // than the timeout (but long enough for a sweep tick), the
    // connection still serves.
    std::thread::sleep(Duration::from_millis(120));
    reader
        .get_mut()
        .write_all(b"GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")
        .unwrap();
    let (status, _, _) = read_response(&mut reader);
    assert_eq!(status, 200, "connection reaped despite fresh activity");
    server.shutdown();
}

#[test]
fn threaded_core_remains_selectable_as_baseline() {
    let server = start(ServerConfig {
        core: ServerCore::Threaded,
        ..ServerConfig::default()
    });
    let (status, body) = request(server.addr(), "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "{body}");
    server.shutdown();
}
