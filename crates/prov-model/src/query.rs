//! Typed intermediate representation (IR) for lineage queries, with its
//! JSON wire form.
//!
//! A [`PathQuery`] is a path pattern over the provenance graph: a
//! *start* [`ElementFilter`] selecting the anchor nodes, followed by a
//! sequence of [`Step`]s, each of which walks edges of the given
//! [`RelationKind`]s in one [`StepDirection`] under a [`Repeat`]
//! quantifier and lands on nodes matching a *target* filter. The
//! textbook example
//!
//! ```text
//! entity ->(wasDerivedFrom|used)* activity
//! ```
//!
//! is expressed as
//!
//! ```json
//! {
//!   "start": {"kind": "entity"},
//!   "steps": [{
//!     "rels": ["wasDerivedFrom", "used"],
//!     "dir": "backward",
//!     "repeat": "+",
//!     "target": {"kind": "activity"}
//!   }]
//! }
//! ```
//!
//! The IR lives here (not in `prov-graph`) so producers, the service and
//! clients share one serialized form; planning and execution live in
//! `prov-graph::engine`. Identifiers and attribute keys travel as
//! `"prefix:local"` strings and are parsed with [`QName::parse`].
//!
//! Filter objects AND their clauses together; `{}` matches everything.
//! Explicit `anyOf` / `not` clauses provide disjunction and negation.

use crate::error::ProvError;
use crate::qname::QName;
use crate::record::{Element, ElementKind};
use crate::relation::RelationKind;
use serde_json::{json, Map, Value};

/// A predicate over graph nodes (declared elements or dangling
/// references). All clauses of a filter must hold.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ElementFilter {
    /// Restrict to one element kind. Dangling references (nodes that
    /// only appear inside relations) have no kind and never match.
    pub kind: Option<ElementKind>,
    /// Exact identifier match.
    pub id: Option<QName>,
    /// Identifier's local part contains this substring.
    pub id_contains: Option<String>,
    /// Element carries this `prov:type`.
    pub type_is: Option<QName>,
    /// Element has at least one value under this attribute key.
    pub has_attr: Option<QName>,
    /// Some value under the key equals the string (lexical comparison,
    /// so `"0.5"` matches `AttrValue::Double(0.5)`).
    pub attr_equals: Option<(QName, String)>,
    /// Some numeric value under the key is strictly below the bound.
    pub attr_lt: Option<(QName, f64)>,
    /// Some numeric value under the key is strictly above the bound.
    pub attr_gt: Option<(QName, f64)>,
    /// At least one sub-filter matches (disjunction).
    pub any_of: Vec<ElementFilter>,
    /// The sub-filter must not match (negation).
    pub not: Option<Box<ElementFilter>>,
}

impl ElementFilter {
    /// The match-everything filter (`{}` on the wire).
    pub fn any() -> Self {
        ElementFilter::default()
    }

    /// Filter matching exactly one identifier.
    pub fn by_id(id: QName) -> Self {
        ElementFilter {
            id: Some(id),
            ..Default::default()
        }
    }

    /// Filter matching one element kind.
    pub fn by_kind(kind: ElementKind) -> Self {
        ElementFilter {
            kind: Some(kind),
            ..Default::default()
        }
    }

    /// Filter matching elements with the given `prov:type`.
    pub fn by_type(ty: QName) -> Self {
        ElementFilter {
            type_is: Some(ty),
            ..Default::default()
        }
    }

    /// True when this filter can only ever match the single identifier
    /// it names — the planner's strongest selectivity signal.
    pub fn is_single_id(&self) -> bool {
        self.id.is_some()
    }

    /// Evaluates the filter against a node. `element` is `None` for
    /// dangling references, which match only the unconstrained clauses
    /// (`id` / `id_contains` / `not` / `any_of` that themselves pass).
    pub fn matches(&self, id: &QName, element: Option<&Element>) -> bool {
        if let Some(want) = &self.id {
            if want != id {
                return false;
            }
        }
        if let Some(sub) = &self.id_contains {
            if !id.local().contains(sub.as_str()) {
                return false;
            }
        }
        if let Some(kind) = self.kind {
            if element.map(|e| e.kind) != Some(kind) {
                return false;
            }
        }
        if let Some(ty) = &self.type_is {
            if !element.is_some_and(|e| e.has_type(ty)) {
                return false;
            }
        }
        if let Some(key) = &self.has_attr {
            if !element.is_some_and(|e| !e.attrs(key).is_empty()) {
                return false;
            }
        }
        if let Some((key, want)) = &self.attr_equals {
            let hit = element.is_some_and(|e| e.attrs(key).iter().any(|v| v.lexical() == *want));
            if !hit {
                return false;
            }
        }
        if let Some((key, bound)) = &self.attr_lt {
            let hit = element.is_some_and(|e| {
                e.attrs(key)
                    .iter()
                    .any(|v| v.as_f64().is_some_and(|x| x < *bound))
            });
            if !hit {
                return false;
            }
        }
        if let Some((key, bound)) = &self.attr_gt {
            let hit = element.is_some_and(|e| {
                e.attrs(key)
                    .iter()
                    .any(|v| v.as_f64().is_some_and(|x| x > *bound))
            });
            if !hit {
                return false;
            }
        }
        if !self.any_of.is_empty() && !self.any_of.iter().any(|f| f.matches(id, element)) {
            return false;
        }
        if let Some(inner) = &self.not {
            if inner.matches(id, element) {
                return false;
            }
        }
        true
    }

    /// The JSON wire form (object with one key per set clause).
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        if let Some(kind) = self.kind {
            obj.insert("kind".into(), json!(kind_str(kind)));
        }
        if let Some(id) = &self.id {
            obj.insert("id".into(), json!(id.to_string()));
        }
        if let Some(s) = &self.id_contains {
            obj.insert("idContains".into(), json!(s));
        }
        if let Some(ty) = &self.type_is {
            obj.insert("typeIs".into(), json!(ty.to_string()));
        }
        if let Some(key) = &self.has_attr {
            obj.insert("hasAttr".into(), json!(key.to_string()));
        }
        if let Some((key, value)) = &self.attr_equals {
            obj.insert(
                "attrEquals".into(),
                json!({"key": key.to_string(), "value": value}),
            );
        }
        if let Some((key, bound)) = &self.attr_lt {
            obj.insert(
                "attrLt".into(),
                json!({"key": key.to_string(), "value": bound}),
            );
        }
        if let Some((key, bound)) = &self.attr_gt {
            obj.insert(
                "attrGt".into(),
                json!({"key": key.to_string(), "value": bound}),
            );
        }
        if !self.any_of.is_empty() {
            obj.insert(
                "anyOf".into(),
                Value::Array(self.any_of.iter().map(|f| f.to_json()).collect()),
            );
        }
        if let Some(inner) = &self.not {
            obj.insert("not".into(), inner.to_json());
        }
        Value::Object(obj)
    }

    /// Parses the wire form, rejecting unknown clauses so typos fail
    /// loudly instead of silently matching everything.
    pub fn from_json(v: &Value) -> Result<Self, ProvError> {
        let obj = v
            .as_object()
            .ok_or_else(|| ProvError::Structure("element filter must be a JSON object".into()))?;
        let mut filter = ElementFilter::default();
        for (key, value) in obj {
            match key.as_str() {
                "kind" => filter.kind = Some(parse_kind(expect_str(value, "kind")?)?),
                "id" => filter.id = Some(QName::parse(expect_str(value, "id")?)?),
                "idContains" => {
                    filter.id_contains = Some(expect_str(value, "idContains")?.to_string())
                }
                "typeIs" => filter.type_is = Some(QName::parse(expect_str(value, "typeIs")?)?),
                "hasAttr" => filter.has_attr = Some(QName::parse(expect_str(value, "hasAttr")?)?),
                "attrEquals" => {
                    let (k, v) = attr_pair(value)?;
                    let s = v
                        .as_str()
                        .map(str::to_string)
                        .unwrap_or_else(|| v.to_string());
                    filter.attr_equals = Some((k, s));
                }
                "attrLt" => {
                    let (k, v) = attr_pair(value)?;
                    filter.attr_lt = Some((k, expect_f64(&v, "attrLt.value")?));
                }
                "attrGt" => {
                    let (k, v) = attr_pair(value)?;
                    filter.attr_gt = Some((k, expect_f64(&v, "attrGt.value")?));
                }
                "anyOf" => {
                    let arr = value.as_array().ok_or_else(|| {
                        ProvError::Structure("\"anyOf\" must be an array of filters".into())
                    })?;
                    filter.any_of = arr
                        .iter()
                        .map(ElementFilter::from_json)
                        .collect::<Result<_, _>>()?;
                }
                "not" => filter.not = Some(Box::new(ElementFilter::from_json(value)?)),
                other => {
                    return Err(ProvError::Structure(format!(
                        "unknown element-filter clause {other:?}"
                    )))
                }
            }
        }
        Ok(filter)
    }
}

/// Direction of travel along relation edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepDirection {
    /// Subject → object: towards origins / ancestors (e.g. from a model
    /// to the data it was derived from).
    #[default]
    Forward,
    /// Object → subject: towards dependents / descendants (e.g. from a
    /// dataset to everything trained on it).
    Backward,
}

impl StepDirection {
    /// The opposite direction — what a plan executing the pattern from
    /// its far end walks.
    pub fn flipped(self) -> Self {
        match self {
            StepDirection::Forward => StepDirection::Backward,
            StepDirection::Backward => StepDirection::Forward,
        }
    }
}

/// How many times a step's edge walk repeats: `min..=max` hops, with
/// `max = None` meaning unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repeat {
    /// Minimum number of hops (0 lets the step match its own start).
    pub min: usize,
    /// Maximum number of hops, unbounded when `None`.
    pub max: Option<usize>,
}

impl Repeat {
    /// Exactly one hop — the default when the wire form omits `repeat`.
    pub fn once() -> Self {
        Repeat {
            min: 1,
            max: Some(1),
        }
    }

    /// Zero or more hops (`*`).
    pub fn star() -> Self {
        Repeat { min: 0, max: None }
    }

    /// One or more hops (`+`).
    pub fn plus() -> Self {
        Repeat { min: 1, max: None }
    }

    /// At most `n` hops, including zero (`{0,n}`).
    pub fn at_most(n: usize) -> Self {
        Repeat {
            min: 0,
            max: Some(n),
        }
    }
}

impl Default for Repeat {
    fn default() -> Self {
        Repeat::once()
    }
}

/// One step of a path pattern: walk edges of the allowed kinds in one
/// direction, `repeat` times, landing on nodes matching `target`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Step {
    /// Relation kinds the walk may traverse; empty means any kind.
    pub kinds: Vec<RelationKind>,
    /// Direction of travel.
    pub direction: StepDirection,
    /// Hop quantifier.
    pub repeat: Repeat,
    /// Filter the landing nodes must satisfy.
    pub target: ElementFilter,
}

impl Step {
    /// The JSON wire form.
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        if !self.kinds.is_empty() {
            obj.insert(
                "rels".into(),
                Value::Array(self.kinds.iter().map(|k| json!(k.json_key())).collect()),
            );
        }
        obj.insert(
            "dir".into(),
            json!(match self.direction {
                StepDirection::Forward => "forward",
                StepDirection::Backward => "backward",
            }),
        );
        obj.insert("repeat".into(), repeat_to_json(self.repeat));
        obj.insert("target".into(), self.target.to_json());
        Value::Object(obj)
    }

    /// Parses the wire form.
    pub fn from_json(v: &Value) -> Result<Self, ProvError> {
        let obj = v
            .as_object()
            .ok_or_else(|| ProvError::Structure("step must be a JSON object".into()))?;
        let mut step = Step::default();
        for (key, value) in obj {
            match key.as_str() {
                "rels" => {
                    let arr = value.as_array().ok_or_else(|| {
                        ProvError::Structure("\"rels\" must be an array of relation kinds".into())
                    })?;
                    step.kinds = arr
                        .iter()
                        .map(|k| {
                            let name = expect_str(k, "rels entry")?;
                            RelationKind::from_json_key(name).ok_or_else(|| {
                                ProvError::Structure(format!("unknown relation kind {name:?}"))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                }
                "dir" => {
                    step.direction = match expect_str(value, "dir")? {
                        "forward" => StepDirection::Forward,
                        "backward" => StepDirection::Backward,
                        other => {
                            return Err(ProvError::Structure(format!(
                                "direction must be \"forward\" or \"backward\", got {other:?}"
                            )))
                        }
                    }
                }
                "repeat" => step.repeat = repeat_from_json(value)?,
                "target" => step.target = ElementFilter::from_json(value)?,
                other => {
                    return Err(ProvError::Structure(format!(
                        "unknown step clause {other:?}"
                    )))
                }
            }
        }
        Ok(step)
    }
}

/// A full path pattern: anchor filter plus steps.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PathQuery {
    /// Filter selecting the anchor (start) nodes.
    pub start: ElementFilter,
    /// Steps walked from each anchor, in order.
    pub steps: Vec<Step>,
    /// Cap on the number of `(start, end)` rows returned.
    pub limit: Option<usize>,
}

impl PathQuery {
    /// The JSON wire form.
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("start".into(), self.start.to_json());
        obj.insert(
            "steps".into(),
            Value::Array(self.steps.iter().map(|s| s.to_json()).collect()),
        );
        if let Some(limit) = self.limit {
            obj.insert("limit".into(), json!(limit));
        }
        Value::Object(obj)
    }

    /// Parses the wire form.
    pub fn from_json(v: &Value) -> Result<Self, ProvError> {
        let obj = v
            .as_object()
            .ok_or_else(|| ProvError::Structure("query must be a JSON object".into()))?;
        let mut query = PathQuery::default();
        for (key, value) in obj {
            match key.as_str() {
                "start" => query.start = ElementFilter::from_json(value)?,
                "steps" => {
                    let arr = value
                        .as_array()
                        .ok_or_else(|| ProvError::Structure("\"steps\" must be an array".into()))?;
                    query.steps = arr.iter().map(Step::from_json).collect::<Result<_, _>>()?;
                }
                "limit" => {
                    let n = value.as_u64().ok_or_else(|| {
                        ProvError::Structure("\"limit\" must be a non-negative integer".into())
                    })?;
                    query.limit = Some(n as usize);
                }
                other => {
                    return Err(ProvError::Structure(format!(
                        "unknown query clause {other:?}"
                    )))
                }
            }
        }
        Ok(query)
    }

    /// Parses a query from a JSON string.
    pub fn from_json_str(s: &str) -> Result<Self, ProvError> {
        let v: Value = serde_json::from_str(s)?;
        PathQuery::from_json(&v)
    }
}

fn kind_str(kind: ElementKind) -> &'static str {
    match kind {
        ElementKind::Entity => "entity",
        ElementKind::Activity => "activity",
        ElementKind::Agent => "agent",
    }
}

fn parse_kind(s: &str) -> Result<ElementKind, ProvError> {
    match s {
        "entity" => Ok(ElementKind::Entity),
        "activity" => Ok(ElementKind::Activity),
        "agent" => Ok(ElementKind::Agent),
        other => Err(ProvError::Structure(format!(
            "element kind must be entity|activity|agent, got {other:?}"
        ))),
    }
}

fn expect_str<'a>(v: &'a Value, what: &str) -> Result<&'a str, ProvError> {
    v.as_str()
        .ok_or_else(|| ProvError::Structure(format!("{what} must be a JSON string")))
}

fn expect_f64(v: &Value, what: &str) -> Result<f64, ProvError> {
    v.as_f64()
        .ok_or_else(|| ProvError::Structure(format!("{what} must be a JSON number")))
}

fn attr_pair(v: &Value) -> Result<(QName, Value), ProvError> {
    let obj = v
        .as_object()
        .ok_or_else(|| ProvError::Structure("attribute clause must be {key, value}".into()))?;
    let key = obj
        .get("key")
        .and_then(|k| k.as_str())
        .ok_or_else(|| ProvError::Structure("attribute clause is missing \"key\"".into()))?;
    let value = obj
        .get("value")
        .cloned()
        .ok_or_else(|| ProvError::Structure("attribute clause is missing \"value\"".into()))?;
    Ok((QName::parse(key)?, value))
}

fn repeat_to_json(r: Repeat) -> Value {
    match (r.min, r.max) {
        (1, Some(1)) => json!("1"),
        (0, None) => json!("*"),
        (1, None) => json!("+"),
        (0, Some(1)) => json!("?"),
        (min, Some(max)) => json!({"min": min, "max": max}),
        (min, None) => json!({"min": min}),
    }
}

fn repeat_from_json(v: &Value) -> Result<Repeat, ProvError> {
    match v {
        Value::String(s) => match s.as_str() {
            "1" => Ok(Repeat::once()),
            "*" => Ok(Repeat::star()),
            "+" => Ok(Repeat::plus()),
            "?" => Ok(Repeat {
                min: 0,
                max: Some(1),
            }),
            other => Err(ProvError::Structure(format!(
                "repeat must be \"1\", \"*\", \"+\", \"?\" or {{min,max}}, got {other:?}"
            ))),
        },
        Value::Number(n) => {
            let n = n.as_u64().ok_or_else(|| {
                ProvError::Structure("numeric repeat must be a non-negative integer".into())
            })? as usize;
            Ok(Repeat {
                min: n,
                max: Some(n),
            })
        }
        Value::Object(obj) => {
            let min = match obj.get("min") {
                Some(m) => m.as_u64().ok_or_else(|| {
                    ProvError::Structure("repeat \"min\" must be a non-negative integer".into())
                })? as usize,
                None => 0,
            };
            let max = match obj.get("max") {
                Some(m) => Some(m.as_u64().ok_or_else(|| {
                    ProvError::Structure("repeat \"max\" must be a non-negative integer".into())
                })? as usize),
                None => None,
            };
            if let Some(max) = max {
                if max < min {
                    return Err(ProvError::Structure(format!(
                        "repeat max ({max}) below min ({min})"
                    )));
                }
            }
            Ok(Repeat { min, max })
        }
        _ => Err(ProvError::Structure(
            "repeat must be a string, number or {min,max} object".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::ProvDocument;
    use crate::value::AttrValue;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    fn doc() -> ProvDocument {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("model"))
            .prov_type(q("Model"))
            .attr(q("loss"), AttrValue::Double(0.25))
            .attr(q("split"), AttrValue::String("test".into()));
        doc.activity(q("train"));
        doc
    }

    #[test]
    fn filter_matches_clauses() {
        let d = doc();
        let model = d.get(&q("model"));
        let f = ElementFilter {
            kind: Some(ElementKind::Entity),
            type_is: Some(q("Model")),
            attr_lt: Some((q("loss"), 0.5)),
            attr_equals: Some((q("split"), "test".into())),
            ..Default::default()
        };
        assert!(f.matches(&q("model"), model));
        assert!(!f.matches(&q("train"), d.get(&q("train"))));
        // Dangling references only match unconstrained clauses.
        assert!(!f.matches(&q("ghost"), None));
        assert!(ElementFilter::any().matches(&q("ghost"), None));
    }

    #[test]
    fn filter_disjunction_and_negation() {
        let d = doc();
        let f = ElementFilter {
            any_of: vec![
                ElementFilter::by_id(q("nope")),
                ElementFilter::by_kind(ElementKind::Activity),
            ],
            ..Default::default()
        };
        assert!(f.matches(&q("train"), d.get(&q("train"))));
        assert!(!f.matches(&q("model"), d.get(&q("model"))));
        let f = ElementFilter {
            not: Some(Box::new(ElementFilter::by_kind(ElementKind::Activity))),
            ..Default::default()
        };
        assert!(f.matches(&q("model"), d.get(&q("model"))));
        assert!(!f.matches(&q("train"), d.get(&q("train"))));
    }

    #[test]
    fn query_round_trips_through_json() {
        let query = PathQuery {
            start: ElementFilter {
                kind: Some(ElementKind::Entity),
                attr_equals: Some((q("split"), "test".into())),
                ..Default::default()
            },
            steps: vec![Step {
                kinds: vec![RelationKind::WasDerivedFrom, RelationKind::Used],
                direction: StepDirection::Backward,
                repeat: Repeat::plus(),
                target: ElementFilter {
                    kind: Some(ElementKind::Activity),
                    id_contains: Some("train".into()),
                    ..Default::default()
                },
            }],
            limit: Some(10),
        };
        let json = query.to_json();
        let back = PathQuery::from_json(&json).unwrap();
        assert_eq!(query, back);
    }

    #[test]
    fn wire_form_parses_the_documented_example() {
        let query = PathQuery::from_json_str(
            r#"{
                "start": {"kind": "entity"},
                "steps": [{
                    "rels": ["wasDerivedFrom", "used"],
                    "dir": "backward",
                    "repeat": "*",
                    "target": {"kind": "activity"}
                }]
            }"#,
        )
        .unwrap();
        assert_eq!(query.steps.len(), 1);
        assert_eq!(query.steps[0].kinds.len(), 2);
        assert_eq!(query.steps[0].repeat, Repeat::star());
        assert_eq!(query.steps[0].direction, StepDirection::Backward);
    }

    #[test]
    fn repeat_forms() {
        for (text, want) in [
            ("\"*\"", Repeat::star()),
            ("\"+\"", Repeat::plus()),
            (
                "\"?\"",
                Repeat {
                    min: 0,
                    max: Some(1),
                },
            ),
            (
                "3",
                Repeat {
                    min: 3,
                    max: Some(3),
                },
            ),
            (
                "{\"min\": 2, \"max\": 5}",
                Repeat {
                    min: 2,
                    max: Some(5),
                },
            ),
            ("{\"min\": 2}", Repeat { min: 2, max: None }),
        ] {
            let v: Value = serde_json::from_str(text).unwrap();
            assert_eq!(repeat_from_json(&v).unwrap(), want, "{text}");
            // And back: the rendered form re-parses to the same repeat.
            let rendered = repeat_to_json(want);
            assert_eq!(repeat_from_json(&rendered).unwrap(), want);
        }
        let bad: Value = serde_json::from_str("{\"min\": 5, \"max\": 2}").unwrap();
        assert!(repeat_from_json(&bad).is_err());
    }

    #[test]
    fn unknown_clauses_are_rejected() {
        assert!(PathQuery::from_json_str(r#"{"strat": {}}"#).is_err());
        assert!(ElementFilter::from_json(&serde_json::json!({"knid": "entity"})).is_err());
        assert!(Step::from_json(&serde_json::json!({"dir": "sideways"})).is_err());
    }
}
