//! Typed attribute values.
//!
//! PROV attributes map qualified names to literal values. PROV-JSON
//! represents plain strings directly and typed literals as
//! `{"$": "...", "type": "xsd:..."}` objects; qualified-name values use
//! `"type": "prov:QUALIFIED_NAME"`.

use crate::datetime::XsdDateTime;
use crate::error::ProvError;
use crate::qname::QName;
use std::fmt;

/// A PROV attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// An untyped (plain) string.
    String(String),
    /// A string with a language tag (`{"$": ..., "lang": ...}`).
    LangString(String, String),
    /// An `xsd:long`/`xsd:int` style integer.
    Int(i64),
    /// An `xsd:double` floating point value.
    Double(f64),
    /// An `xsd:boolean`.
    Bool(bool),
    /// A qualified name (`prov:QUALIFIED_NAME` typed literal).
    QualifiedName(QName),
    /// An `xsd:dateTime` literal.
    DateTime(XsdDateTime),
    /// Any other typed literal, kept verbatim as (lexical form, datatype).
    Typed(String, QName),
}

impl AttrValue {
    /// The `xsd`/`prov` datatype name used in PROV-JSON, or `None` for a
    /// plain string.
    pub fn type_name(&self) -> Option<QName> {
        match self {
            AttrValue::String(_) | AttrValue::LangString(..) => None,
            AttrValue::Int(_) => Some(QName::xsd("long")),
            AttrValue::Double(_) => Some(QName::xsd("double")),
            AttrValue::Bool(_) => Some(QName::xsd("boolean")),
            AttrValue::QualifiedName(_) => Some(QName::prov("QUALIFIED_NAME")),
            AttrValue::DateTime(_) => Some(QName::xsd("dateTime")),
            AttrValue::Typed(_, t) => Some(t.clone()),
        }
    }

    /// The lexical form of the value (without datatype information).
    pub fn lexical(&self) -> String {
        match self {
            AttrValue::String(s) | AttrValue::LangString(s, _) => s.clone(),
            AttrValue::Int(i) => i.to_string(),
            AttrValue::Double(d) => format_double(*d),
            AttrValue::Bool(b) => b.to_string(),
            AttrValue::QualifiedName(q) => q.to_string(),
            AttrValue::DateTime(t) => t.to_string(),
            AttrValue::Typed(s, _) => s.clone(),
        }
    }

    /// Interprets a lexical form against a datatype name, producing the
    /// most specific [`AttrValue`] variant.
    pub fn from_lexical(lexical: &str, datatype: &QName) -> Result<AttrValue, ProvError> {
        let full = datatype.to_string();
        match full.as_str() {
            "xsd:string" => Ok(AttrValue::String(lexical.to_string())),
            "xsd:int"
            | "xsd:integer"
            | "xsd:long"
            | "xsd:short"
            | "xsd:byte"
            | "xsd:unsignedInt"
            | "xsd:unsignedLong"
            | "xsd:nonNegativeInteger" => lexical
                .parse::<i64>()
                .map(AttrValue::Int)
                .map_err(|_| ProvError::BadValue(format!("{lexical:?} is not an integer"))),
            "xsd:double" | "xsd:float" | "xsd:decimal" => parse_double(lexical)
                .map(AttrValue::Double)
                .ok_or_else(|| ProvError::BadValue(format!("{lexical:?} is not a double"))),
            "xsd:boolean" => match lexical {
                "true" | "1" => Ok(AttrValue::Bool(true)),
                "false" | "0" => Ok(AttrValue::Bool(false)),
                _ => Err(ProvError::BadValue(format!("{lexical:?} is not a boolean"))),
            },
            "xsd:dateTime" => XsdDateTime::parse(lexical).map(AttrValue::DateTime),
            "prov:QUALIFIED_NAME" | "xsd:QName" => {
                QName::parse(lexical).map(AttrValue::QualifiedName)
            }
            _ => Ok(AttrValue::Typed(lexical.to_string(), datatype.clone())),
        }
    }

    /// Convenience accessor: the value as `f64` when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Convenience accessor: the value as `&str` when string-like.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::String(s) | AttrValue::LangString(s, _) | AttrValue::Typed(s, _) => Some(s),
            _ => None,
        }
    }
}

/// Formats a double so that parsing it back is lossless and special
/// values use the XSD lexical forms (`NaN`, `INF`, `-INF`).
pub fn format_double(d: f64) -> String {
    if d.is_nan() {
        "NaN".to_string()
    } else if d.is_infinite() {
        if d > 0.0 {
            "INF".to_string()
        } else {
            "-INF".to_string()
        }
    } else {
        // `{:?}` is Rust's shortest round-trippable float formatting.
        format!("{d:?}")
    }
}

/// Parses an XSD double lexical form, including the special values.
pub fn parse_double(s: &str) -> Option<f64> {
    match s {
        "NaN" => Some(f64::NAN),
        "INF" | "+INF" => Some(f64::INFINITY),
        "-INF" => Some(f64::NEG_INFINITY),
        _ => s.parse().ok(),
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.lexical())
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::String(s.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::String(s)
    }
}
impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}
impl From<i32> for AttrValue {
    fn from(i: i32) -> Self {
        AttrValue::Int(i as i64)
    }
}
impl From<u32> for AttrValue {
    fn from(i: u32) -> Self {
        AttrValue::Int(i as i64)
    }
}
impl From<usize> for AttrValue {
    fn from(i: usize) -> Self {
        AttrValue::Int(i as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(d: f64) -> Self {
        AttrValue::Double(d)
    }
}
impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}
impl From<QName> for AttrValue {
    fn from(q: QName) -> Self {
        AttrValue::QualifiedName(q)
    }
}
impl From<XsdDateTime> for AttrValue {
    fn from(t: XsdDateTime) -> Self {
        AttrValue::DateTime(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexical_roundtrip_for_core_types() {
        let cases: Vec<AttrValue> = vec![
            AttrValue::Int(-42),
            AttrValue::Double(1.5),
            AttrValue::Double(1e-300),
            AttrValue::Bool(true),
            AttrValue::Bool(false),
            AttrValue::QualifiedName(QName::new("ex", "thing")),
            AttrValue::DateTime(XsdDateTime::new(1_700_000_000, 123)),
        ];
        for v in cases {
            let ty = v.type_name().unwrap();
            let back = AttrValue::from_lexical(&v.lexical(), &ty).unwrap();
            assert_eq!(v, back, "roundtrip {v:?}");
        }
    }

    #[test]
    fn special_doubles() {
        assert_eq!(format_double(f64::INFINITY), "INF");
        assert_eq!(format_double(f64::NEG_INFINITY), "-INF");
        assert_eq!(format_double(f64::NAN), "NaN");
        assert!(parse_double("NaN").unwrap().is_nan());
        assert_eq!(parse_double("INF"), Some(f64::INFINITY));
        assert_eq!(parse_double("-INF"), Some(f64::NEG_INFINITY));
        assert_eq!(parse_double("2.5"), Some(2.5));
        assert_eq!(parse_double("junk"), None);
    }

    #[test]
    fn unknown_datatype_is_preserved() {
        let dt = QName::new("ex", "customType");
        let v = AttrValue::from_lexical("payload", &dt).unwrap();
        assert_eq!(v, AttrValue::Typed("payload".into(), dt.clone()));
        assert_eq!(v.type_name(), Some(dt));
    }

    #[test]
    fn from_impls() {
        assert_eq!(AttrValue::from("x"), AttrValue::String("x".into()));
        assert_eq!(AttrValue::from(3i64), AttrValue::Int(3));
        assert_eq!(AttrValue::from(3usize), AttrValue::Int(3));
        assert_eq!(AttrValue::from(2.0f64), AttrValue::Double(2.0));
        assert_eq!(AttrValue::from(true), AttrValue::Bool(true));
    }

    #[test]
    fn accessors() {
        assert_eq!(AttrValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(AttrValue::Double(0.5).as_f64(), Some(0.5));
        assert_eq!(AttrValue::from("s").as_f64(), None);
        assert_eq!(AttrValue::from("s").as_str(), Some("s"));
        assert_eq!(AttrValue::Bool(true).as_str(), None);
    }

    #[test]
    fn bad_lexical_forms_error() {
        assert!(AttrValue::from_lexical("x", &QName::xsd("long")).is_err());
        assert!(AttrValue::from_lexical("x", &QName::xsd("double")).is_err());
        assert!(AttrValue::from_lexical("maybe", &QName::xsd("boolean")).is_err());
        assert!(AttrValue::from_lexical("nope", &QName::xsd("dateTime")).is_err());
        assert!(AttrValue::from_lexical("nocolon", &QName::prov("QUALIFIED_NAME")).is_err());
    }
}
