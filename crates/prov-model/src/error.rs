//! Error types shared across the PROV model, serializers and parsers.

use std::fmt;

/// Errors produced while building, serializing or parsing PROV documents.
#[derive(Debug)]
pub enum ProvError {
    /// A qualified name could not be parsed (`prefix:local` expected).
    InvalidQName(String),
    /// A namespace prefix was used without being registered.
    UnknownPrefix(String),
    /// The PROV-JSON input was not valid JSON.
    Json(serde_json::Error),
    /// The JSON was well-formed but violated the PROV-JSON structure.
    Structure(String),
    /// An attribute value had an unsupported or inconsistent `xsd` type.
    BadValue(String),
    /// A date/time literal could not be parsed as `xsd:dateTime`.
    BadDateTime(String),
    /// A relation referenced an identifier that does not exist in the
    /// document (only raised by strict validation).
    DanglingReference(String),
    /// Two records with the same identifier had incompatible definitions.
    Conflict(String),
    /// An I/O error while reading or writing a document.
    Io(std::io::Error),
}

impl fmt::Display for ProvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvError::InvalidQName(s) => write!(f, "invalid qualified name: {s:?}"),
            ProvError::UnknownPrefix(p) => write!(f, "unknown namespace prefix: {p:?}"),
            ProvError::Json(e) => write!(f, "invalid JSON: {e}"),
            ProvError::Structure(m) => write!(f, "invalid PROV-JSON structure: {m}"),
            ProvError::BadValue(m) => write!(f, "invalid attribute value: {m}"),
            ProvError::BadDateTime(s) => write!(f, "invalid xsd:dateTime literal: {s:?}"),
            ProvError::DanglingReference(id) => write!(f, "dangling reference: {id}"),
            ProvError::Conflict(m) => write!(f, "conflicting record definitions: {m}"),
            ProvError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ProvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProvError::Json(e) => Some(e),
            ProvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for ProvError {
    fn from(e: serde_json::Error) -> Self {
        ProvError::Json(e)
    }
}

impl From<std::io::Error> for ProvError {
    fn from(e: std::io::Error) -> Self {
        ProvError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProvError::InvalidQName("no-colon".into());
        assert!(e.to_string().contains("no-colon"));
        let e = ProvError::UnknownPrefix("ex".into());
        assert!(e.to_string().contains("ex"));
        let e = ProvError::Structure("entity must be an object".into());
        assert!(e.to_string().contains("entity must be an object"));
    }

    #[test]
    fn io_error_wraps_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: ProvError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn json_error_wraps_source() {
        let bad = serde_json::from_str::<serde_json::Value>("{");
        let e: ProvError = bad.unwrap_err().into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("invalid JSON"));
    }
}
