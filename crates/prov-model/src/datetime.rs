//! Minimal `xsd:dateTime` support.
//!
//! PROV timestamps (`prov:startTime`, `prov:endTime`, generation/usage
//! times) are `xsd:dateTime` literals. This module implements a small
//! UTC-only datetime type with ISO-8601 parsing/formatting built on the
//! proleptic-Gregorian civil-day algorithms of Howard Hinnant, avoiding a
//! dependency on a calendar crate.

use crate::error::ProvError;
use std::fmt;

/// A UTC timestamp with microsecond resolution, printed as
/// `YYYY-MM-DDThh:mm:ss[.ffffff]Z`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct XsdDateTime {
    /// Whole seconds since the Unix epoch (may be negative).
    pub epoch_secs: i64,
    /// Sub-second microseconds, `0..=999_999`.
    pub micros: u32,
}

impl XsdDateTime {
    /// Builds a timestamp from epoch seconds and microseconds.
    ///
    /// Microseconds beyond one second are carried into the seconds field.
    pub fn new(epoch_secs: i64, micros: u32) -> Self {
        let carry = (micros / 1_000_000) as i64;
        XsdDateTime {
            epoch_secs: epoch_secs + carry,
            micros: micros % 1_000_000,
        }
    }

    /// The current wall-clock time.
    pub fn now() -> Self {
        match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
            Ok(d) => XsdDateTime::new(d.as_secs() as i64, d.subsec_micros()),
            Err(e) => {
                // Clock before the epoch: count backwards.
                let d = e.duration();
                XsdDateTime::new(-(d.as_secs() as i64) - 1, 1_000_000 - d.subsec_micros())
            }
        }
    }

    /// Total microseconds since the epoch.
    pub fn epoch_micros(&self) -> i64 {
        self.epoch_secs * 1_000_000 + self.micros as i64
    }

    /// Builds from total microseconds since the epoch.
    pub fn from_epoch_micros(us: i64) -> Self {
        let secs = us.div_euclid(1_000_000);
        let micros = us.rem_euclid(1_000_000) as u32;
        XsdDateTime {
            epoch_secs: secs,
            micros,
        }
    }

    /// Parses an ISO-8601 `xsd:dateTime` string.
    ///
    /// Accepts `Z`, `+hh:mm` / `-hh:mm` offsets (normalized to UTC) and an
    /// optional fractional-seconds part of up to 9 digits (truncated to
    /// microseconds).
    pub fn parse(s: &str) -> Result<Self, ProvError> {
        let err = || ProvError::BadDateTime(s.to_string());
        let bytes = s.as_bytes();
        // Date part: YYYY-MM-DD (year may have a sign and >4 digits).
        let t_pos = s.find('T').ok_or_else(err)?;
        let (date, rest) = s.split_at(t_pos);
        let rest = &rest[1..];

        let mut dit = date.splitn(3, '-');
        // A leading '-' would create an empty first segment; handle sign.
        let (neg, date_body) = if let Some(stripped) = date.strip_prefix('-') {
            (true, stripped)
        } else {
            (false, date)
        };
        if neg {
            dit = date_body.splitn(3, '-');
        }
        let year: i64 = dit.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let year = if neg { -year } else { year };
        let month: u32 = dit.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let day: u32 = dit.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if !(1..=12).contains(&month) || day < 1 || day > days_in_month(year, month) {
            return Err(err());
        }

        // Time part: hh:mm:ss[.frac][Z|±hh:mm]
        let (time_str, offset_secs) = split_offset(rest).ok_or_else(err)?;
        let mut tit = time_str.splitn(3, ':');
        let hour: u32 = tit.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let minute: u32 = tit.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let sec_part = tit.next().ok_or_else(err)?;
        let (sec_str, frac_str) = match sec_part.split_once('.') {
            Some((s, f)) => (s, Some(f)),
            None => (sec_part, None),
        };
        let second: u32 = sec_str.parse().map_err(|_| err())?;
        if hour > 23 || minute > 59 || second > 60 {
            return Err(err());
        }
        let micros = match frac_str {
            None => 0,
            Some(f) => {
                if f.is_empty() || f.len() > 9 || !f.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(err());
                }
                let mut padded = f.to_string();
                while padded.len() < 6 {
                    padded.push('0');
                }
                padded[..6].parse::<u32>().map_err(|_| err())?
            }
        };
        let _ = bytes;

        let days = days_from_civil(year, month, day);
        let secs =
            days * 86_400 + hour as i64 * 3600 + minute as i64 * 60 + second as i64 - offset_secs;
        Ok(XsdDateTime {
            epoch_secs: secs,
            micros,
        })
    }

    /// Decomposes into `(year, month, day, hour, minute, second)` in UTC.
    pub fn civil(&self) -> (i64, u32, u32, u32, u32, u32) {
        let days = self.epoch_secs.div_euclid(86_400);
        let secs_of_day = self.epoch_secs.rem_euclid(86_400);
        let (y, m, d) = civil_from_days(days);
        let hour = (secs_of_day / 3600) as u32;
        let minute = (secs_of_day % 3600 / 60) as u32;
        let second = (secs_of_day % 60) as u32;
        (y, m, d, hour, minute, second)
    }
}

impl fmt::Display for XsdDateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d, h, mi, s) = self.civil();
        if self.micros == 0 {
            write!(f, "{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}Z")
        } else {
            write!(
                f,
                "{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}.{:06}Z",
                self.micros
            )
        }
    }
}

/// Splits the timezone designator off a time string, returning the bare
/// time and the offset in seconds east of UTC.
fn split_offset(s: &str) -> Option<(&str, i64)> {
    if let Some(stripped) = s.strip_suffix('Z') {
        return Some((stripped, 0));
    }
    // Look for a '+' or '-' after the seconds field. The time itself
    // contains ':' but no '+'/'-' before a potential offset.
    for (i, c) in s.char_indices().rev() {
        match c {
            '+' | '-' => {
                let (time, off) = s.split_at(i);
                let sign = if c == '+' { 1 } else { -1 };
                let off = &off[1..];
                let (oh, om) = off.split_once(':')?;
                let oh: i64 = oh.parse().ok()?;
                let om: i64 = om.parse().ok()?;
                if oh > 14 || om > 59 {
                    return None;
                }
                return Some((time, sign * (oh * 3600 + om * 60)));
            }
            ':' | '.' => continue,
            _ if c.is_ascii_digit() => continue,
            _ => return None,
        }
    }
    // No designator: interpret as UTC (lenient, PROV files in the wild
    // frequently omit it).
    Some((s, 0))
}

fn is_leap(y: i64) -> bool {
    y % 4 == 0 && (y % 100 != 0 || y % 400 == 0)
}

fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(y) => 29,
        2 => 28,
        _ => 0,
    }
}

/// Days since 1970-01-01 for a civil date (Hinnant's algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (Hinnant's algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        let t = XsdDateTime::new(0, 0);
        assert_eq!(t.to_string(), "1970-01-01T00:00:00Z");
    }

    #[test]
    fn parse_format_roundtrip() {
        for s in [
            "2025-07-05T12:34:56Z",
            "2000-02-29T23:59:59Z",
            "1999-12-31T00:00:00.000123Z",
            "2038-01-19T03:14:07Z",
        ] {
            let t = XsdDateTime::parse(s).unwrap();
            assert_eq!(t.to_string(), s, "roundtrip {s}");
        }
    }

    #[test]
    fn parse_applies_offsets() {
        let utc = XsdDateTime::parse("2025-01-01T12:00:00Z").unwrap();
        let plus = XsdDateTime::parse("2025-01-01T14:00:00+02:00").unwrap();
        let minus = XsdDateTime::parse("2025-01-01T07:00:00-05:00").unwrap();
        assert_eq!(utc, plus);
        assert_eq!(utc, minus);
    }

    #[test]
    fn parse_without_designator_is_utc() {
        let a = XsdDateTime::parse("2025-01-01T12:00:00").unwrap();
        let b = XsdDateTime::parse("2025-01-01T12:00:00Z").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "not a date",
            "2025-13-01T00:00:00Z",
            "2025-02-30T00:00:00Z",
            "2025-01-01T24:00:01Z",
            "2025-01-01",
            "2025-01-01T00:00:00.Z",
            "2025-01-01T00:00:00.1234567890Z",
        ] {
            assert!(XsdDateTime::parse(s).is_err(), "should reject {s}");
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(2024));
        assert!(!is_leap(2025));
    }

    #[test]
    fn civil_day_roundtrip_wide_range() {
        // Every ~1000 days across several centuries.
        let mut day = -200_000i64;
        while day < 200_000 {
            let (y, m, d) = civil_from_days(day);
            assert_eq!(days_from_civil(y, m, d), day);
            day += 997;
        }
    }

    #[test]
    fn micros_carry_and_ordering() {
        let t = XsdDateTime::new(10, 2_500_000);
        assert_eq!(t.epoch_secs, 12);
        assert_eq!(t.micros, 500_000);
        let a = XsdDateTime::new(10, 1);
        let b = XsdDateTime::new(10, 2);
        assert!(a < b);
    }

    #[test]
    fn epoch_micros_roundtrip_negative() {
        for us in [-1_i64, -1_000_001, 0, 1, 999_999, 1_000_000, 123_456_789] {
            let t = XsdDateTime::from_epoch_micros(us);
            assert_eq!(t.epoch_micros(), us);
        }
    }

    #[test]
    fn now_formats() {
        let t = XsdDateTime::now();
        let s = t.to_string();
        assert!(s.ends_with('Z') && s.contains('T'));
        // Parse back what we printed.
        let back = XsdDateTime::parse(&s).unwrap();
        assert_eq!(back, t);
    }
}
