//! Streaming PROV-JSON emission.
//!
//! [`ProvDocument::to_json`] materializes the whole document as a
//! [`serde_json::Value`] tree before printing it, which clones every
//! identifier, attribute and metric string a second time. For the large
//! inline-metrics documents of the finalize pipeline that doubles peak
//! memory and adds a full extra pass. This module serializes a document
//! *directly* to any [`std::io::Write`] sink through lightweight borrow
//! wrappers, cloning nothing but the rendered map keys.
//!
//! The output is **byte-identical** to `to_json_string` /
//! `to_json_string_pretty`: the wrappers reproduce exactly the ordering
//! serde_json's `Map` (a `BTreeMap<String, Value>`) would impose —
//! blocks and keys sorted by rendered string, anonymous relation ids
//! numbered in [`RelationKind::all`] order, later formal-argument
//! inserts overwriting earlier ones. The parity tests at the bottom of
//! this file pin that guarantee.

use std::collections::BTreeMap;
use std::io::Write;

use serde::ser::{Serialize, SerializeMap, SerializeSeq, Serializer};

use crate::document::ProvDocument;
use crate::error::ProvError;
use crate::qname::QName;
use crate::record::ElementKind;
use crate::relation::{Relation, RelationKind};
use crate::value::{format_double, AttrValue};

impl ProvDocument {
    /// Streams compact PROV-JSON into `writer`.
    ///
    /// Byte-identical to [`ProvDocument::to_json_string`] without
    /// building the intermediate `Value` tree.
    pub fn write_json<W: Write>(&self, writer: W) -> Result<(), ProvError> {
        Ok(serde_json::to_writer(writer, &SerDoc::new(self))?)
    }

    /// Streams pretty-printed PROV-JSON into `writer`.
    ///
    /// Byte-identical to [`ProvDocument::to_json_string_pretty`]
    /// without building the intermediate `Value` tree.
    pub fn write_json_pretty<W: Write>(&self, writer: W) -> Result<(), ProvError> {
        Ok(serde_json::to_writer_pretty(writer, &SerDoc::new(self))?)
    }
}

/// One top-level (or bundle-level) block of the PROV-JSON object.
enum Block<'a> {
    /// The `prefix` block: prefix (or `"default"`) to IRI.
    Prefix(BTreeMap<String, String>),
    /// An element block: rendered id to the element's attribute map.
    Elements(BTreeMap<String, &'a BTreeMap<QName, Vec<AttrValue>>>),
    /// A relation block: rendered (or anonymous) id to the relation.
    Relations(BTreeMap<String, &'a Relation>),
    /// The `bundle` block: rendered bundle name to its prepared document.
    Bundles(BTreeMap<String, SerDoc<'a>>),
}

/// A document prepared for streaming: blocks keyed by their top-level
/// JSON key, pre-sorted the same way serde_json's map would sort them.
struct SerDoc<'a> {
    blocks: BTreeMap<&'static str, Block<'a>>,
}

impl<'a> SerDoc<'a> {
    fn new(doc: &'a ProvDocument) -> Self {
        let mut blocks: BTreeMap<&'static str, Block<'a>> = BTreeMap::new();

        let mut prefix = BTreeMap::new();
        for ns in doc.namespaces().iter() {
            prefix.insert(ns.prefix, ns.iri);
        }
        if let Some(d) = doc.namespaces().default_ns() {
            prefix.insert("default".to_string(), d.to_string());
        }
        if !prefix.is_empty() {
            blocks.insert("prefix", Block::Prefix(prefix));
        }

        for kind in ElementKind::all() {
            let mut block = BTreeMap::new();
            for el in doc.iter_kind(kind) {
                block.insert(el.id.to_string(), &el.attributes);
            }
            if !block.is_empty() {
                blocks.insert(kind.json_key(), Block::Elements(block));
            }
        }

        // Anonymous ids number in `RelationKind::all()` order — the
        // order `doc_to_json` visits relations — independent of the
        // alphabetical order the blocks end up emitted in.
        let mut anon = 0u64;
        for kind in RelationKind::all() {
            let mut block = BTreeMap::new();
            for rel in doc.relations_of(*kind) {
                let key = match &rel.id {
                    Some(q) => q.to_string(),
                    None => {
                        anon += 1;
                        format!("_:id{anon:06}")
                    }
                };
                block.insert(key, rel);
            }
            if !block.is_empty() {
                blocks.insert(kind.json_key(), Block::Relations(block));
            }
        }

        let mut bundles = BTreeMap::new();
        for (name, bundle) in doc.iter_bundles() {
            // Each bundle restarts its own anonymous-id counter, just
            // like the recursive `doc_to_json` call does.
            bundles.insert(name.to_string(), SerDoc::new(bundle));
        }
        if !bundles.is_empty() {
            blocks.insert("bundle", Block::Bundles(bundles));
        }

        SerDoc { blocks }
    }
}

impl Serialize for SerDoc<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.blocks.len()))?;
        for (key, block) in &self.blocks {
            match block {
                Block::Prefix(p) => map.serialize_entry(key, p)?,
                Block::Elements(els) => map.serialize_entry(key, &SerElements(els))?,
                Block::Relations(rels) => map.serialize_entry(key, &SerRelations(rels))?,
                Block::Bundles(b) => map.serialize_entry(key, b)?,
            }
        }
        map.end()
    }
}

struct SerElements<'a>(&'a BTreeMap<String, &'a BTreeMap<QName, Vec<AttrValue>>>);

impl Serialize for SerElements<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.0.len()))?;
        for (id, attrs) in self.0 {
            map.serialize_entry(id, &SerAttrs(attrs))?;
        }
        map.end()
    }
}

/// Re-keys an attribute map by *rendered* key string. `QName`'s `Ord`
/// and the rendered string's order can disagree (`:` sorts between `9`
/// and `A`), and serde_json sorts objects by string — so the rendered
/// order is the one that must win.
fn rekey_attrs(attrs: &BTreeMap<QName, Vec<AttrValue>>) -> BTreeMap<String, &Vec<AttrValue>> {
    let mut rekeyed = BTreeMap::new();
    for (key, values) in attrs {
        rekeyed.insert(key.to_string(), values);
    }
    rekeyed
}

struct SerAttrs<'a>(&'a BTreeMap<QName, Vec<AttrValue>>);

impl Serialize for SerAttrs<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let rekeyed = rekey_attrs(self.0);
        let mut map = serializer.serialize_map(Some(rekeyed.len()))?;
        for (key, values) in &rekeyed {
            map.serialize_entry(key, &SerValues(values.as_slice()))?;
        }
        map.end()
    }
}

/// One attribute's values: a single value serializes bare, anything
/// else as an array.
struct SerValues<'a>(&'a [AttrValue]);

impl Serialize for SerValues<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        if self.0.len() == 1 {
            SerVal(&self.0[0]).serialize(serializer)
        } else {
            let mut seq = serializer.serialize_seq(Some(self.0.len()))?;
            for v in self.0 {
                seq.serialize_element(&SerVal(v))?;
            }
            seq.end()
        }
    }
}

fn typed_literal<S: Serializer>(serializer: S, lexical: &str, ty: &str) -> Result<S::Ok, S::Error> {
    // "$" (0x24) sorts before "lang" and "type", matching the map order.
    let mut map = serializer.serialize_map(Some(2))?;
    map.serialize_entry("$", lexical)?;
    map.serialize_entry("type", ty)?;
    map.end()
}

/// One attribute value, following `value_to_json`'s rendering rules.
struct SerVal<'a>(&'a AttrValue);

impl Serialize for SerVal<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self.0 {
            AttrValue::String(s) => serializer.serialize_str(s),
            AttrValue::LangString(s, lang) => {
                let mut map = serializer.serialize_map(Some(2))?;
                map.serialize_entry("$", s)?;
                map.serialize_entry("lang", lang)?;
                map.end()
            }
            AttrValue::Int(i) => serializer.serialize_i64(*i),
            AttrValue::Bool(b) => serializer.serialize_bool(*b),
            AttrValue::Double(d) => typed_literal(serializer, &format_double(*d), "xsd:double"),
            AttrValue::QualifiedName(q) => {
                typed_literal(serializer, &q.to_string(), "prov:QUALIFIED_NAME")
            }
            AttrValue::DateTime(t) => typed_literal(serializer, &t.to_string(), "xsd:dateTime"),
            AttrValue::Typed(s, t) => typed_literal(serializer, s, &t.to_string()),
        }
    }
}

struct SerRelations<'a>(&'a BTreeMap<String, &'a Relation>);

impl Serialize for SerRelations<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.0.len()))?;
        for (id, rel) in self.0 {
            map.serialize_entry(id, &SerRel(rel))?;
        }
        map.end()
    }
}

/// One relation body value: formal arguments render as plain strings,
/// application attributes through the value rules.
enum RelVal<'a> {
    Str(String),
    Attrs(&'a Vec<AttrValue>),
}

struct SerRel<'a>(&'a Relation);

impl Serialize for SerRel<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let rel = self.0;
        // Same insertion sequence as `relation_to_json` — subject,
        // object, time, extras, then attributes — into a string-keyed
        // map, so later inserts overwrite earlier ones identically.
        let mut obj: BTreeMap<String, RelVal<'_>> = BTreeMap::new();
        obj.insert(
            rel.kind.subject_key().to_string(),
            RelVal::Str(rel.subject.to_string()),
        );
        obj.insert(
            rel.kind.object_key().to_string(),
            RelVal::Str(rel.object.to_string()),
        );
        if let Some(t) = rel.time {
            obj.insert("prov:time".to_string(), RelVal::Str(t.to_string()));
        }
        for (k, v) in &rel.extras {
            obj.insert(k.clone(), RelVal::Str(v.to_string()));
        }
        for (key, values) in rekey_attrs(&rel.attributes) {
            obj.insert(key, RelVal::Attrs(values));
        }

        let mut map = serializer.serialize_map(Some(obj.len()))?;
        for (key, val) in &obj {
            match val {
                RelVal::Str(s) => map.serialize_entry(key, s)?,
                RelVal::Attrs(values) => map.serialize_entry(key, &SerValues(values.as_slice()))?,
            }
        }
        map.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qname::YPROV_NS;
    use crate::XsdDateTime;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    /// A document exercising every serialization path: multiple
    /// namespaces + default, all three element kinds, multi-valued and
    /// typed attributes, named and anonymous relations, relation times,
    /// extras, relation attributes, and a bundle with its own anonymous
    /// relations.
    fn rich_doc() -> ProvDocument {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.namespaces_mut().register("yprov4ml", YPROV_NS).unwrap();
        doc.namespaces_mut().set_default("http://ex/default/");

        doc.entity(q("dataset"))
            .label("MODIS patches")
            .attr(QName::yprov("patches"), AttrValue::Int(800_000))
            .attr(
                QName::yprov("title"),
                AttrValue::LangString("patch".into(), "en".into()),
            );
        doc.entity(q("model"))
            .prov_type(q("Model"))
            .prov_type(q("Checkpoint"))
            .attr(QName::yprov("loss"), AttrValue::Double(0.125))
            .attr(QName::yprov("nan"), AttrValue::Double(f64::NAN))
            .attr(QName::yprov("inf"), AttrValue::Double(f64::NEG_INFINITY))
            .attr(
                QName::yprov("epoch_end"),
                AttrValue::DateTime(XsdDateTime::new(1_700_000_000, 250)),
            )
            .attr(
                QName::yprov("shape"),
                AttrValue::Typed("3x224x224".into(), QName::new("xsd", "string")),
            )
            .attr(QName::yprov("kind"), AttrValue::QualifiedName(q("Resnet")))
            .attr(QName::yprov("final"), AttrValue::Bool(true));
        doc.activity(q("train"))
            .start_time(XsdDateTime::new(1_000, 0))
            .end_time(XsdDateTime::new(8_200, 500));
        doc.agent(q("researcher"));
        doc.agent(q("orchestrator"));

        let mut used = Relation::new(RelationKind::Used, q("train"), q("dataset"));
        used.time = Some(XsdDateTime::new(1_001, 42));
        used.add_attr(QName::prov("role"), AttrValue::from("training-input"));
        used.add_attr(QName::yprov("split"), AttrValue::from("train"));
        used.add_attr(QName::yprov("split"), AttrValue::from("val"));
        doc.add_relation(used);

        doc.was_generated_by(q("model"), q("train"));
        doc.was_associated_with(q("train"), q("researcher"));
        doc.acted_on_behalf_of(q("researcher"), q("orchestrator"));
        doc.was_derived_from(q("model"), q("dataset"));
        let started =
            doc.was_started_by(q("train"), q("dataset"), Some(XsdDateTime::new(1_000, 1)));
        started
            .extras
            .insert("prov:starter".to_string(), q("scheduler"));

        let named =
            Relation::new(RelationKind::Used, q("train"), q("model")).with_id(q("resume-read"));
        doc.add_relation(named);

        let bundle = doc.bundle(q("runmeta"));
        bundle
            .namespaces_mut()
            .register("ex", "http://ex/")
            .unwrap();
        bundle.entity(q("inner"));
        bundle.activity(q("inner-act"));
        // Anonymous relations inside the bundle restart at _:id000001.
        bundle.used(q("inner-act"), q("inner"));
        bundle.was_generated_by(q("inner"), q("inner-act"));

        doc
    }

    #[test]
    fn compact_stream_matches_to_json_string() {
        let doc = rich_doc();
        let mut streamed = Vec::new();
        doc.write_json(&mut streamed).unwrap();
        assert_eq!(
            String::from_utf8(streamed).unwrap(),
            doc.to_json_string().unwrap()
        );
    }

    #[test]
    fn pretty_stream_matches_to_json_string_pretty() {
        let doc = rich_doc();
        let mut streamed = Vec::new();
        doc.write_json_pretty(&mut streamed).unwrap();
        assert_eq!(
            String::from_utf8(streamed).unwrap(),
            doc.to_json_string_pretty().unwrap()
        );
    }

    #[test]
    fn empty_document_streams_as_empty_object() {
        let doc = ProvDocument::new();
        let mut streamed = Vec::new();
        doc.write_json(&mut streamed).unwrap();
        assert_eq!(streamed, b"{}");
        assert_eq!(doc.to_json_string().unwrap(), "{}");
    }

    #[test]
    fn streamed_output_parses_back_to_equal_document() {
        let mut doc = rich_doc();
        let mut streamed = Vec::new();
        doc.write_json_pretty(&mut streamed).unwrap();
        let mut back =
            ProvDocument::from_json_str(std::str::from_utf8(&streamed).unwrap()).unwrap();
        doc.canonicalize();
        back.canonicalize();
        assert_eq!(doc, back);
    }

    #[test]
    fn anonymous_ids_number_in_kind_order_not_emit_order() {
        // Anonymous ids are assigned while visiting relations in
        // RelationKind::all() order, regardless of which block string
        // sorts first in the output.
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("e"));
        doc.activity(q("a"));
        doc.was_started_by(q("a"), q("e"), None);
        doc.used(q("a"), q("e"));
        doc.was_generated_by(q("e"), q("a"));
        // Blocks emit alphabetically (used < wasGeneratedBy <
        // wasStartedBy) which happens to match kind order here; the
        // parity assertion against to_json_string is the real check.
        let mut streamed = Vec::new();
        doc.write_json(&mut streamed).unwrap();
        let text = String::from_utf8(streamed).unwrap();
        assert_eq!(text, doc.to_json_string().unwrap());
        // used is first in RelationKind::all() → takes _:id000001.
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert!(v["used"].get("_:id000001").is_some());
        assert!(v["wasGeneratedBy"].get("_:id000002").is_some());
        assert!(v["wasStartedBy"].get("_:id000003").is_some());
    }

    #[test]
    fn large_metriclike_document_streams_identically() {
        // Shaped like the finalize pipeline's output: many metric
        // entities with typed double attributes.
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.namespaces_mut().register("yprov4ml", YPROV_NS).unwrap();
        doc.activity(q("run"));
        for i in 0..200 {
            let id = QName::new("ex", format!("metric_{i:04}"));
            doc.entity(id.clone())
                .attr(QName::yprov("samples"), AttrValue::Int(i))
                .attr(QName::yprov("mean"), AttrValue::Double(i as f64 * 0.31))
                .attr(
                    QName::yprov("last"),
                    AttrValue::Double(1.0 / (i + 1) as f64),
                );
            doc.was_generated_by(id, q("run"));
        }
        let mut compact = Vec::new();
        doc.write_json(&mut compact).unwrap();
        assert_eq!(
            String::from_utf8(compact).unwrap(),
            doc.to_json_string().unwrap()
        );
        let mut pretty = Vec::new();
        doc.write_json_pretty(&mut pretty).unwrap();
        assert_eq!(
            String::from_utf8(pretty).unwrap(),
            doc.to_json_string_pretty().unwrap()
        );
    }
}
