//! PROV-N writer.
//!
//! Renders a [`ProvDocument`] in the human-readable PROV-N notation
//! (`document ... endDocument`). Only serialization is provided; the
//! interchange format of the yProv ecosystem is PROV-JSON, and PROV-N is
//! emitted for human inspection and debugging.

use crate::document::ProvDocument;
use crate::qname::QName;
use crate::record::ElementKind;
use crate::relation::Relation;
use crate::value::AttrValue;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders the document as a PROV-N string.
pub fn to_provn(doc: &ProvDocument) -> String {
    let mut out = String::new();
    out.push_str("document\n");
    write_body(doc, &mut out, 1);
    out.push_str("endDocument\n");
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_body(doc: &ProvDocument, out: &mut String, level: usize) {
    if let Some(d) = doc.namespaces().default_ns() {
        indent(out, level);
        let _ = writeln!(out, "default <{d}>");
    }
    for ns in doc.namespaces().iter() {
        indent(out, level);
        let _ = writeln!(out, "prefix {} <{}>", ns.prefix, ns.iri);
    }

    for kind in ElementKind::all() {
        for el in doc.iter_kind(kind) {
            indent(out, level);
            match kind {
                ElementKind::Activity => {
                    // activity(id, start, end, [attrs])
                    let start = el
                        .start_time()
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "-".into());
                    let end = el
                        .end_time()
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "-".into());
                    let attrs = format_attrs(&el.attributes, &["prov:startTime", "prov:endTime"]);
                    let _ = writeln!(out, "activity({}, {start}, {end}{attrs})", el.id);
                }
                _ => {
                    let attrs = format_attrs(&el.attributes, &[]);
                    let _ = writeln!(out, "{}({}{attrs})", kind.provn_keyword(), el.id);
                }
            }
        }
    }

    for rel in doc.relations() {
        indent(out, level);
        out.push_str(&format_relation(rel));
        out.push('\n');
    }

    for (name, bundle) in doc.iter_bundles() {
        indent(out, level);
        let _ = writeln!(out, "bundle {name}");
        write_body(bundle, out, level + 1);
        indent(out, level);
        out.push_str("endBundle\n");
    }
}

fn format_relation(rel: &Relation) -> String {
    // kind(id; subject, object, time?, extras..., [attrs])
    let mut args = Vec::new();
    if let Some(id) = &rel.id {
        args.push(format!("{id};"));
    }
    args.push(rel.subject.to_string());
    args.push(rel.object.to_string());
    if rel.kind.supports_time() {
        match rel.time {
            Some(t) => args.push(t.to_string()),
            None if !rel.extras.is_empty() => args.push("-".into()),
            None => {}
        }
    }
    for key in rel.kind.extra_keys() {
        if let Some(v) = rel.extras.get(*key) {
            args.push(v.to_string());
        }
    }
    let attrs = format_attrs(&rel.attributes, &[]);
    // The id separator `;` binds to the first argument, so join carefully.
    let mut joined = String::new();
    for (i, a) in args.iter().enumerate() {
        if i > 0 && !joined.ends_with(';') {
            joined.push_str(", ");
        } else if joined.ends_with(';') {
            joined.push(' ');
        }
        joined.push_str(a);
    }
    format!("{}({joined}{attrs})", rel.kind.json_key())
}

fn format_attrs(attrs: &BTreeMap<QName, Vec<AttrValue>>, skip: &[&str]) -> String {
    let mut parts = Vec::new();
    for (key, values) in attrs {
        if skip.contains(&key.to_string().as_str()) {
            continue;
        }
        for v in values {
            parts.push(format!("{key}={}", format_value(v)));
        }
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!(", [{}]", parts.join(", "))
    }
}

fn format_value(v: &AttrValue) -> String {
    match v {
        AttrValue::String(s) => format!("\"{}\"", escape(s)),
        AttrValue::LangString(s, lang) => format!("\"{}\"@{lang}", escape(s)),
        AttrValue::QualifiedName(q) => format!("'{q}'"),
        other => match other.type_name() {
            Some(t) => format!("\"{}\" %% {t}", escape(&other.lexical())),
            None => format!("\"{}\"", escape(&other.lexical())),
        },
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XsdDateTime;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    #[test]
    fn renders_document_frame() {
        let doc = ProvDocument::new();
        let s = to_provn(&doc);
        assert!(s.starts_with("document\n"));
        assert!(s.ends_with("endDocument\n"));
    }

    #[test]
    fn renders_elements_and_relations() {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("data")).label("input");
        doc.activity(q("train"))
            .start_time(XsdDateTime::new(0, 0))
            .end_time(XsdDateTime::new(60, 0));
        doc.agent(q("alice"));
        doc.used(q("train"), q("data"));
        doc.was_associated_with(q("train"), q("alice"));

        let s = to_provn(&doc);
        assert!(s.contains("prefix ex <http://ex/>"));
        assert!(s.contains(r#"entity(ex:data, [prov:label="input"])"#));
        assert!(s.contains("activity(ex:train, 1970-01-01T00:00:00Z, 1970-01-01T00:01:00Z)"));
        assert!(s.contains("agent(ex:alice)"));
        assert!(s.contains("used(ex:train, ex:data)"));
        assert!(s.contains("wasAssociatedWith(ex:train, ex:alice)"));
    }

    #[test]
    fn renders_relation_with_id_and_time() {
        let mut doc = ProvDocument::new();
        let rel = Relation::new(crate::RelationKind::Used, q("a"), q("e"))
            .with_id(q("u1"))
            .with_time(XsdDateTime::new(42, 0));
        doc.add_relation(rel);
        let s = to_provn(&doc);
        assert!(
            s.contains("used(ex:u1; ex:a, ex:e, 1970-01-01T00:00:42Z)"),
            "got: {s}"
        );
    }

    #[test]
    fn escapes_quotes_in_strings() {
        let mut doc = ProvDocument::new();
        doc.entity(q("e"))
            .attr(QName::prov("label"), AttrValue::from(r#"say "hi""#));
        let s = to_provn(&doc);
        assert!(s.contains(r#"prov:label="say \"hi\"""#));
    }

    #[test]
    fn renders_typed_literals_and_qnames() {
        let mut doc = ProvDocument::new();
        doc.entity(q("e"))
            .attr(QName::yprov("loss"), AttrValue::Double(0.5))
            .prov_type(q("Model"));
        let s = to_provn(&doc);
        assert!(s.contains("yprov4ml:loss=\"0.5\" %% xsd:double"));
        assert!(s.contains("prov:type='ex:Model'"));
    }

    #[test]
    fn renders_bundles() {
        let mut doc = ProvDocument::new();
        doc.bundle(q("b")).entity(q("inner"));
        let s = to_provn(&doc);
        assert!(s.contains("bundle ex:b"));
        assert!(s.contains("entity(ex:inner)"));
        assert!(s.contains("endBundle"));
    }
}
