//! Qualified names and namespace handling.
//!
//! PROV identifies every element and relation with a *qualified name*: a
//! `prefix:local` pair where the prefix is bound to a namespace IRI in the
//! document's [`NamespaceRegistry`]. The well-known `prov:` and `xsd:`
//! prefixes are always available.

use crate::error::ProvError;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// IRI of the W3C PROV namespace (bound to the `prov` prefix).
pub const PROV_NS: &str = "http://www.w3.org/ns/prov#";
/// IRI of the XML Schema datatypes namespace (bound to the `xsd` prefix).
pub const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema#";
/// Default namespace prefix used by yProv4ML-produced documents.
pub const YPROV_PREFIX: &str = "yprov4ml";
/// Namespace IRI used by yProv4ML-produced documents.
pub const YPROV_NS: &str = "https://yprov.example.org/ns/yprov4ml#";

/// A namespace binding: a short prefix and the IRI it expands to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Namespace {
    /// The short prefix, e.g. `prov`.
    pub prefix: String,
    /// The expanded IRI, e.g. `http://www.w3.org/ns/prov#`.
    pub iri: String,
}

/// A qualified name `prefix:local`.
///
/// `QName` is cheap to clone: both components are reference-counted
/// strings, so qualified names can be freely duplicated into indexes,
/// relations and graphs without reallocating.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QName {
    prefix: Arc<str>,
    local: Arc<str>,
}

impl QName {
    /// Builds a qualified name from a prefix and a local part.
    pub fn new(prefix: impl AsRef<str>, local: impl AsRef<str>) -> Self {
        QName {
            prefix: Arc::from(prefix.as_ref()),
            local: Arc::from(local.as_ref()),
        }
    }

    /// Builds a name in the `prov:` namespace (e.g. `prov:type`).
    pub fn prov(local: impl AsRef<str>) -> Self {
        QName::new("prov", local)
    }

    /// Builds a name in the `xsd:` namespace (e.g. `xsd:double`).
    pub fn xsd(local: impl AsRef<str>) -> Self {
        QName::new("xsd", local)
    }

    /// Builds a name in the yProv4ML namespace.
    pub fn yprov(local: impl AsRef<str>) -> Self {
        QName::new(YPROV_PREFIX, local)
    }

    /// Parses a `prefix:local` string.
    ///
    /// The *first* colon splits the prefix from the local part, matching
    /// PROV-N semantics; the local part may itself contain further colons.
    pub fn parse(s: &str) -> Result<Self, ProvError> {
        let (prefix, local) = s
            .split_once(':')
            .ok_or_else(|| ProvError::InvalidQName(s.to_string()))?;
        if prefix.is_empty() || local.is_empty() {
            return Err(ProvError::InvalidQName(s.to_string()));
        }
        if !is_valid_prefix(prefix) {
            return Err(ProvError::InvalidQName(s.to_string()));
        }
        Ok(QName::new(prefix, local))
    }

    /// The namespace prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The local (unqualified) part.
    pub fn local(&self) -> &str {
        &self.local
    }

    /// Expands this name against a registry, producing a full IRI.
    pub fn expand(&self, reg: &NamespaceRegistry) -> Result<String, ProvError> {
        let ns = reg
            .lookup(&self.prefix)
            .ok_or_else(|| ProvError::UnknownPrefix(self.prefix.to_string()))?;
        Ok(format!("{}{}", ns, self.local))
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.prefix, self.local)
    }
}

impl fmt::Debug for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QName({}:{})", self.prefix, self.local)
    }
}

fn is_valid_prefix(p: &str) -> bool {
    let mut chars = p.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
}

/// The set of prefix → IRI bindings of a document.
///
/// `prov` and `xsd` are implicitly bound and cannot be rebound to other
/// IRIs. A registry may also carry a *default* namespace, serialized as
/// the `"default"` key in PROV-JSON's `prefix` block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NamespaceRegistry {
    bindings: BTreeMap<String, String>,
    default_ns: Option<String>,
}

impl NamespaceRegistry {
    /// Creates a registry with only the implicit `prov`/`xsd` bindings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-registers) a prefix.
    ///
    /// Returns an error when attempting to rebind `prov` or `xsd` to a
    /// different IRI than their standard ones.
    pub fn register(
        &mut self,
        prefix: impl Into<String>,
        iri: impl Into<String>,
    ) -> Result<(), ProvError> {
        let prefix = prefix.into();
        let iri = iri.into();
        match prefix.as_str() {
            "prov" if iri != PROV_NS => {
                return Err(ProvError::Conflict(format!(
                    "prefix 'prov' is reserved for {PROV_NS}"
                )))
            }
            "xsd" if iri != XSD_NS => {
                return Err(ProvError::Conflict(format!(
                    "prefix 'xsd' is reserved for {XSD_NS}"
                )))
            }
            _ => {}
        }
        if !is_valid_prefix(&prefix) {
            return Err(ProvError::InvalidQName(prefix));
        }
        self.bindings.insert(prefix, iri);
        Ok(())
    }

    /// Sets the default namespace (PROV-JSON `"default"` prefix entry).
    pub fn set_default(&mut self, iri: impl Into<String>) {
        self.default_ns = Some(iri.into());
    }

    /// The default namespace IRI, if set.
    pub fn default_ns(&self) -> Option<&str> {
        self.default_ns.as_deref()
    }

    /// Resolves a prefix to its IRI, consulting implicit bindings last.
    pub fn lookup(&self, prefix: &str) -> Option<Cow<'_, str>> {
        if let Some(iri) = self.bindings.get(prefix) {
            return Some(Cow::Borrowed(iri));
        }
        match prefix {
            "prov" => Some(Cow::Borrowed(PROV_NS)),
            "xsd" => Some(Cow::Borrowed(XSD_NS)),
            _ => None,
        }
    }

    /// True when the prefix resolves (explicitly or implicitly).
    pub fn contains(&self, prefix: &str) -> bool {
        self.lookup(prefix).is_some()
    }

    /// Iterates over the explicit bindings, in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = Namespace> + '_ {
        self.bindings.iter().map(|(p, i)| Namespace {
            prefix: p.clone(),
            iri: i.clone(),
        })
    }

    /// Number of explicit bindings (implicit `prov`/`xsd` not counted).
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True when no explicit bindings exist.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Merges the bindings of `other` into `self`.
    ///
    /// Conflicting bindings (same prefix, different IRI) are an error to
    /// avoid silently changing the meaning of qualified names.
    pub fn merge(&mut self, other: &NamespaceRegistry) -> Result<(), ProvError> {
        for ns in other.iter() {
            if let Some(existing) = self.bindings.get(&ns.prefix) {
                if existing != &ns.iri {
                    return Err(ProvError::Conflict(format!(
                        "prefix {:?} bound to both {:?} and {:?}",
                        ns.prefix, existing, ns.iri
                    )));
                }
            } else {
                self.register(ns.prefix, ns.iri)?;
            }
        }
        if self.default_ns.is_none() {
            self.default_ns = other.default_ns.clone();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qname_parse_roundtrip() {
        let q = QName::parse("ex:model.ckpt").unwrap();
        assert_eq!(q.prefix(), "ex");
        assert_eq!(q.local(), "model.ckpt");
        assert_eq!(q.to_string(), "ex:model.ckpt");
    }

    #[test]
    fn qname_parse_splits_on_first_colon() {
        let q = QName::parse("ex:urn:thing:1").unwrap();
        assert_eq!(q.prefix(), "ex");
        assert_eq!(q.local(), "urn:thing:1");
    }

    #[test]
    fn qname_parse_rejects_bad_input() {
        assert!(QName::parse("nocolon").is_err());
        assert!(QName::parse(":local").is_err());
        assert!(QName::parse("prefix:").is_err());
        assert!(QName::parse("9bad:x").is_err());
        assert!(QName::parse("has space:x").is_err());
    }

    #[test]
    fn implicit_prefixes_resolve() {
        let reg = NamespaceRegistry::new();
        assert_eq!(reg.lookup("prov").unwrap(), PROV_NS);
        assert_eq!(reg.lookup("xsd").unwrap(), XSD_NS);
        assert!(reg.lookup("ex").is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn expand_uses_registry() {
        let mut reg = NamespaceRegistry::new();
        reg.register("ex", "http://example.org/").unwrap();
        let q = QName::new("ex", "thing");
        assert_eq!(q.expand(&reg).unwrap(), "http://example.org/thing");
        let unknown = QName::new("zz", "thing");
        assert!(unknown.expand(&reg).is_err());
    }

    #[test]
    fn reserved_prefixes_cannot_be_rebound() {
        let mut reg = NamespaceRegistry::new();
        assert!(reg.register("prov", "http://evil.example/").is_err());
        assert!(reg.register("xsd", "http://evil.example/").is_err());
        // Binding them to their canonical IRIs is fine.
        assert!(reg.register("prov", PROV_NS).is_ok());
        assert!(reg.register("xsd", XSD_NS).is_ok());
    }

    #[test]
    fn merge_detects_conflicts() {
        let mut a = NamespaceRegistry::new();
        a.register("ex", "http://a.example/").unwrap();
        let mut b = NamespaceRegistry::new();
        b.register("ex", "http://b.example/").unwrap();
        assert!(a.merge(&b).is_err());

        let mut c = NamespaceRegistry::new();
        c.register("other", "http://c.example/").unwrap();
        c.set_default("http://default.example/");
        a.merge(&c).unwrap();
        assert!(a.contains("other"));
        assert_eq!(a.default_ns(), Some("http://default.example/"));
    }

    #[test]
    fn qname_is_cheap_to_clone_and_hashable() {
        use std::collections::HashSet;
        let q = QName::new("ex", "a");
        let mut set = HashSet::new();
        set.insert(q.clone());
        assert!(set.contains(&QName::new("ex", "a")));
        assert!(!set.contains(&QName::new("ex", "b")));
    }
}
