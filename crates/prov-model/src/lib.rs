//! # prov-model
//!
//! A from-scratch implementation of the W3C PROV data model ([PROV-DM]),
//! together with the [PROV-JSON] serialization and a [PROV-N] writer.
//!
//! The crate is the foundation of the `yprov4ml` provenance producer: every
//! experiment run is ultimately expressed as a [`ProvDocument`] containing
//! entities, activities, agents and the standard PROV relations between
//! them.
//!
//! ## Quick tour
//!
//! ```
//! use prov_model::{ProvDocument, QName, AttrValue};
//!
//! let mut doc = ProvDocument::new();
//! doc.namespaces_mut().register("ex", "http://example.org/");
//!
//! let run = QName::new("ex", "training_run");
//! let model = QName::new("ex", "model.ckpt");
//! doc.activity(run.clone())
//!     .attr(QName::prov("label"), AttrValue::from("training"));
//! doc.entity(model.clone());
//! doc.was_generated_by(model, run);
//!
//! let json = doc.to_json_string_pretty().unwrap();
//! let back = ProvDocument::from_json_str(&json).unwrap();
//! assert_eq!(doc, back);
//! ```
//!
//! [PROV-DM]: https://www.w3.org/TR/prov-dm/
//! [PROV-JSON]: https://www.w3.org/Submission/prov-json/
//! [PROV-N]: https://www.w3.org/TR/prov-n/

pub mod datetime;
pub mod document;
pub mod error;
pub mod json;
pub mod json_stream;
pub mod provn;
pub mod provn_parse;
pub mod qname;
pub mod query;
pub mod record;
pub mod relation;
pub mod turtle;
pub mod validate;
pub mod value;

pub use datetime::XsdDateTime;
pub use document::{DeltaApply, ProvDocument, RecordBuilder};
pub use error::ProvError;
pub use qname::{Namespace, NamespaceRegistry, QName};
pub use query::{ElementFilter, PathQuery, Repeat, Step, StepDirection};
pub use record::{Activity, Agent, Element, ElementKind, Entity};
pub use relation::{Relation, RelationId, RelationKind};
pub use validate::{validate, Severity, ValidationIssue};
pub use value::AttrValue;
