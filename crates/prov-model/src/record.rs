//! PROV element records: entities, activities and agents.
//!
//! All three element kinds share the same shape — an identifier plus a
//! multi-valued attribute map — so they are represented by a single
//! [`Element`] struct tagged with an [`ElementKind`]. Type aliases keep
//! call sites readable.

use crate::datetime::XsdDateTime;
use crate::qname::QName;
use crate::value::AttrValue;
use std::collections::BTreeMap;

/// Which of the three PROV element types a record is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ElementKind {
    /// A thing with some fixed aspects (`prov:Entity`).
    Entity,
    /// Something that occurs over a period of time (`prov:Activity`).
    Activity,
    /// Something bearing responsibility (`prov:Agent`).
    Agent,
}

impl ElementKind {
    /// The PROV-JSON top-level key for this kind (`"entity"`, ...).
    pub fn json_key(&self) -> &'static str {
        match self {
            ElementKind::Entity => "entity",
            ElementKind::Activity => "activity",
            ElementKind::Agent => "agent",
        }
    }

    /// The PROV-N statement keyword for this kind.
    pub fn provn_keyword(&self) -> &'static str {
        self.json_key()
    }

    /// All element kinds, in PROV-JSON document order.
    pub fn all() -> [ElementKind; 3] {
        [
            ElementKind::Entity,
            ElementKind::Activity,
            ElementKind::Agent,
        ]
    }
}

/// A PROV element: identifier plus multi-valued attributes.
///
/// PROV allows an attribute key to carry several values (e.g. multiple
/// `prov:type`s), hence `Vec<AttrValue>` per key. Attributes are kept in
/// a `BTreeMap` so serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// The element's qualified identifier.
    pub id: QName,
    /// Which element type this is.
    pub kind: ElementKind,
    /// Attribute map; insertion order of values per key is preserved.
    pub attributes: BTreeMap<QName, Vec<AttrValue>>,
}

/// An entity record (alias of [`Element`] for readability).
pub type Entity = Element;
/// An activity record (alias of [`Element`] for readability).
pub type Activity = Element;
/// An agent record (alias of [`Element`] for readability).
pub type Agent = Element;

impl Element {
    /// Creates an element with no attributes.
    pub fn new(kind: ElementKind, id: QName) -> Self {
        Element {
            id,
            kind,
            attributes: BTreeMap::new(),
        }
    }

    /// Appends a value under `key` (multi-valued semantics).
    pub fn add_attr(&mut self, key: QName, value: AttrValue) -> &mut Self {
        self.attributes.entry(key).or_default().push(value);
        self
    }

    /// Replaces all values under `key` with a single value.
    pub fn set_attr(&mut self, key: QName, value: AttrValue) -> &mut Self {
        self.attributes.insert(key, vec![value]);
        self
    }

    /// First value under `key`, if any.
    pub fn attr(&self, key: &QName) -> Option<&AttrValue> {
        self.attributes.get(key).and_then(|v| v.first())
    }

    /// All values under `key` (empty slice when absent).
    pub fn attrs(&self, key: &QName) -> &[AttrValue] {
        self.attributes.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The `prov:label`, if set.
    pub fn label(&self) -> Option<&str> {
        self.attr(&QName::prov("label")).and_then(AttrValue::as_str)
    }

    /// All `prov:type` values.
    pub fn prov_types(&self) -> &[AttrValue] {
        self.attrs(&QName::prov("type"))
    }

    /// True when one of the `prov:type` values equals `ty`.
    pub fn has_type(&self, ty: &QName) -> bool {
        self.prov_types()
            .iter()
            .any(|v| matches!(v, AttrValue::QualifiedName(q) if q == ty))
    }

    /// For activities: the `prov:startTime`, if set.
    pub fn start_time(&self) -> Option<XsdDateTime> {
        match self.attr(&QName::prov("startTime")) {
            Some(AttrValue::DateTime(t)) => Some(*t),
            _ => None,
        }
    }

    /// For activities: the `prov:endTime`, if set.
    pub fn end_time(&self) -> Option<XsdDateTime> {
        match self.attr(&QName::prov("endTime")) {
            Some(AttrValue::DateTime(t)) => Some(*t),
            _ => None,
        }
    }

    /// Merges another element with the same id into this one.
    ///
    /// PROV documents may legally describe the same identifier several
    /// times; the effective record is the union of the attribute values.
    /// Duplicate values under a key are collapsed.
    pub fn absorb(&mut self, other: &Element) {
        debug_assert_eq!(self.id, other.id);
        for (k, vals) in &other.attributes {
            let slot = self.attributes.entry(k.clone()).or_default();
            for v in vals {
                if !slot.contains(v) {
                    slot.push(v.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ent(name: &str) -> Element {
        Element::new(ElementKind::Entity, QName::new("ex", name))
    }

    #[test]
    fn add_attr_is_multivalued() {
        let mut e = ent("a");
        e.add_attr(QName::prov("type"), AttrValue::from(QName::new("ex", "T1")));
        e.add_attr(QName::prov("type"), AttrValue::from(QName::new("ex", "T2")));
        assert_eq!(e.prov_types().len(), 2);
        assert!(e.has_type(&QName::new("ex", "T1")));
        assert!(e.has_type(&QName::new("ex", "T2")));
        assert!(!e.has_type(&QName::new("ex", "T3")));
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = ent("a");
        e.add_attr(QName::yprov("v"), AttrValue::Int(1));
        e.add_attr(QName::yprov("v"), AttrValue::Int(2));
        e.set_attr(QName::yprov("v"), AttrValue::Int(3));
        assert_eq!(e.attrs(&QName::yprov("v")), &[AttrValue::Int(3)]);
    }

    #[test]
    fn label_accessor() {
        let mut e = ent("a");
        assert_eq!(e.label(), None);
        e.set_attr(QName::prov("label"), AttrValue::from("nice name"));
        assert_eq!(e.label(), Some("nice name"));
    }

    #[test]
    fn time_accessors_require_datetime_values() {
        let mut a = Element::new(ElementKind::Activity, QName::new("ex", "act"));
        assert!(a.start_time().is_none());
        a.set_attr(QName::prov("startTime"), AttrValue::from("not a time"));
        assert!(a.start_time().is_none());
        let t = XsdDateTime::new(100, 0);
        a.set_attr(QName::prov("startTime"), AttrValue::from(t));
        a.set_attr(
            QName::prov("endTime"),
            AttrValue::from(XsdDateTime::new(200, 0)),
        );
        assert_eq!(a.start_time(), Some(t));
        assert_eq!(a.end_time().unwrap().epoch_secs, 200);
    }

    #[test]
    fn absorb_unions_and_dedups() {
        let mut a = ent("a");
        a.add_attr(QName::yprov("k"), AttrValue::Int(1));
        let mut b = ent("a");
        b.add_attr(QName::yprov("k"), AttrValue::Int(1));
        b.add_attr(QName::yprov("k"), AttrValue::Int(2));
        b.add_attr(QName::yprov("other"), AttrValue::from("x"));
        a.absorb(&b);
        assert_eq!(
            a.attrs(&QName::yprov("k")),
            &[AttrValue::Int(1), AttrValue::Int(2)]
        );
        assert_eq!(a.attr(&QName::yprov("other")).unwrap().as_str(), Some("x"));
    }

    #[test]
    fn kind_keys() {
        assert_eq!(ElementKind::Entity.json_key(), "entity");
        assert_eq!(ElementKind::Activity.json_key(), "activity");
        assert_eq!(ElementKind::Agent.json_key(), "agent");
        assert_eq!(ElementKind::all().len(), 3);
    }
}
