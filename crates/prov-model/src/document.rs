//! The PROV document: a set of elements, relations and bundles.

use crate::error::ProvError;
use crate::qname::{NamespaceRegistry, QName};
use crate::record::{Element, ElementKind};
use crate::relation::{Relation, RelationKind};
use crate::value::AttrValue;
use crate::XsdDateTime;
use std::collections::BTreeMap;

/// A W3C PROV document.
///
/// Holds the namespace registry, one ordered map of elements per
/// [`ElementKind`], the list of relations, and optionally named *bundles*
/// (nested documents, used by PROV to give provenance of provenance).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProvDocument {
    namespaces: NamespaceRegistry,
    elements: BTreeMap<QName, Element>,
    relations: Vec<Relation>,
    bundles: BTreeMap<QName, ProvDocument>,
}

impl ProvDocument {
    /// Creates an empty document with only implicit namespaces.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the namespace registry.
    pub fn namespaces(&self) -> &NamespaceRegistry {
        &self.namespaces
    }

    /// Mutable access to the namespace registry.
    pub fn namespaces_mut(&mut self) -> &mut NamespaceRegistry {
        &mut self.namespaces
    }

    // ----- element insertion -------------------------------------------------

    /// Adds (or extends) an entity and returns a builder for attributes.
    pub fn entity(&mut self, id: QName) -> RecordBuilder<'_> {
        self.element(ElementKind::Entity, id)
    }

    /// Adds (or extends) an activity and returns a builder for attributes.
    pub fn activity(&mut self, id: QName) -> RecordBuilder<'_> {
        self.element(ElementKind::Activity, id)
    }

    /// Adds (or extends) an agent and returns a builder for attributes.
    pub fn agent(&mut self, id: QName) -> RecordBuilder<'_> {
        self.element(ElementKind::Agent, id)
    }

    /// Adds (or extends) an element of the given kind.
    ///
    /// Re-adding an existing identifier with the *same* kind returns a
    /// builder over the existing record; with a *different* kind the new
    /// record silently keeps the original kind and merges attributes —
    /// strict checking is available via [`crate::validate::validate`].
    pub fn element(&mut self, kind: ElementKind, id: QName) -> RecordBuilder<'_> {
        let el = self
            .elements
            .entry(id.clone())
            .or_insert_with(|| Element::new(kind, id));
        RecordBuilder { element: el }
    }

    /// Inserts a fully-formed element, merging with any existing record.
    pub fn insert_element(&mut self, el: Element) {
        match self.elements.get_mut(&el.id) {
            Some(existing) => existing.absorb(&el),
            None => {
                self.elements.insert(el.id.clone(), el);
            }
        }
    }

    // ----- element lookup ----------------------------------------------------

    /// Looks up any element by id.
    pub fn get(&self, id: &QName) -> Option<&Element> {
        self.elements.get(id)
    }

    /// Mutable lookup by id.
    pub fn get_mut(&mut self, id: &QName) -> Option<&mut Element> {
        self.elements.get_mut(id)
    }

    /// Iterates over all elements (entities, activities and agents).
    pub fn iter_elements(&self) -> impl Iterator<Item = &Element> {
        self.elements.values()
    }

    /// Iterates over elements of one kind.
    pub fn iter_kind(&self, kind: ElementKind) -> impl Iterator<Item = &Element> {
        self.elements.values().filter(move |e| e.kind == kind)
    }

    /// Number of elements of one kind.
    pub fn count(&self, kind: ElementKind) -> usize {
        self.iter_kind(kind).count()
    }

    /// Total number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    // ----- relations ----------------------------------------------------------

    /// Appends a relation.
    pub fn add_relation(&mut self, rel: Relation) -> &mut Relation {
        self.relations.push(rel);
        self.relations.last_mut().expect("just pushed")
    }

    /// All relations, in insertion order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Relations of one kind.
    pub fn relations_of(&self, kind: RelationKind) -> impl Iterator<Item = &Relation> {
        self.relations.iter().filter(move |r| r.kind == kind)
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Crate-internal mutable access to the relation list (used by the
    /// canonicalizer in the JSON module).
    pub(crate) fn relations_mut(&mut self) -> &mut Vec<Relation> {
        &mut self.relations
    }

    // Convenience constructors for the common relation kinds. Each returns
    // a mutable reference so callers can attach times/roles afterwards.

    /// `activity` used `entity`.
    pub fn used(&mut self, activity: QName, entity: QName) -> &mut Relation {
        self.add_relation(Relation::new(RelationKind::Used, activity, entity))
    }

    /// `entity` was generated by `activity`.
    pub fn was_generated_by(&mut self, entity: QName, activity: QName) -> &mut Relation {
        self.add_relation(Relation::new(
            RelationKind::WasGeneratedBy,
            entity,
            activity,
        ))
    }

    /// `informed` was informed by `informant`.
    pub fn was_informed_by(&mut self, informed: QName, informant: QName) -> &mut Relation {
        self.add_relation(Relation::new(
            RelationKind::WasInformedBy,
            informed,
            informant,
        ))
    }

    /// `generated` was derived from `used`.
    pub fn was_derived_from(&mut self, generated: QName, used: QName) -> &mut Relation {
        self.add_relation(Relation::new(RelationKind::WasDerivedFrom, generated, used))
    }

    /// `entity` was attributed to `agent`.
    pub fn was_attributed_to(&mut self, entity: QName, agent: QName) -> &mut Relation {
        self.add_relation(Relation::new(RelationKind::WasAttributedTo, entity, agent))
    }

    /// `activity` was associated with `agent`.
    pub fn was_associated_with(&mut self, activity: QName, agent: QName) -> &mut Relation {
        self.add_relation(Relation::new(
            RelationKind::WasAssociatedWith,
            activity,
            agent,
        ))
    }

    /// `delegate` acted on behalf of `responsible`.
    pub fn acted_on_behalf_of(&mut self, delegate: QName, responsible: QName) -> &mut Relation {
        self.add_relation(Relation::new(
            RelationKind::ActedOnBehalfOf,
            delegate,
            responsible,
        ))
    }

    /// `specific` is a specialization of `general`.
    pub fn specialization_of(&mut self, specific: QName, general: QName) -> &mut Relation {
        self.add_relation(Relation::new(
            RelationKind::SpecializationOf,
            specific,
            general,
        ))
    }

    /// `collection` had member `entity`.
    pub fn had_member(&mut self, collection: QName, entity: QName) -> &mut Relation {
        self.add_relation(Relation::new(RelationKind::HadMember, collection, entity))
    }

    /// `activity` was started by trigger `entity` at `time`.
    pub fn was_started_by(
        &mut self,
        activity: QName,
        trigger: QName,
        time: Option<XsdDateTime>,
    ) -> &mut Relation {
        let mut rel = Relation::new(RelationKind::WasStartedBy, activity, trigger);
        rel.time = time;
        self.add_relation(rel)
    }

    /// `activity` was ended by trigger `entity` at `time`.
    pub fn was_ended_by(
        &mut self,
        activity: QName,
        trigger: QName,
        time: Option<XsdDateTime>,
    ) -> &mut Relation {
        let mut rel = Relation::new(RelationKind::WasEndedBy, activity, trigger);
        rel.time = time;
        self.add_relation(rel)
    }

    // ----- bundles -------------------------------------------------------------

    /// Adds (or returns) a named bundle.
    pub fn bundle(&mut self, id: QName) -> &mut ProvDocument {
        self.bundles.entry(id).or_default()
    }

    /// Looks up a bundle by name.
    pub fn get_bundle(&self, id: &QName) -> Option<&ProvDocument> {
        self.bundles.get(id)
    }

    /// Iterates over `(name, bundle)` pairs.
    pub fn iter_bundles(&self) -> impl Iterator<Item = (&QName, &ProvDocument)> {
        self.bundles.iter()
    }

    /// Number of bundles.
    pub fn bundle_count(&self) -> usize {
        self.bundles.len()
    }

    // ----- whole-document operations --------------------------------------------

    /// True when the document holds no elements, relations or bundles.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty() && self.relations.is_empty() && self.bundles.is_empty()
    }

    /// Merges `other` into `self`: namespace-union (conflicts are errors),
    /// element absorption, relation concatenation (exact duplicates are
    /// dropped) and recursive bundle merge.
    pub fn merge(&mut self, other: &ProvDocument) -> Result<(), ProvError> {
        self.namespaces.merge(&other.namespaces)?;
        for el in other.iter_elements() {
            self.insert_element(el.clone());
        }
        for rel in &other.relations {
            if !self.relations.contains(rel) {
                self.relations.push(rel.clone());
            }
        }
        for (name, bundle) in &other.bundles {
            self.bundles
                .entry(name.clone())
                .or_default()
                .merge(bundle)?;
        }
        Ok(())
    }

    /// Applies a *delta* document — a later, partial (or cumulative)
    /// snapshot of the same logical document — onto `self`.
    ///
    /// Unlike [`ProvDocument::merge`], elements carried by the delta
    /// **replace** the stored record wholesale instead of unioning
    /// attribute values: a delta re-describing a metric entity carries
    /// fresh aggregates (count, mean, last) that must supersede the
    /// stale ones, not accumulate beside them. Relations still
    /// deduplicate by full equality, and new ones are spliced in at
    /// their canonical sort position so a document that was in
    /// canonical order stays in canonical order (documents not yet
    /// canonical are canonicalized first).
    ///
    /// Returns which elements were touched and where the new relations
    /// landed, so callers can update derived indexes incrementally.
    pub fn apply_delta(&mut self, delta: &ProvDocument) -> Result<DeltaApply, ProvError> {
        self.namespaces.merge(&delta.namespaces)?;
        let mut result = DeltaApply {
            touched: delta.iter_elements().map(|e| e.id.clone()).collect(),
            new_relations: Vec::new(),
        };
        for el in delta.iter_elements() {
            self.elements.insert(el.id.clone(), el.clone());
        }

        let sorted = self.relations.windows(2).all(|w| {
            crate::json::relation_sort_key(&w[0]) <= crate::json::relation_sort_key(&w[1])
        });
        if !sorted {
            self.relations
                .sort_by_cached_key(crate::json::relation_sort_key);
        }
        let mut fresh: Vec<Relation> = Vec::new();
        for rel in &delta.relations {
            if !self.relations.contains(rel) && !fresh.contains(rel) {
                fresh.push(rel.clone());
            }
        }
        if !fresh.is_empty() {
            fresh.sort_by_cached_key(crate::json::relation_sort_key);
            let old = std::mem::take(&mut self.relations);
            let mut merged = Vec::with_capacity(old.len() + fresh.len());
            let mut pending = fresh.into_iter().peekable();
            for rel in old {
                let key = crate::json::relation_sort_key(&rel);
                // Ties break toward the existing relation, so a fresh
                // relation lands at the end of its equal-key range.
                while pending
                    .peek()
                    .is_some_and(|f| crate::json::relation_sort_key(f) < key)
                {
                    result.new_relations.push(merged.len());
                    merged.push(pending.next().expect("peeked"));
                }
                merged.push(rel);
            }
            for f in pending {
                result.new_relations.push(merged.len());
                merged.push(f);
            }
            self.relations = merged;
        }

        for (name, bundle) in &delta.bundles {
            self.bundles
                .entry(name.clone())
                .or_default()
                .apply_delta(bundle)?;
        }
        Ok(result)
    }

    /// Summary statistics, useful for explorer-style UIs and tests.
    pub fn stats(&self) -> DocumentStats {
        let mut per_relation = BTreeMap::new();
        for r in &self.relations {
            *per_relation.entry(r.kind).or_insert(0usize) += 1;
        }
        DocumentStats {
            entities: self.count(ElementKind::Entity),
            activities: self.count(ElementKind::Activity),
            agents: self.count(ElementKind::Agent),
            relations: self.relations.len(),
            bundles: self.bundles.len(),
            per_relation,
        }
    }
}

/// Builder returned by [`ProvDocument::entity`] and friends.
///
/// Allows chained attribute addition on a freshly inserted (or existing)
/// element:
///
/// ```
/// # use prov_model::{ProvDocument, QName, AttrValue};
/// let mut doc = ProvDocument::new();
/// doc.entity(QName::new("ex", "model"))
///     .attr(QName::prov("label"), AttrValue::from("final model"))
///     .attr(QName::new("ex", "epochs"), AttrValue::Int(10));
/// ```
pub struct RecordBuilder<'a> {
    element: &'a mut Element,
}

impl<'a> RecordBuilder<'a> {
    /// Appends an attribute value (multi-valued).
    pub fn attr(self, key: QName, value: AttrValue) -> Self {
        self.element.add_attr(key, value);
        self
    }

    /// Replaces the values under `key` with a single value.
    pub fn set_attr(self, key: QName, value: AttrValue) -> Self {
        self.element.set_attr(key, value);
        self
    }

    /// Adds a `prov:type` qualified-name value.
    pub fn prov_type(self, ty: QName) -> Self {
        self.attr(QName::prov("type"), AttrValue::QualifiedName(ty))
    }

    /// Sets the `prov:label`.
    pub fn label(self, label: impl Into<String>) -> Self {
        self.set_attr(QName::prov("label"), AttrValue::String(label.into()))
    }

    /// Sets `prov:startTime` (activities).
    pub fn start_time(self, t: XsdDateTime) -> Self {
        self.set_attr(QName::prov("startTime"), AttrValue::DateTime(t))
    }

    /// Sets `prov:endTime` (activities).
    pub fn end_time(self, t: XsdDateTime) -> Self {
        self.set_attr(QName::prov("endTime"), AttrValue::DateTime(t))
    }

    /// Escapes the builder, yielding the underlying element.
    pub fn finish(self) -> &'a mut Element {
        self.element
    }
}

/// Outcome of [`ProvDocument::apply_delta`]: what the delta changed,
/// expressed against the merged document, for incremental maintenance
/// of derived structures (e.g. a cached graph index). Bundle-level
/// changes are not position-tracked.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaApply {
    /// Positions, in the merged document's relation list, of relations
    /// the delta added (ascending).
    pub new_relations: Vec<usize>,
    /// Identifiers of elements the delta inserted or replaced.
    pub touched: Vec<QName>,
}

/// Aggregate counts over a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocumentStats {
    /// Number of entities.
    pub entities: usize,
    /// Number of activities.
    pub activities: usize,
    /// Number of agents.
    pub agents: usize,
    /// Total number of relations.
    pub relations: usize,
    /// Number of bundles.
    pub bundles: usize,
    /// Relation count per kind.
    pub per_relation: BTreeMap<RelationKind, usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    #[test]
    fn build_small_document() {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("data")).label("input data");
        doc.activity(q("train"))
            .prov_type(QName::yprov("TrainingRun"));
        doc.agent(q("alice"));
        doc.used(q("train"), q("data"));
        doc.was_associated_with(q("train"), q("alice"));

        assert_eq!(doc.element_count(), 3);
        assert_eq!(doc.relation_count(), 2);
        let stats = doc.stats();
        assert_eq!(stats.entities, 1);
        assert_eq!(stats.activities, 1);
        assert_eq!(stats.agents, 1);
        assert_eq!(stats.per_relation[&RelationKind::Used], 1);
    }

    #[test]
    fn readding_element_merges_attributes() {
        let mut doc = ProvDocument::new();
        doc.entity(q("m"))
            .attr(QName::yprov("a"), AttrValue::Int(1));
        doc.entity(q("m"))
            .attr(QName::yprov("b"), AttrValue::Int(2));
        let el = doc.get(&q("m")).unwrap();
        assert_eq!(el.attr(&QName::yprov("a")), Some(&AttrValue::Int(1)));
        assert_eq!(el.attr(&QName::yprov("b")), Some(&AttrValue::Int(2)));
        assert_eq!(doc.element_count(), 1);
    }

    #[test]
    fn merge_documents() {
        let mut a = ProvDocument::new();
        a.namespaces_mut().register("ex", "http://ex/").unwrap();
        a.entity(q("x"));
        a.used(q("act"), q("x"));

        let mut b = ProvDocument::new();
        b.namespaces_mut().register("ex", "http://ex/").unwrap();
        b.namespaces_mut().register("other", "http://o/").unwrap();
        b.entity(q("x")).label("shared");
        b.entity(q("y"));
        b.used(q("act"), q("x")); // duplicate relation — must not double up
        b.used(q("act"), q("y"));

        a.merge(&b).unwrap();
        assert_eq!(a.element_count(), 2);
        assert_eq!(a.relation_count(), 2);
        assert_eq!(a.get(&q("x")).unwrap().label(), Some("shared"));
        assert!(a.namespaces().contains("other"));
    }

    #[test]
    fn merge_conflicting_namespaces_fails() {
        let mut a = ProvDocument::new();
        a.namespaces_mut().register("ex", "http://a/").unwrap();
        let mut b = ProvDocument::new();
        b.namespaces_mut().register("ex", "http://b/").unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn bundles_are_nested_documents() {
        let mut doc = ProvDocument::new();
        doc.bundle(q("b1")).entity(q("inner"));
        assert_eq!(doc.bundle_count(), 1);
        assert!(doc.get_bundle(&q("b1")).unwrap().get(&q("inner")).is_some());
        assert!(doc.get_bundle(&q("nope")).is_none());
    }

    #[test]
    fn started_ended_carry_time() {
        let mut doc = ProvDocument::new();
        let t = XsdDateTime::new(42, 0);
        doc.was_started_by(q("act"), q("trigger"), Some(t));
        doc.was_ended_by(q("act"), q("trigger"), None);
        let rels: Vec<_> = doc.relations().to_vec();
        assert_eq!(rels[0].time, Some(t));
        assert_eq!(rels[1].time, None);
    }

    #[test]
    fn apply_delta_replaces_elements_wholesale() {
        let mut doc = ProvDocument::new();
        doc.entity(q("metric"))
            .attr(QName::yprov("samples"), AttrValue::Int(10))
            .attr(QName::yprov("mean"), AttrValue::Double(0.5));
        let mut delta = ProvDocument::new();
        delta
            .entity(q("metric"))
            .attr(QName::yprov("samples"), AttrValue::Int(20));

        let applied = doc.apply_delta(&delta).unwrap();
        assert_eq!(applied.touched, vec![q("metric")]);
        let el = doc.get(&q("metric")).unwrap();
        // Replaced, not unioned: the stale mean is gone and samples
        // holds only the new value.
        assert_eq!(el.attrs(&QName::yprov("samples")), &[AttrValue::Int(20)]);
        assert!(el.attr(&QName::yprov("mean")).is_none());
    }

    #[test]
    fn apply_delta_splices_relations_at_canonical_positions() {
        let mut doc = ProvDocument::new();
        doc.used(q("act"), q("b"));
        doc.used(q("act"), q("d"));
        doc.canonicalize();

        let mut delta = ProvDocument::new();
        delta.used(q("act"), q("c"));
        delta.used(q("act"), q("a"));
        delta.used(q("act"), q("b")); // duplicate — dropped
        delta.was_generated_by(q("z"), q("act"));

        let applied = doc.apply_delta(&delta).unwrap();
        let objects: Vec<String> = doc
            .relations()
            .iter()
            .map(|r| r.object.to_string())
            .collect();
        assert_eq!(objects, ["ex:a", "ex:b", "ex:c", "ex:d", "ex:act"]);
        assert_eq!(applied.new_relations, vec![0, 2, 4]);

        // Merged-then-serialized equals canonicalized plain merge.
        let mut reference = ProvDocument::new();
        reference.merge(&delta).unwrap();
        reference.used(q("act"), q("b"));
        reference.used(q("act"), q("d"));
        reference.canonicalize();
        assert_eq!(doc.relations(), reference.relations());
    }

    #[test]
    fn apply_delta_sequence_matches_full_document() {
        // Two cumulative snapshots followed by the final document must
        // converge to exactly the final document.
        let mut full = ProvDocument::new();
        full.namespaces_mut().register("ex", "http://ex/").unwrap();
        full.entity(q("data")).label("frozen");
        full.entity(q("model"))
            .attr(QName::yprov("loss"), AttrValue::Double(0.1));
        full.activity(q("train"));
        full.used(q("train"), q("data"));
        full.was_generated_by(q("model"), q("train"));
        full.canonicalize();

        let mut snap1 = ProvDocument::new();
        snap1.namespaces_mut().register("ex", "http://ex/").unwrap();
        snap1.entity(q("data")).label("frozen");
        snap1
            .entity(q("model"))
            .attr(QName::yprov("loss"), AttrValue::Double(0.9));
        snap1.activity(q("train"));
        snap1.used(q("train"), q("data"));

        let mut merged = ProvDocument::new();
        merged.apply_delta(&snap1).unwrap();
        merged.apply_delta(&full).unwrap();
        assert_eq!(merged, full);
    }

    #[test]
    fn apply_delta_recurses_into_bundles_and_rejects_ns_conflicts() {
        let mut doc = ProvDocument::new();
        doc.bundle(q("meta")).entity(q("inner"));
        let mut delta = ProvDocument::new();
        delta.bundle(q("meta")).entity(q("inner2"));
        doc.apply_delta(&delta).unwrap();
        assert_eq!(doc.get_bundle(&q("meta")).unwrap().element_count(), 2);

        let mut a = ProvDocument::new();
        a.namespaces_mut().register("ex", "http://a/").unwrap();
        let mut b = ProvDocument::new();
        b.namespaces_mut().register("ex", "http://b/").unwrap();
        assert!(a.apply_delta(&b).is_err());
    }

    #[test]
    fn is_empty_reflects_content() {
        let mut doc = ProvDocument::new();
        assert!(doc.is_empty());
        doc.agent(q("a"));
        assert!(!doc.is_empty());
    }
}
