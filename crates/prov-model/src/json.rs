//! PROV-JSON serialization and deserialization.
//!
//! Implements the W3C PROV-JSON member-submission layout: a top-level
//! object with a `prefix` block, one block per element kind keyed by
//! qualified identifier, one block per relation kind keyed by relation
//! identifier (blank-node style `_:idN` keys for anonymous relations),
//! and a `bundle` block of nested documents.

use crate::document::ProvDocument;
use crate::error::ProvError;
use crate::qname::QName;
use crate::record::{Element, ElementKind};
use crate::relation::{Relation, RelationKind};
use crate::value::{format_double, AttrValue};
use crate::XsdDateTime;
use serde_json::{json, Map, Value};

impl ProvDocument {
    /// Serializes to a PROV-JSON [`serde_json::Value`].
    pub fn to_json(&self) -> Value {
        doc_to_json(self)
    }

    /// Serializes to a compact PROV-JSON string.
    pub fn to_json_string(&self) -> Result<String, ProvError> {
        Ok(serde_json::to_string(&self.to_json())?)
    }

    /// Serializes to a pretty-printed PROV-JSON string.
    pub fn to_json_string_pretty(&self) -> Result<String, ProvError> {
        Ok(serde_json::to_string_pretty(&self.to_json())?)
    }

    /// Parses a PROV-JSON value into a document.
    pub fn from_json(value: &Value) -> Result<Self, ProvError> {
        doc_from_json(value)
    }

    /// Parses a PROV-JSON string into a document.
    pub fn from_json_str(s: &str) -> Result<Self, ProvError> {
        let value: Value = serde_json::from_str(s)?;
        doc_from_json(&value)
    }

    /// Reorders relations into the canonical (kind, then textual) order
    /// used by the serializer, recursively through bundles.
    ///
    /// After `canonicalize`, two documents with the same content compare
    /// equal regardless of relation insertion order.
    pub fn canonicalize(&mut self) {
        self.relations_mut().sort_by_cached_key(relation_sort_key);
        let names: Vec<QName> = self.iter_bundles().map(|(n, _)| n.clone()).collect();
        for name in names {
            self.bundle(name).canonicalize();
        }
    }
}

pub(crate) fn relation_sort_key(r: &Relation) -> (usize, String, String, String) {
    let kind_pos = RelationKind::all()
        .iter()
        .position(|k| *k == r.kind)
        .unwrap_or(usize::MAX);
    (
        kind_pos,
        r.subject.to_string(),
        r.object.to_string(),
        format!("{:?}{:?}{:?}", r.id, r.time, r.extras),
    )
}

// --------------------------------------------------------------------------
// Serialization
// --------------------------------------------------------------------------

fn doc_to_json(doc: &ProvDocument) -> Value {
    let mut root = Map::new();

    // prefix block
    let mut prefix = Map::new();
    for ns in doc.namespaces().iter() {
        prefix.insert(ns.prefix, Value::String(ns.iri));
    }
    if let Some(d) = doc.namespaces().default_ns() {
        prefix.insert("default".to_string(), Value::String(d.to_string()));
    }
    if !prefix.is_empty() {
        root.insert("prefix".to_string(), Value::Object(prefix));
    }

    // element blocks
    for kind in ElementKind::all() {
        let mut block = Map::new();
        for el in doc.iter_kind(kind) {
            block.insert(el.id.to_string(), attrs_to_json(&el.attributes));
        }
        if !block.is_empty() {
            root.insert(kind.json_key().to_string(), Value::Object(block));
        }
    }

    // relation blocks — anonymous ids are zero-padded so that the sorted
    // JSON map preserves insertion order.
    let mut anon = 0u64;
    for kind in RelationKind::all() {
        let mut block = Map::new();
        for rel in doc.relations_of(*kind) {
            let key = match &rel.id {
                Some(q) => q.to_string(),
                None => {
                    anon += 1;
                    format!("_:id{anon:06}")
                }
            };
            block.insert(key, relation_to_json(rel));
        }
        if !block.is_empty() {
            root.insert(kind.json_key().to_string(), Value::Object(block));
        }
    }

    // bundles
    let mut bundles = Map::new();
    for (name, bundle) in doc.iter_bundles() {
        bundles.insert(name.to_string(), doc_to_json(bundle));
    }
    if !bundles.is_empty() {
        root.insert("bundle".to_string(), Value::Object(bundles));
    }

    Value::Object(root)
}

fn attrs_to_json(attrs: &std::collections::BTreeMap<QName, Vec<AttrValue>>) -> Value {
    let mut obj = Map::new();
    for (key, values) in attrs {
        let rendered: Vec<Value> = values.iter().map(value_to_json).collect();
        let v = if rendered.len() == 1 {
            rendered.into_iter().next().expect("len checked")
        } else {
            Value::Array(rendered)
        };
        obj.insert(key.to_string(), v);
    }
    Value::Object(obj)
}

/// Renders one attribute value per the PROV-JSON value rules.
pub fn value_to_json(v: &AttrValue) -> Value {
    match v {
        AttrValue::String(s) => Value::String(s.clone()),
        AttrValue::LangString(s, lang) => json!({ "$": s, "lang": lang }),
        AttrValue::Int(i) => json!(i),
        AttrValue::Bool(b) => json!(b),
        // Doubles always use the typed-literal form: serde_json's float
        // parsing is approximate (no `float_roundtrip` feature), while the
        // lexical form printed with Rust's shortest-roundtrip formatter
        // parses back exactly.
        AttrValue::Double(d) => json!({ "$": format_double(*d), "type": "xsd:double" }),
        AttrValue::QualifiedName(q) => json!({ "$": q.to_string(), "type": "prov:QUALIFIED_NAME" }),
        AttrValue::DateTime(t) => json!({ "$": t.to_string(), "type": "xsd:dateTime" }),
        AttrValue::Typed(s, t) => json!({ "$": s, "type": t.to_string() }),
    }
}

fn relation_to_json(rel: &Relation) -> Value {
    let mut obj = Map::new();
    obj.insert(
        rel.kind.subject_key().to_string(),
        Value::String(rel.subject.to_string()),
    );
    obj.insert(
        rel.kind.object_key().to_string(),
        Value::String(rel.object.to_string()),
    );
    if let Some(t) = rel.time {
        obj.insert("prov:time".to_string(), Value::String(t.to_string()));
    }
    for (k, v) in &rel.extras {
        obj.insert(k.clone(), Value::String(v.to_string()));
    }
    if let Value::Object(attrs) = attrs_to_json(&rel.attributes) {
        for (k, v) in attrs {
            obj.insert(k, v);
        }
    }
    Value::Object(obj)
}

// --------------------------------------------------------------------------
// Deserialization
// --------------------------------------------------------------------------

fn doc_from_json(value: &Value) -> Result<ProvDocument, ProvError> {
    let root = value
        .as_object()
        .ok_or_else(|| ProvError::Structure("document must be a JSON object".into()))?;
    let mut doc = ProvDocument::new();

    if let Some(prefix) = root.get("prefix") {
        let prefix = prefix
            .as_object()
            .ok_or_else(|| ProvError::Structure("'prefix' must be an object".into()))?;
        for (p, iri) in prefix {
            let iri = iri.as_str().ok_or_else(|| {
                ProvError::Structure(format!("prefix {p:?} must map to a string"))
            })?;
            if p == "default" {
                doc.namespaces_mut().set_default(iri);
            } else {
                doc.namespaces_mut().register(p.clone(), iri)?;
            }
        }
    }

    for kind in ElementKind::all() {
        if let Some(block) = root.get(kind.json_key()) {
            let block = block.as_object().ok_or_else(|| {
                ProvError::Structure(format!("'{}' must be an object", kind.json_key()))
            })?;
            for (id, attrs) in block {
                let id = QName::parse(id)?;
                let mut el = Element::new(kind, id);
                parse_attrs_into(attrs, &mut el.attributes, kind.json_key())?;
                doc.insert_element(el);
            }
        }
    }

    for kind in RelationKind::all() {
        if let Some(block) = root.get(kind.json_key()) {
            let block = block.as_object().ok_or_else(|| {
                ProvError::Structure(format!("'{}' must be an object", kind.json_key()))
            })?;
            for (rel_id, body) in block {
                let rel = relation_from_json(*kind, rel_id, body)?;
                doc.add_relation(rel);
            }
        }
    }

    if let Some(bundles) = root.get("bundle") {
        let bundles = bundles
            .as_object()
            .ok_or_else(|| ProvError::Structure("'bundle' must be an object".into()))?;
        for (name, inner) in bundles {
            let name = QName::parse(name)?;
            let parsed = doc_from_json(inner)?;
            *doc.bundle(name) = parsed;
        }
    }

    Ok(doc)
}

fn parse_attrs_into(
    attrs: &Value,
    out: &mut std::collections::BTreeMap<QName, Vec<AttrValue>>,
    ctx: &str,
) -> Result<(), ProvError> {
    let obj = attrs
        .as_object()
        .ok_or_else(|| ProvError::Structure(format!("attributes of {ctx} must be an object")))?;
    for (key, raw) in obj {
        let key = QName::parse(key)?;
        let values = match raw {
            Value::Array(items) => items
                .iter()
                .map(value_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            single => vec![value_from_json(single)?],
        };
        out.entry(key).or_default().extend(values);
    }
    Ok(())
}

/// Parses one PROV-JSON attribute value.
pub fn value_from_json(v: &Value) -> Result<AttrValue, ProvError> {
    match v {
        Value::String(s) => Ok(AttrValue::String(s.clone())),
        Value::Bool(b) => Ok(AttrValue::Bool(*b)),
        Value::Number(n) => {
            if let Some(i) = n.as_i64() {
                Ok(AttrValue::Int(i))
            } else if let Some(d) = n.as_f64() {
                Ok(AttrValue::Double(d))
            } else {
                Err(ProvError::BadValue(format!("unrepresentable number {n}")))
            }
        }
        Value::Object(obj) => {
            let lexical = obj
                .get("$")
                .and_then(Value::as_str)
                .ok_or_else(|| ProvError::BadValue("typed value needs a '$' string".into()))?;
            if let Some(lang) = obj.get("lang").and_then(Value::as_str) {
                return Ok(AttrValue::LangString(lexical.to_string(), lang.to_string()));
            }
            match obj.get("type").and_then(Value::as_str) {
                Some(ty) => {
                    let ty = QName::parse(ty)?;
                    AttrValue::from_lexical(lexical, &ty)
                }
                None => Ok(AttrValue::String(lexical.to_string())),
            }
        }
        other => Err(ProvError::BadValue(format!(
            "unsupported attribute value: {other}"
        ))),
    }
}

fn relation_from_json(
    kind: RelationKind,
    rel_id: &str,
    body: &Value,
) -> Result<Relation, ProvError> {
    let obj = body.as_object().ok_or_else(|| {
        ProvError::Structure(format!("relation {rel_id:?} must map to an object"))
    })?;
    let get_q = |key: &str| -> Result<QName, ProvError> {
        let raw = obj.get(key).and_then(Value::as_str).ok_or_else(|| {
            ProvError::Structure(format!(
                "relation {rel_id:?} ({}) missing argument {key:?}",
                kind.json_key()
            ))
        })?;
        QName::parse(raw)
    };

    let subject = get_q(kind.subject_key())?;
    let object = get_q(kind.object_key())?;
    let mut rel = Relation::new(kind, subject, object);

    if !rel_id.starts_with("_:") {
        rel.id = Some(QName::parse(rel_id)?);
    }
    if kind.supports_time() {
        if let Some(t) = obj.get("prov:time").and_then(Value::as_str) {
            rel.time = Some(XsdDateTime::parse(t)?);
        }
    }
    for extra in kind.extra_keys() {
        if let Some(v) = obj.get(*extra).and_then(Value::as_str) {
            rel.extras.insert(extra.to_string(), QName::parse(v)?);
        }
    }

    // Everything that isn't a formal argument is an application attribute.
    let formal: Vec<&str> = {
        let mut f = vec![kind.subject_key(), kind.object_key(), "prov:time"];
        f.extend_from_slice(kind.extra_keys());
        f
    };
    for (key, raw) in obj {
        if formal.contains(&key.as_str()) {
            continue;
        }
        let key = QName::parse(key)?;
        match raw {
            Value::Array(items) => {
                for item in items {
                    let v = value_from_json(item)?;
                    rel.add_attr(key.clone(), v);
                }
            }
            single => {
                let v = value_from_json(single)?;
                rel.add_attr(key, v);
            }
        }
    }
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qname::YPROV_NS;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    fn sample_doc() -> ProvDocument {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.namespaces_mut().register("yprov4ml", YPROV_NS).unwrap();
        doc.entity(q("dataset"))
            .label("MODIS patches")
            .attr(QName::yprov("patches"), AttrValue::Int(800_000));
        doc.entity(q("model"))
            .attr(QName::yprov("loss"), AttrValue::Double(0.125))
            .attr(QName::yprov("params"), AttrValue::Double(1.4e9));
        doc.activity(q("train"))
            .start_time(XsdDateTime::new(1_000, 0))
            .end_time(XsdDateTime::new(8_200, 500));
        doc.agent(q("researcher"));
        doc.used(q("train"), q("dataset"))
            .add_attr(QName::prov("role"), AttrValue::from("training-input"));
        doc.was_generated_by(q("model"), q("train"));
        doc.was_associated_with(q("train"), q("researcher"));
        doc.was_derived_from(q("model"), q("dataset"));
        doc
    }

    #[test]
    fn roundtrip_preserves_document() {
        let mut doc = sample_doc();
        let json = doc.to_json_string_pretty().unwrap();
        let mut back = ProvDocument::from_json_str(&json).unwrap();
        doc.canonicalize();
        back.canonicalize();
        assert_eq!(doc, back);
    }

    #[test]
    fn json_level_idempotence() {
        let doc = sample_doc();
        let j1 = doc.to_json();
        let back = ProvDocument::from_json(&j1).unwrap();
        let j2 = back.to_json();
        assert_eq!(j1, j2);
    }

    #[test]
    fn serializes_expected_blocks() {
        let doc = sample_doc();
        let v = doc.to_json();
        assert!(v.get("prefix").is_some());
        assert!(v.get("entity").unwrap().get("ex:dataset").is_some());
        assert!(v.get("activity").unwrap().get("ex:train").is_some());
        assert!(v.get("used").is_some());
        assert!(v.get("wasGeneratedBy").is_some());
        // No empty blocks.
        assert!(v.get("hadMember").is_none());
    }

    #[test]
    fn multivalued_attributes_roundtrip() {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("e"))
            .prov_type(q("TypeA"))
            .prov_type(q("TypeB"));
        let json = doc.to_json();
        let tv = &json["entity"]["ex:e"]["prov:type"];
        assert!(tv.is_array(), "multi-valued attr must serialize as array");
        let back = ProvDocument::from_json(&json).unwrap();
        let e = back.get(&q("e")).unwrap();
        assert!(e.has_type(&q("TypeA")));
        assert!(e.has_type(&q("TypeB")));
    }

    #[test]
    fn special_float_values_roundtrip() {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("e"))
            .attr(QName::yprov("nan"), AttrValue::Double(f64::NAN))
            .attr(QName::yprov("inf"), AttrValue::Double(f64::INFINITY))
            .attr(QName::yprov("whole"), AttrValue::Double(3.0));
        let json = doc.to_json_string().unwrap();
        let back = ProvDocument::from_json_str(&json).unwrap();
        let e = back.get(&q("e")).unwrap();
        match e.attr(&QName::yprov("nan")).unwrap() {
            AttrValue::Double(d) => assert!(d.is_nan()),
            other => panic!("expected NaN double, got {other:?}"),
        }
        assert_eq!(
            e.attr(&QName::yprov("inf")),
            Some(&AttrValue::Double(f64::INFINITY))
        );
        assert_eq!(
            e.attr(&QName::yprov("whole")),
            Some(&AttrValue::Double(3.0))
        );
    }

    #[test]
    fn bundles_roundtrip() {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.bundle(q("runmeta")).entity(q("inner"));
        let json = doc.to_json_string().unwrap();
        let back = ProvDocument::from_json_str(&json).unwrap();
        assert!(back
            .get_bundle(&q("runmeta"))
            .unwrap()
            .get(&q("inner"))
            .is_some());
    }

    #[test]
    fn named_relations_keep_their_id() {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("e"));
        doc.activity(q("a"));
        let rel = Relation::new(RelationKind::Used, q("a"), q("e")).with_id(q("use1"));
        doc.add_relation(rel);
        let json = doc.to_json();
        assert!(json["used"].get("ex:use1").is_some());
        let back = ProvDocument::from_json(&json).unwrap();
        assert_eq!(back.relations()[0].id, Some(q("use1")));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "[]",
            r#"{"entity": 5}"#,
            r#"{"entity": {"noColon": {}}}"#,
            r#"{"used": {"_:id1": {"prov:activity": "ex:a"}}}"#, // missing prov:entity
            r#"{"prefix": {"ex": 42}}"#,
        ] {
            assert!(
                ProvDocument::from_json_str(bad).is_err(),
                "should reject {bad}"
            );
        }
    }

    #[test]
    fn parse_accepts_external_style_document() {
        // Hand-written PROV-JSON resembling the paper's Figure 1 output.
        let src = r#"{
            "prefix": {"ex": "http://example.org/", "default": "http://example.org/d/"},
            "entity": {
                "ex:model.ckpt": {"prov:label": "checkpoint", "ex:bytes": 123456},
                "ex:dataset": {"prov:type": {"$": "ex:Dataset", "type": "prov:QUALIFIED_NAME"}}
            },
            "activity": {
                "ex:training": {"prov:startTime": {"$": "2025-01-01T00:00:00Z", "type": "xsd:dateTime"}}
            },
            "used": {
                "_:id1": {"prov:activity": "ex:training", "prov:entity": "ex:dataset",
                          "prov:time": "2025-01-01T00:00:01Z"}
            },
            "wasGeneratedBy": {
                "_:id2": {"prov:entity": "ex:model.ckpt", "prov:activity": "ex:training"}
            }
        }"#;
        let doc = ProvDocument::from_json_str(src).unwrap();
        assert_eq!(doc.element_count(), 3);
        assert_eq!(doc.relation_count(), 2);
        assert_eq!(doc.namespaces().default_ns(), Some("http://example.org/d/"));
        let used = doc.relations_of(RelationKind::Used).next().unwrap();
        assert_eq!(used.time.unwrap().epoch_secs, 1_735_689_601);
        let ds = doc.get(&q("dataset")).unwrap();
        assert!(ds.has_type(&q("Dataset")));
    }

    #[test]
    fn lang_strings_roundtrip() {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("e")).attr(
            QName::prov("label"),
            AttrValue::LangString("modello".into(), "it".into()),
        );
        let json = doc.to_json_string().unwrap();
        let back = ProvDocument::from_json_str(&json).unwrap();
        assert_eq!(
            back.get(&q("e")).unwrap().attr(&QName::prov("label")),
            Some(&AttrValue::LangString("modello".into(), "it".into()))
        );
    }
}
