//! Structural validation of PROV documents.
//!
//! PROV-DM imposes typing constraints on relations (e.g. the subject of a
//! `used` must be an activity and its object an entity). The validator
//! walks a document and reports violations as [`ValidationIssue`]s with a
//! [`Severity`], rather than hard errors: real-world provenance files are
//! frequently incomplete, and consumers (explorers, lineage queries) can
//! still work with a partially valid document.

use crate::document::ProvDocument;
use crate::qname::QName;
use crate::record::ElementKind;
use crate::relation::RelationKind;

/// How serious a validation finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: the document is usable but unusual.
    Warning,
    /// The document violates PROV-DM constraints.
    Error,
}

/// A single validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationIssue {
    /// Finding severity.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// The identifier the finding refers to, when applicable.
    pub subject: Option<QName>,
}

impl ValidationIssue {
    fn error(message: String, subject: Option<QName>) -> Self {
        ValidationIssue {
            severity: Severity::Error,
            message,
            subject,
        }
    }
    fn warning(message: String, subject: Option<QName>) -> Self {
        ValidationIssue {
            severity: Severity::Warning,
            message,
            subject,
        }
    }
}

/// Expected element kinds for each relation argument position.
///
/// `None` means the position may hold any element kind (e.g. the trigger
/// of `wasStartedBy` is an entity, but PROV also allows omission; the
/// generic `wasInfluencedBy` accepts anything).
fn expected_kinds(kind: RelationKind) -> (Option<ElementKind>, Option<ElementKind>) {
    use ElementKind::*;
    use RelationKind::*;
    match kind {
        Used => (Some(Activity), Some(Entity)),
        WasGeneratedBy => (Some(Entity), Some(Activity)),
        WasInformedBy => (Some(Activity), Some(Activity)),
        WasStartedBy => (Some(Activity), Some(Entity)),
        WasEndedBy => (Some(Activity), Some(Entity)),
        WasInvalidatedBy => (Some(Entity), Some(Activity)),
        WasDerivedFrom => (Some(Entity), Some(Entity)),
        WasAttributedTo => (Some(Entity), Some(Agent)),
        WasAssociatedWith => (Some(Activity), Some(Agent)),
        ActedOnBehalfOf => (Some(Agent), Some(Agent)),
        WasInfluencedBy => (None, None),
        SpecializationOf => (Some(Entity), Some(Entity)),
        AlternateOf => (Some(Entity), Some(Entity)),
        HadMember => (Some(Entity), Some(Entity)),
    }
}

/// Validates a document, returning all findings (empty = fully valid).
pub fn validate(doc: &ProvDocument) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();
    validate_into(doc, &mut issues);
    issues
}

fn validate_into(doc: &ProvDocument, issues: &mut Vec<ValidationIssue>) {
    // Unregistered prefixes used by identifiers or attribute keys.
    let check_prefix = |q: &QName, what: &str, issues: &mut Vec<ValidationIssue>| {
        if !doc.namespaces().contains(q.prefix()) {
            issues.push(ValidationIssue::warning(
                format!("{what} {q} uses unregistered prefix {:?}", q.prefix()),
                Some(q.clone()),
            ));
        }
    };

    for el in doc.iter_elements() {
        check_prefix(&el.id, "element", issues);
        for key in el.attributes.keys() {
            check_prefix(key, "attribute key", issues);
        }
        // Activities with end before start.
        if let (Some(s), Some(e)) = (el.start_time(), el.end_time()) {
            if e < s {
                issues.push(ValidationIssue::error(
                    format!("activity {} ends ({e}) before it starts ({s})", el.id),
                    Some(el.id.clone()),
                ));
            }
        }
    }

    for rel in doc.relations() {
        let (want_subj, want_obj) = expected_kinds(rel.kind);
        for (role, id, want) in [
            ("subject", &rel.subject, want_subj),
            ("object", &rel.object, want_obj),
        ] {
            match doc.get(id) {
                None => issues.push(ValidationIssue::warning(
                    format!(
                        "{} {role} {id} is not declared in the document",
                        rel.kind.json_key()
                    ),
                    Some(id.clone()),
                )),
                Some(el) => {
                    if let Some(want) = want {
                        if el.kind != want {
                            issues.push(ValidationIssue::error(
                                format!(
                                    "{} {role} {id} must be a {want:?} but is a {:?}",
                                    rel.kind.json_key(),
                                    el.kind
                                ),
                                Some(id.clone()),
                            ));
                        }
                    }
                }
            }
        }
        // Self-derivation is suspicious (though not strictly illegal for
        // alternateOf).
        if rel.kind == RelationKind::WasDerivedFrom && rel.subject == rel.object {
            issues.push(ValidationIssue::warning(
                format!("entity {} is derived from itself", rel.subject),
                Some(rel.subject.clone()),
            ));
        }
    }

    for (_, bundle) in doc.iter_bundles() {
        validate_into(bundle, issues);
    }
}

/// True when the document has no `Error`-severity findings.
pub fn is_valid(doc: &ProvDocument) -> bool {
    validate(doc).iter().all(|i| i.severity != Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XsdDateTime;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    fn base_doc() -> ProvDocument {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc
    }

    #[test]
    fn valid_document_has_no_findings() {
        let mut doc = base_doc();
        doc.entity(q("e"));
        doc.activity(q("a"));
        doc.agent(q("g"));
        doc.used(q("a"), q("e"));
        doc.was_generated_by(q("e"), q("a"));
        doc.was_associated_with(q("a"), q("g"));
        assert!(validate(&doc).is_empty());
        assert!(is_valid(&doc));
    }

    #[test]
    fn wrong_kind_is_an_error() {
        let mut doc = base_doc();
        doc.entity(q("e1"));
        doc.entity(q("e2"));
        // used(entity, entity) — the subject must be an activity.
        doc.used(q("e1"), q("e2"));
        let issues = validate(&doc);
        assert!(issues.iter().any(|i| i.severity == Severity::Error));
        assert!(!is_valid(&doc));
    }

    #[test]
    fn dangling_reference_is_a_warning() {
        let mut doc = base_doc();
        doc.activity(q("a"));
        doc.used(q("a"), q("ghost"));
        let issues = validate(&doc);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].severity, Severity::Warning);
        assert!(is_valid(&doc), "warnings alone keep the doc valid");
    }

    #[test]
    fn unregistered_prefix_is_flagged() {
        let mut doc = ProvDocument::new(); // no 'ex' registered
        doc.entity(q("e"));
        let issues = validate(&doc);
        assert!(issues
            .iter()
            .any(|i| i.message.contains("unregistered prefix")));
    }

    #[test]
    fn backwards_activity_times_are_an_error() {
        let mut doc = base_doc();
        doc.activity(q("a"))
            .start_time(XsdDateTime::new(100, 0))
            .end_time(XsdDateTime::new(50, 0));
        let issues = validate(&doc);
        assert!(issues
            .iter()
            .any(|i| i.severity == Severity::Error && i.message.contains("before it starts")));
    }

    #[test]
    fn self_derivation_warns() {
        let mut doc = base_doc();
        doc.entity(q("e"));
        doc.was_derived_from(q("e"), q("e"));
        let issues = validate(&doc);
        assert!(issues
            .iter()
            .any(|i| i.message.contains("derived from itself")));
    }

    #[test]
    fn bundles_are_validated_recursively() {
        let mut doc = base_doc();
        let bundle = doc.bundle(q("b"));
        bundle.entity(q("e1"));
        bundle.entity(q("e2"));
        bundle.used(q("e1"), q("e2")); // kind error inside the bundle
        assert!(!is_valid(&doc));
    }
}
