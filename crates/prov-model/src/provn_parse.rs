//! PROV-N parser.
//!
//! Parses the subset of PROV-N that [`crate::provn::to_provn`] emits —
//! plus tolerant whitespace/comments — turning PROV-N into a full
//! serialization (read *and* write) alongside PROV-JSON and PROV-O.
//!
//! Grammar handled:
//!
//! ```text
//! document := 'document' decl* statement* 'endDocument'
//! decl     := 'default' '<' IRI '>' | 'prefix' PREFIX '<' IRI '>'
//! statement:= element | relation | bundle
//! element  := KIND '(' id (',' time | ',' '-')* (',' attrs)? ')'
//! relation := KIND '(' (id ';')? arg (',' arg)* (',' attrs)? ')'
//! attrs    := '[' (key '=' value (',' key '=' value)*)? ']'
//! value    := STRING ('%%' QNAME | '@' LANG)? | 'QNAME' | NUMBER
//! bundle   := 'bundle' id statement* 'endBundle'
//! ```

use crate::datetime::XsdDateTime;
use crate::document::ProvDocument;
use crate::error::ProvError;
use crate::qname::QName;
use crate::record::ElementKind;
use crate::relation::{Relation, RelationKind};
use crate::value::AttrValue;

/// Parses a PROV-N document.
pub fn from_provn(input: &str) -> Result<ProvDocument, ProvError> {
    let mut parser = Parser::new(input);
    parser.document()
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ProvError {
        let line = self.src[..self.pos.min(self.src.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
            + 1;
        ProvError::Structure(format!("PROV-N line {line}: {}", msg.into()))
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            // Line comments: // ...
            if self.pos + 1 < self.src.len()
                && self.src[self.pos] == b'/'
                && self.src[self.pos + 1] == b'/'
            {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ProvError> {
        self.skip_ws();
        if self.src.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {:?}, found {:?}",
                b as char,
                self.src.get(self.pos).map(|&c| c as char)
            )))
        }
    }

    fn try_eat(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.src.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// A bare token: identifier / qname / datetime / number characters.
    fn token(&mut self) -> Result<String, ProvError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b.is_ascii_alphanumeric()
                || matches!(b, b':' | b'_' | b'-' | b'.' | b'/' | b'+' | b'Z' | b'T')
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a token"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn keyword(&mut self, word: &str) -> bool {
        self.skip_ws();
        let end = self.pos + word.len();
        if end <= self.src.len() && &self.src[self.pos..end] == word.as_bytes() {
            // Must not be a prefix of a longer identifier.
            let next = self.src.get(end).copied();
            if next.is_none_or(|b| !b.is_ascii_alphanumeric() && b != b'_') {
                self.pos = end;
                return true;
            }
        }
        false
    }

    fn iri(&mut self) -> Result<String, ProvError> {
        self.eat(b'<')?;
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != b'>' {
            self.pos += 1;
        }
        let iri = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.eat(b'>')?;
        Ok(iri)
    }

    fn string_literal(&mut self) -> Result<String, ProvError> {
        self.eat(b'"')?;
        let mut out = String::new();
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.src.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(&other) => out.push(other as char),
                        None => return Err(self.err("unterminated escape")),
                    }
                    self.pos += 1;
                }
                other => {
                    out.push(other as char);
                    self.pos += 1;
                }
            }
        }
        Err(self.err("unterminated string"))
    }

    fn qname(&mut self) -> Result<QName, ProvError> {
        let tok = self.token()?;
        QName::parse(&tok)
    }

    /// Parses one attribute value.
    fn attr_value(&mut self) -> Result<AttrValue, ProvError> {
        match self.peek() {
            Some(b'"') => {
                let s = self.string_literal()?;
                self.skip_ws();
                // Typed literal: "lex" %% xsd:type
                if self.pos + 1 < self.src.len()
                    && self.src[self.pos] == b'%'
                    && self.src[self.pos + 1] == b'%'
                {
                    self.pos += 2;
                    let ty = self.qname()?;
                    return AttrValue::from_lexical(&s, &ty);
                }
                // Language-tagged: "lex"@lang
                if self.try_eat(b'@') {
                    let lang = self.token()?;
                    return Ok(AttrValue::LangString(s, lang));
                }
                Ok(AttrValue::String(s))
            }
            Some(b'\'') => {
                // 'qualified:name'
                self.eat(b'\'')?;
                let q = self.qname()?;
                self.eat(b'\'')?;
                Ok(AttrValue::QualifiedName(q))
            }
            _ => {
                // Bare token: number or qname.
                let tok = self.token()?;
                if let Ok(i) = tok.parse::<i64>() {
                    Ok(AttrValue::Int(i))
                } else if let Some(d) = crate::value::parse_double(&tok) {
                    Ok(AttrValue::Double(d))
                } else {
                    QName::parse(&tok).map(AttrValue::QualifiedName)
                }
            }
        }
    }

    /// Parses `[k=v, ...]`.
    fn attributes(&mut self) -> Result<Vec<(QName, AttrValue)>, ProvError> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        if self.try_eat(b']') {
            return Ok(out);
        }
        loop {
            let key = self.qname()?;
            self.eat(b'=')?;
            let value = self.attr_value()?;
            out.push((key, value));
            if self.try_eat(b']') {
                return Ok(out);
            }
            self.eat(b',')?;
        }
    }

    fn document(&mut self) -> Result<ProvDocument, ProvError> {
        if !self.keyword("document") {
            return Err(self.err("expected 'document'"));
        }
        let doc = self.body(true)?;
        Ok(doc)
    }

    /// Parses declarations + statements until `endDocument`/`endBundle`.
    fn body(&mut self, top_level: bool) -> Result<ProvDocument, ProvError> {
        let mut doc = ProvDocument::new();
        loop {
            self.skip_ws();
            if self.pos >= self.src.len() {
                return Err(self.err("unexpected end of input"));
            }
            if top_level && self.keyword("endDocument") {
                return Ok(doc);
            }
            if !top_level && self.keyword("endBundle") {
                return Ok(doc);
            }
            if self.keyword("default") {
                let iri = self.iri()?;
                doc.namespaces_mut().set_default(iri);
                continue;
            }
            if self.keyword("prefix") {
                let prefix = self.token()?;
                let iri = self.iri()?;
                doc.namespaces_mut().register(prefix, iri)?;
                continue;
            }
            if self.keyword("bundle") {
                let name = self.qname()?;
                let inner = self.body(false)?;
                *doc.bundle(name) = inner;
                continue;
            }
            self.statement(&mut doc)?;
        }
    }

    fn statement(&mut self, doc: &mut ProvDocument) -> Result<(), ProvError> {
        let kind_tok = self.token()?;
        self.eat(b'(')?;

        match kind_tok.as_str() {
            "entity" | "agent" => {
                let kind = if kind_tok == "entity" {
                    ElementKind::Entity
                } else {
                    ElementKind::Agent
                };
                let id = self.qname()?;
                let mut builder_attrs = Vec::new();
                if self.try_eat(b',') {
                    builder_attrs = self.attributes()?;
                }
                self.eat(b')')?;
                let el = doc.element(kind, id).finish();
                for (k, v) in builder_attrs {
                    el.add_attr(k, v);
                }
            }
            "activity" => {
                let id = self.qname()?;
                let mut start = None;
                let mut end = None;
                let mut attrs = Vec::new();
                // Optional: , start, end and/or , [attrs]
                let mut time_slot = 0;
                while self.try_eat(b',') {
                    if self.peek() == Some(b'[') {
                        attrs = self.attributes()?;
                        break;
                    }
                    if self.try_eat(b'-') {
                        time_slot += 1;
                        continue;
                    }
                    let tok = self.token()?;
                    let t = XsdDateTime::parse(&tok)?;
                    if time_slot == 0 {
                        start = Some(t);
                    } else {
                        end = Some(t);
                    }
                    time_slot += 1;
                }
                self.eat(b')')?;
                let el = doc.element(ElementKind::Activity, id).finish();
                if let Some(t) = start {
                    el.set_attr(QName::prov("startTime"), AttrValue::DateTime(t));
                }
                if let Some(t) = end {
                    el.set_attr(QName::prov("endTime"), AttrValue::DateTime(t));
                }
                for (k, v) in attrs {
                    el.add_attr(k, v);
                }
            }
            other => {
                let kind = RelationKind::from_json_key(other)
                    .ok_or_else(|| self.err(format!("unknown statement {other:?}")))?;
                self.relation(doc, kind)?;
            }
        }
        Ok(())
    }

    fn relation(&mut self, doc: &mut ProvDocument, kind: RelationKind) -> Result<(), ProvError> {
        // Optional "id;" marker.
        let first = self.qname()?;
        let (id, subject) = if self.try_eat(b';') {
            (Some(first), self.qname()?)
        } else {
            (None, first)
        };
        self.eat(b',')?;
        let object = self.qname()?;

        let mut rel = Relation::new(kind, subject, object);
        rel.id = id;

        // Remaining positional args: time, extras, then [attrs].
        let extra_keys = kind.extra_keys();
        let mut extras_seen = 0usize;
        while self.try_eat(b',') {
            if self.peek() == Some(b'[') {
                for (k, v) in self.attributes()? {
                    rel.add_attr(k, v);
                }
                break;
            }
            if self.try_eat(b'-') {
                continue; // omitted optional argument
            }
            let tok = self.token()?;
            // A datetime in a time-supporting position, else an extra.
            if kind.supports_time() && rel.time.is_none() && tok.contains('T') {
                rel.time = Some(XsdDateTime::parse(&tok)?);
                continue;
            }
            if extras_seen < extra_keys.len() {
                rel.extras
                    .insert(extra_keys[extras_seen].to_string(), QName::parse(&tok)?);
                extras_seen += 1;
            } else {
                return Err(self.err(format!("unexpected argument {tok:?}")));
            }
        }
        self.eat(b')')?;
        doc.add_relation(rel);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provn::to_provn;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    #[test]
    fn parses_minimal_document() {
        let doc = from_provn("document\nendDocument\n").unwrap();
        assert!(doc.is_empty());
    }

    #[test]
    fn parses_elements_and_relations() {
        let src = r#"document
  prefix ex <http://ex/>
  entity(ex:data, [prov:label="input data"])
  activity(ex:train, 1970-01-01T00:00:00Z, 1970-01-01T00:01:00Z)
  agent(ex:alice)
  used(ex:train, ex:data)
  wasAssociatedWith(ex:train, ex:alice)
endDocument
"#;
        let doc = from_provn(src).unwrap();
        assert_eq!(doc.element_count(), 3);
        assert_eq!(doc.relation_count(), 2);
        assert_eq!(doc.get(&q("data")).unwrap().label(), Some("input data"));
        let act = doc.get(&q("train")).unwrap();
        assert_eq!(act.start_time().unwrap().epoch_secs, 0);
        assert_eq!(act.end_time().unwrap().epoch_secs, 60);
    }

    #[test]
    fn parses_relation_with_id_and_time() {
        let src = "document\nused(ex:u1; ex:a, ex:e, 1970-01-01T00:00:42Z)\nendDocument";
        let doc = from_provn(src).unwrap();
        let rel = &doc.relations()[0];
        assert_eq!(rel.id, Some(q("u1")));
        assert_eq!(rel.time.unwrap().epoch_secs, 42);
    }

    #[test]
    fn parses_typed_and_qname_values() {
        let src = r#"document
  entity(ex:e, [yprov4ml:loss="0.5" %% xsd:double, prov:type='ex:Model', ex:n=42])
endDocument"#;
        let doc = from_provn(src).unwrap();
        let e = doc.get(&q("e")).unwrap();
        assert_eq!(e.attr(&QName::yprov("loss")), Some(&AttrValue::Double(0.5)));
        assert!(e.has_type(&q("Model")));
        assert_eq!(e.attr(&q("n")), Some(&AttrValue::Int(42)));
    }

    #[test]
    fn parses_bundles() {
        let src = "document\nbundle ex:b\nentity(ex:inner)\nendBundle\nendDocument";
        let doc = from_provn(src).unwrap();
        assert!(doc.get_bundle(&q("b")).unwrap().get(&q("inner")).is_some());
    }

    #[test]
    fn roundtrip_writer_to_parser() {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.namespaces_mut().set_default("http://default/");
        doc.entity(q("data"))
            .label("in \"quotes\"")
            .attr(q("rows"), AttrValue::Int(800_000))
            .attr(q("ratio"), AttrValue::Double(0.25))
            .prov_type(q("Dataset"));
        doc.activity(q("train"))
            .start_time(XsdDateTime::new(100, 0))
            .end_time(XsdDateTime::new(5_000, 250));
        doc.agent(q("alice"));
        doc.entity(q("model"));
        doc.used(q("train"), q("data"))
            .add_attr(QName::prov("role"), AttrValue::from("training-input"));
        doc.was_generated_by(q("model"), q("train"));
        doc.was_associated_with(q("train"), q("alice"));
        doc.acted_on_behalf_of(q("alice"), q("alice"));
        doc.was_started_by(q("train"), q("data"), Some(XsdDateTime::new(100, 0)));
        doc.bundle(q("meta")).entity(q("note"));

        let text = to_provn(&doc);
        let mut parsed = from_provn(&text).unwrap();
        let mut original = doc.clone();
        original.canonicalize();
        parsed.canonicalize();
        assert_eq!(original, parsed, "PROV-N roundtrip\n{text}");
    }

    #[test]
    fn roundtrip_association_with_plan() {
        let mut doc = ProvDocument::new();
        let rel = Relation::new(RelationKind::WasAssociatedWith, q("run"), q("user"))
            .with_extra("prov:plan", q("script"));
        doc.add_relation(rel);
        let text = to_provn(&doc);
        let parsed = from_provn(&text).unwrap();
        assert_eq!(parsed.relations()[0].extras["prov:plan"], q("script"));
    }

    #[test]
    fn comments_and_whitespace_tolerated() {
        let src = "document\n  // a comment\n  entity(ex:e)   // trailing\nendDocument";
        let doc = from_provn(src).unwrap();
        assert_eq!(doc.element_count(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "document\nentity(ex:e)\nbogus(ex:x, ex:y)\nendDocument";
        let err = from_provn(src).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "entity(ex:e)",
            "document entity(ex:e)", // missing endDocument
            "document\nentity(noColon)\nendDocument",
            "document\nused(ex:a)\nendDocument", // missing object
            "document\nentity(ex:e, [k=])\nendDocument",
        ] {
            assert!(from_provn(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn yprov4ml_output_parses() {
        // The exact shape the provenance library emits.
        let mut doc = ProvDocument::new();
        doc.namespaces_mut()
            .register("yprov4ml", crate::qname::YPROV_NS)
            .unwrap();
        doc.namespaces_mut()
            .register("exp", "https://yprov.example.org/experiments/t#")
            .unwrap();
        doc.activity(QName::new("exp", "run-1"))
            .prov_type(QName::yprov("RunExecution"))
            .attr(QName::new("exp", "param/lr"), AttrValue::Double(1e-3));
        doc.agent(QName::yprov("yprov4ml-library"))
            .prov_type(QName::prov("SoftwareAgent"));
        doc.was_associated_with(QName::new("exp", "run-1"), QName::yprov("yprov4ml-library"));
        let text = to_provn(&doc);
        let parsed = from_provn(&text).unwrap();
        assert_eq!(parsed.element_count(), 2);
        assert_eq!(parsed.relation_count(), 1);
    }
}
