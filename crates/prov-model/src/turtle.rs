//! PROV-O (RDF) serialization as Turtle.
//!
//! The third serialization of the W3C PROV family (Table 2 lists
//! "PROV-N, PROV-JSON, PROV-O (RDF)"). Elements become RDF resources
//! typed `prov:Entity` / `prov:Activity` / `prov:Agent`; unqualified
//! relations map to the PROV-O object properties (`prov:used`,
//! `prov:wasGeneratedBy`, ...); relations carrying an id, time, role or
//! other attributes expand into the qualified pattern
//! (`prov:qualifiedUsage [ a prov:Usage; prov:entity ...; ... ]`).

use crate::document::ProvDocument;
use crate::qname::QName;
use crate::record::ElementKind;
use crate::relation::{Relation, RelationKind};
use crate::value::AttrValue;
use std::fmt::Write as _;

/// PROV-O object property for an unqualified relation.
fn object_property(kind: RelationKind) -> &'static str {
    use RelationKind::*;
    match kind {
        Used => "prov:used",
        WasGeneratedBy => "prov:wasGeneratedBy",
        WasInformedBy => "prov:wasInformedBy",
        WasStartedBy => "prov:wasStartedBy",
        WasEndedBy => "prov:wasEndedBy",
        WasInvalidatedBy => "prov:wasInvalidatedBy",
        WasDerivedFrom => "prov:wasDerivedFrom",
        WasAttributedTo => "prov:wasAttributedTo",
        WasAssociatedWith => "prov:wasAssociatedWith",
        ActedOnBehalfOf => "prov:actedOnBehalfOf",
        WasInfluencedBy => "prov:wasInfluencedBy",
        SpecializationOf => "prov:specializationOf",
        AlternateOf => "prov:alternateOf",
        HadMember => "prov:hadMember",
    }
}

/// PROV-O qualified-influence class and its object property, for
/// relations that carry attributes. `None` for the relation kinds
/// PROV-O does not qualify (specialization/alternate/membership).
fn qualified_form(kind: RelationKind) -> Option<(&'static str, &'static str, &'static str)> {
    use RelationKind::*;
    // (qualified property, influence class, object pointer property)
    match kind {
        Used => Some(("prov:qualifiedUsage", "prov:Usage", "prov:entity")),
        WasGeneratedBy => Some((
            "prov:qualifiedGeneration",
            "prov:Generation",
            "prov:activity",
        )),
        WasInformedBy => Some((
            "prov:qualifiedCommunication",
            "prov:Communication",
            "prov:activity",
        )),
        WasStartedBy => Some(("prov:qualifiedStart", "prov:Start", "prov:entity")),
        WasEndedBy => Some(("prov:qualifiedEnd", "prov:End", "prov:entity")),
        WasInvalidatedBy => Some((
            "prov:qualifiedInvalidation",
            "prov:Invalidation",
            "prov:activity",
        )),
        WasDerivedFrom => Some(("prov:qualifiedDerivation", "prov:Derivation", "prov:entity")),
        WasAttributedTo => Some((
            "prov:qualifiedAttribution",
            "prov:Attribution",
            "prov:agent",
        )),
        WasAssociatedWith => Some((
            "prov:qualifiedAssociation",
            "prov:Association",
            "prov:agent",
        )),
        ActedOnBehalfOf => Some(("prov:qualifiedDelegation", "prov:Delegation", "prov:agent")),
        WasInfluencedBy => Some((
            "prov:qualifiedInfluence",
            "prov:Influence",
            "prov:influencer",
        )),
        SpecializationOf | AlternateOf | HadMember => None,
    }
}

fn turtle_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

fn literal(v: &AttrValue) -> String {
    match v {
        AttrValue::String(s) => format!("\"{}\"", turtle_escape(s)),
        AttrValue::LangString(s, lang) => format!("\"{}\"@{lang}", turtle_escape(s)),
        AttrValue::Int(i) => format!("\"{i}\"^^xsd:long"),
        AttrValue::Double(d) => format!("\"{}\"^^xsd:double", crate::value::format_double(*d)),
        AttrValue::Bool(b) => format!("\"{b}\"^^xsd:boolean"),
        AttrValue::QualifiedName(q) => q.to_string(),
        AttrValue::DateTime(t) => format!("\"{t}\"^^xsd:dateTime"),
        AttrValue::Typed(s, ty) => format!("\"{}\"^^{ty}", turtle_escape(s)),
    }
}

fn type_iri(kind: ElementKind) -> &'static str {
    match kind {
        ElementKind::Entity => "prov:Entity",
        ElementKind::Activity => "prov:Activity",
        ElementKind::Agent => "prov:Agent",
    }
}

/// Whether a relation needs the qualified pattern (has more than the
/// two formal arguments).
fn needs_qualification(rel: &Relation) -> bool {
    rel.id.is_some() || rel.time.is_some() || !rel.extras.is_empty() || !rel.attributes.is_empty()
}

/// Serializes the document as Turtle (PROV-O). Bundles become named
/// graphs in TriG style comments; their triples are emitted flattened
/// with a `prov:bundledIn` pointer (keeping the output plain Turtle).
pub fn to_turtle(doc: &ProvDocument) -> String {
    let mut out = String::new();
    out.push_str("@prefix prov: <http://www.w3.org/ns/prov#> .\n");
    out.push_str("@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n");
    out.push_str("@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n");
    for ns in doc.namespaces().iter() {
        let _ = writeln!(out, "@prefix {}: <{}> .", ns.prefix, ns.iri);
    }
    if let Some(d) = doc.namespaces().default_ns() {
        let _ = writeln!(out, "@prefix : <{d}> .");
    }
    out.push('\n');
    write_body(doc, &mut out, None);
    out
}

fn write_body(doc: &ProvDocument, out: &mut String, bundle: Option<&QName>) {
    let mut blank = 0usize;
    for el in doc.iter_elements() {
        let _ = write!(out, "{} a {}", el.id, type_iri(el.kind));
        for (key, values) in &el.attributes {
            for v in values {
                let predicate = match key.to_string().as_str() {
                    "prov:label" => "rdfs:label".to_string(),
                    "prov:type" => "a".to_string(),
                    other => other.to_string(),
                };
                if predicate == "a" {
                    let _ = write!(out, " ;\n    a {}", literal_as_resource(v));
                } else {
                    let _ = write!(out, " ;\n    {predicate} {}", literal(v));
                }
            }
        }
        if let Some(b) = bundle {
            let _ = write!(out, " ;\n    prov:bundledIn {b}");
        }
        out.push_str(" .\n");
    }
    out.push('\n');

    for rel in doc.relations() {
        if !needs_qualification(rel) {
            let _ = writeln!(
                out,
                "{} {} {} .",
                rel.subject,
                object_property(rel.kind),
                rel.object
            );
            continue;
        }
        match qualified_form(rel.kind) {
            None => {
                // Non-qualifiable kinds fall back to the plain triple;
                // their extra attributes cannot be expressed in PROV-O.
                let _ = writeln!(
                    out,
                    "{} {} {} .",
                    rel.subject,
                    object_property(rel.kind),
                    rel.object
                );
            }
            Some((qualified_prop, influence_class, pointer)) => {
                // Also keep the unqualified shortcut triple (PROV-O
                // recommends asserting both).
                let _ = writeln!(
                    out,
                    "{} {} {} .",
                    rel.subject,
                    object_property(rel.kind),
                    rel.object
                );
                let node = match &rel.id {
                    Some(id) => id.to_string(),
                    None => {
                        blank += 1;
                        format!("_:q{blank}")
                    }
                };
                let _ = writeln!(out, "{} {qualified_prop} {node} .", rel.subject);
                let _ = write!(
                    out,
                    "{node} a {influence_class} ;\n    {pointer} {}",
                    rel.object
                );
                if let Some(t) = rel.time {
                    let _ = write!(out, " ;\n    prov:atTime \"{t}\"^^xsd:dateTime");
                }
                for (key, target) in &rel.extras {
                    // prov:plan, prov:starter, ... keep their names.
                    let _ = write!(out, " ;\n    {key} {target}");
                }
                for (key, values) in &rel.attributes {
                    for v in values {
                        let predicate = if key.to_string() == "prov:role" {
                            "prov:hadRole".to_string()
                        } else {
                            key.to_string()
                        };
                        let _ = write!(out, " ;\n    {predicate} {}", literal(v));
                    }
                }
                out.push_str(" .\n");
            }
        }
    }

    for (name, inner) in doc.iter_bundles() {
        let _ = writeln!(out, "\n{name} a prov:Bundle .");
        write_body(inner, out, Some(name));
    }
}

fn literal_as_resource(v: &AttrValue) -> String {
    match v {
        AttrValue::QualifiedName(q) => q.to_string(),
        other => literal(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XsdDateTime;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    fn sample() -> ProvDocument {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("data")).label("input data");
        doc.entity(q("model")).prov_type(q("Model"));
        doc.activity(q("train"));
        doc.agent(q("alice"));
        doc.used(q("train"), q("data"));
        doc.was_generated_by(q("model"), q("train"));
        doc.was_associated_with(q("train"), q("alice"));
        doc
    }

    #[test]
    fn prefixes_and_types_emitted() {
        let ttl = to_turtle(&sample());
        assert!(ttl.contains("@prefix prov: <http://www.w3.org/ns/prov#> ."));
        assert!(ttl.contains("@prefix ex: <http://ex/> ."));
        assert!(ttl.contains("ex:data a prov:Entity"));
        assert!(ttl.contains("ex:train a prov:Activity"));
        assert!(ttl.contains("ex:alice a prov:Agent"));
    }

    #[test]
    fn unqualified_relations_are_single_triples() {
        let ttl = to_turtle(&sample());
        assert!(ttl.contains("ex:train prov:used ex:data ."));
        assert!(ttl.contains("ex:model prov:wasGeneratedBy ex:train ."));
        assert!(ttl.contains("ex:train prov:wasAssociatedWith ex:alice ."));
        assert!(
            !ttl.contains("prov:qualifiedUsage"),
            "no attributes, no qualification"
        );
    }

    #[test]
    fn labels_become_rdfs_label() {
        let ttl = to_turtle(&sample());
        assert!(ttl.contains("rdfs:label \"input data\""));
    }

    #[test]
    fn prov_types_become_rdf_types() {
        let ttl = to_turtle(&sample());
        assert!(ttl.contains("ex:model a prov:Entity ;\n    a ex:Model ."));
    }

    #[test]
    fn attributed_relations_use_qualified_pattern() {
        let mut doc = sample();
        doc.used(q("train"), q("data"))
            .add_attr(QName::prov("role"), AttrValue::from("training-input"));
        let ttl = to_turtle(&doc);
        assert!(ttl.contains("prov:qualifiedUsage"));
        assert!(ttl.contains("a prov:Usage"));
        assert!(ttl.contains("prov:hadRole \"training-input\""));
        // The shortcut triple coexists with the qualified form.
        assert!(ttl.contains("ex:train prov:used ex:data ."));
    }

    #[test]
    fn timed_relations_carry_at_time() {
        let mut doc = ProvDocument::new();
        doc.was_started_by(q("act"), q("trigger"), Some(XsdDateTime::new(60, 0)));
        let ttl = to_turtle(&doc);
        assert!(ttl.contains("prov:qualifiedStart"));
        assert!(ttl.contains("prov:atTime \"1970-01-01T00:01:00Z\"^^xsd:dateTime"));
    }

    #[test]
    fn association_plan_is_kept() {
        let mut doc = ProvDocument::new();
        let rel = Relation::new(RelationKind::WasAssociatedWith, q("run"), q("user"))
            .with_extra("prov:plan", q("script"));
        doc.add_relation(rel);
        let ttl = to_turtle(&doc);
        assert!(ttl.contains("prov:qualifiedAssociation"));
        assert!(ttl.contains("prov:plan ex:script"));
    }

    #[test]
    fn named_qualified_nodes_use_relation_id() {
        let mut doc = ProvDocument::new();
        let rel = Relation::new(RelationKind::Used, q("a"), q("e"))
            .with_id(q("use1"))
            .with_time(XsdDateTime::new(0, 0));
        doc.add_relation(rel);
        let ttl = to_turtle(&doc);
        assert!(ttl.contains("ex:a prov:qualifiedUsage ex:use1 ."));
        assert!(ttl.contains("ex:use1 a prov:Usage"));
    }

    #[test]
    fn literals_escape_and_type() {
        let mut doc = ProvDocument::new();
        doc.entity(q("e"))
            .attr(q("note"), AttrValue::from("say \"hi\"\nline2"))
            .attr(q("count"), AttrValue::Int(7))
            .attr(q("ratio"), AttrValue::Double(0.5))
            .attr(q("flag"), AttrValue::Bool(true));
        let ttl = to_turtle(&doc);
        assert!(ttl.contains(r#""say \"hi\"\nline2""#));
        assert!(ttl.contains("\"7\"^^xsd:long"));
        assert!(ttl.contains("\"0.5\"^^xsd:double"));
        assert!(ttl.contains("\"true\"^^xsd:boolean"));
    }

    #[test]
    fn bundles_flatten_with_pointer() {
        let mut doc = ProvDocument::new();
        doc.bundle(q("b")).entity(q("inner"));
        let ttl = to_turtle(&doc);
        assert!(ttl.contains("ex:b a prov:Bundle ."));
        assert!(ttl.contains("ex:inner a prov:Entity ;\n    prov:bundledIn ex:b ."));
    }

    #[test]
    fn every_relation_kind_serializes() {
        let mut doc = ProvDocument::new();
        for kind in RelationKind::all() {
            doc.add_relation(Relation::new(*kind, q("s"), q("o")));
        }
        let ttl = to_turtle(&doc);
        for kind in RelationKind::all() {
            assert!(
                ttl.contains(object_property(*kind)),
                "missing {}",
                object_property(*kind)
            );
        }
    }
}
