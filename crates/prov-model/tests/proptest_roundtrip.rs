//! Property-based tests: PROV-JSON round-trips are lossless for
//! arbitrarily generated documents.

use proptest::prelude::*;
use prov_model::{AttrValue, ProvDocument, QName, RelationKind, XsdDateTime};

fn arb_local() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,12}"
}

fn arb_qname() -> impl Strategy<Value = QName> {
    arb_local().prop_map(|l| QName::new("ex", l))
}

fn arb_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        "[ -~]{0,24}".prop_map(AttrValue::String),
        any::<i64>().prop_map(AttrValue::Int),
        any::<f64>().prop_map(AttrValue::Double),
        any::<bool>().prop_map(AttrValue::Bool),
        arb_qname().prop_map(AttrValue::QualifiedName),
        (-4_000_000_000i64..4_000_000_000i64, 0u32..1_000_000)
            .prop_map(|(s, us)| AttrValue::DateTime(XsdDateTime::new(s, us))),
        ("[ -~]{0,16}", arb_local())
            .prop_map(|(s, t)| AttrValue::Typed(s, QName::new("ex", format!("t{t}")))),
    ]
}

fn arb_relation_kind() -> impl Strategy<Value = RelationKind> {
    prop::sample::select(RelationKind::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn attribute_value_roundtrips(v in arb_value()) {
        let json = prov_model::json::value_to_json(&v);
        let back = prov_model::json::value_from_json(&json).unwrap();
        // NaN breaks PartialEq; compare through the typed lexical form.
        match (&v, &back) {
            (AttrValue::Double(a), AttrValue::Double(b)) => {
                prop_assert!(a.total_cmp(b) == std::cmp::Ordering::Equal,
                    "double {a:?} -> {b:?}");
            }
            _ => prop_assert_eq!(&v, &back),
        }
    }

    #[test]
    fn document_roundtrips(
        entities in prop::collection::btree_set(arb_local(), 0..8),
        activities in prop::collection::btree_set(arb_local(), 0..8),
        attrs in prop::collection::vec((arb_local(), arb_value()), 0..12),
        rels in prop::collection::vec((arb_relation_kind(), arb_local(), arb_local()), 0..10),
    ) {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();

        let entities: Vec<String> = entities.into_iter().map(|e| format!("e_{e}")).collect();
        let activities: Vec<String> = activities.into_iter().map(|a| format!("a_{a}")).collect();
        for e in &entities {
            doc.entity(QName::new("ex", e));
        }
        for a in &activities {
            doc.activity(QName::new("ex", a));
        }
        // Attach attributes to the first entity if any.
        if let Some(first) = entities.first() {
            for (k, v) in &attrs {
                // NaN values break Vec::contains-based dedup in absorb();
                // documents still roundtrip, but equality comparison would
                // be vacuous, so skip NaN here (covered by the value test).
                if matches!(v, AttrValue::Double(d) if d.is_nan()) { continue; }
                doc.entity(QName::new("ex", first))
                    .attr(QName::new("ex", format!("k_{k}")), v.clone());
            }
        }
        for (kind, s, o) in &rels {
            doc.add_relation(prov_model::Relation::new(
                *kind,
                QName::new("ex", format!("s_{s}")),
                QName::new("ex", format!("o_{o}")),
            ));
        }

        let json = doc.to_json_string().unwrap();
        let mut back = ProvDocument::from_json_str(&json).unwrap();
        let mut orig = doc.clone();
        orig.canonicalize();
        back.canonicalize();
        prop_assert_eq!(orig, back);
    }

    #[test]
    fn provn_roundtrips_documents(
        entities in prop::collection::btree_set(arb_local(), 0..8),
        rels in prop::collection::vec((arb_relation_kind(), arb_local(), arb_local()), 0..8),
        labels in prop::collection::vec("[ -~&&[^\\\\\"]]{0,16}", 0..4),
    ) {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        let entities: Vec<String> = entities.into_iter().map(|e| format!("e_{e}")).collect();
        for (i, e) in entities.iter().enumerate() {
            let b = doc.entity(QName::new("ex", e));
            if let Some(l) = labels.get(i % labels.len().max(1)) {
                if !l.is_empty() {
                    b.label(l.clone());
                }
            }
        }
        for (kind, s, o) in &rels {
            doc.add_relation(prov_model::Relation::new(
                *kind,
                QName::new("ex", format!("s_{s}")),
                QName::new("ex", format!("o_{o}")),
            ));
        }
        let text = prov_model::provn::to_provn(&doc);
        let mut parsed = prov_model::provn_parse::from_provn(&text).unwrap();
        let mut orig = doc.clone();
        orig.canonicalize();
        parsed.canonicalize();
        prop_assert_eq!(orig, parsed, "PROV-N text:\n{}", text);
    }

    #[test]
    fn turtle_writer_never_panics(
        entities in prop::collection::btree_set(arb_local(), 0..8),
        attrs in prop::collection::vec((arb_local(), arb_value()), 0..8),
        rels in prop::collection::vec((arb_relation_kind(), arb_local(), arb_local()), 0..8),
    ) {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        for e in &entities {
            doc.entity(QName::new("ex", format!("e_{e}")));
        }
        if let Some(first) = entities.iter().next() {
            for (k, v) in &attrs {
                doc.entity(QName::new("ex", format!("e_{first}")))
                    .attr(QName::new("ex", format!("k_{k}")), v.clone());
            }
        }
        for (kind, s, o) in &rels {
            doc.add_relation(prov_model::Relation::new(
                *kind,
                QName::new("ex", format!("s_{s}")),
                QName::new("ex", format!("o_{o}")),
            ));
        }
        let ttl = prov_model::turtle::to_turtle(&doc);
        prop_assert!(ttl.contains("@prefix prov:"));
    }

    #[test]
    fn provn_parser_never_panics_on_garbage(text in "[ -~\\n]{0,300}") {
        let _ = prov_model::provn_parse::from_provn(&text); // must not panic
    }

    #[test]
    fn provjson_parser_never_panics_on_arbitrary_json(
        keys in prop::collection::vec("[a-zA-Z:@$_]{1,12}", 0..8),
        values in prop::collection::vec(prop_oneof![
            any::<i64>().prop_map(|i| serde_json::json!(i)),
            "[ -~]{0,20}".prop_map(|s| serde_json::json!(s)),
            Just(serde_json::json!(null)),
            Just(serde_json::json!([1, "x", {}])),
            Just(serde_json::json!({"$": 5})),
            Just(serde_json::json!({"$": "x", "type": 7})),
        ], 0..8),
    ) {
        // Structured garbage at both nesting levels.
        let mut top = serde_json::Map::new();
        for (k, v) in keys.iter().zip(&values) {
            top.insert(k.clone(), v.clone());
        }
        let _ = ProvDocument::from_json(&serde_json::Value::Object(top.clone()));
        // And as element blocks with garbage attribute objects.
        let nested = serde_json::json!({
            "entity": top,
            "used": { "_:id1": top },
        });
        let _ = ProvDocument::from_json(&nested); // must not panic
    }

    #[test]
    fn serialization_is_idempotent(
        names in prop::collection::btree_set(arb_local(), 1..6),
    ) {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        let names: Vec<String> = names.into_iter().collect();
        for w in names.windows(2) {
            doc.entity(QName::new("ex", &w[0]));
            doc.entity(QName::new("ex", &w[1]));
            doc.was_derived_from(QName::new("ex", &w[0]), QName::new("ex", &w[1]));
        }
        let j1 = doc.to_json();
        let j2 = ProvDocument::from_json(&j1).unwrap().to_json();
        prop_assert_eq!(j1, j2);
    }

    #[test]
    fn datetime_parse_format_roundtrip(s in -10_000_000_000i64..10_000_000_000, us in 0u32..1_000_000) {
        let t = XsdDateTime::new(s, us);
        let back = XsdDateTime::parse(&t.to_string()).unwrap();
        prop_assert_eq!(t, back);
    }
}
