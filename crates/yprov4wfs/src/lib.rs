//! # yprov4wfs
//!
//! The workflow counterpart of the run-level logger — the paper's
//! *yProv4WFs*, which "allows for higher level pairing in tasks run
//! also through workflow management systems".
//!
//! A [`Workflow`] is a DAG of named tasks. The [`executor`] runs ready
//! tasks in parallel (one thread per ready task, gated by a
//! dependency counter), pipes each task's named output artifacts to its
//! dependents, and records the whole execution as one W3C PROV
//! document: the workflow is an activity, every task a sub-activity
//! `wasInformedBy` its dependencies, every artifact an entity with
//! `used` / `wasGeneratedBy` edges and a SHA-256 digest — the same
//! vocabulary yProv4ML uses at run level, so workflow- and run-level
//! provenance merge into one lineage graph.
//!
//! ```
//! use yprov4wfs::{Workflow, TaskOutcome};
//!
//! let mut wf = Workflow::new("etl");
//! wf.task("extract", [], |_ctx| {
//!     Ok(TaskOutcome::new().output("raw.csv", b"a,b\n1,2".to_vec()))
//! });
//! wf.task("transform", ["extract"], |ctx| {
//!     let raw = ctx.input("extract", "raw.csv").expect("dependency output");
//!     Ok(TaskOutcome::new().output("clean.csv", raw.to_ascii_uppercase()))
//! });
//! let report = yprov4wfs::executor::run(wf).unwrap();
//! assert!(report.succeeded());
//! assert!(report.document.relation_count() > 0);
//! ```

pub mod executor;
pub mod workflow;

pub use executor::{run, TaskStatus, WorkflowError, WorkflowReport};
pub use workflow::{TaskCtx, TaskOutcome, Workflow};
