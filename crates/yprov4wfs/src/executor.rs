//! Parallel DAG execution with provenance capture.

use crate::workflow::{TaskCtx, TaskDef, TaskOutcome, Workflow};
use prov_model::{AttrValue, ProvDocument, QName, XsdDateTime};
use std::collections::BTreeMap;
use std::sync::mpsc;

/// Why a workflow could not run at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkflowError(pub String);

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "workflow error: {}", self.0)
    }
}
impl std::error::Error for WorkflowError {}

/// Terminal state of one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskStatus {
    /// Ran and returned outputs.
    Succeeded,
    /// Ran and returned an error.
    Failed(String),
    /// Never ran because a dependency failed.
    Skipped,
}

/// The result of executing a workflow.
pub struct WorkflowReport {
    /// Workflow name.
    pub name: String,
    /// Terminal status per task.
    pub statuses: BTreeMap<String, TaskStatus>,
    /// Outputs of the successful tasks.
    pub outcomes: BTreeMap<String, TaskOutcome>,
    /// The provenance document of the execution.
    pub document: ProvDocument,
}

impl WorkflowReport {
    /// True when every task succeeded.
    pub fn succeeded(&self) -> bool {
        self.statuses.values().all(|s| *s == TaskStatus::Succeeded)
    }

    /// Names of failed tasks.
    pub fn failed_tasks(&self) -> Vec<&str> {
        self.statuses
            .iter()
            .filter(|(_, s)| matches!(s, TaskStatus::Failed(_)))
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// Executes the workflow, running ready tasks concurrently.
///
/// Scheduling: a task becomes *ready* when all dependencies succeeded;
/// ready tasks each get a thread (workflow widths are small — tasks are
/// coarse pipeline stages, not kernels). When a task fails, its
/// transitive dependents are skipped but independent branches keep
/// running — and the provenance records all three outcomes.
pub fn run(workflow: Workflow) -> Result<WorkflowReport, WorkflowError> {
    workflow.validate().map_err(WorkflowError)?;
    let wf_name = workflow.name.clone();
    let started = XsdDateTime::now();

    let mut pending: BTreeMap<String, TaskDef> = workflow
        .tasks
        .into_iter()
        .map(|t| (t.name.clone(), t))
        .collect();
    let deps_of: BTreeMap<String, Vec<String>> = pending
        .iter()
        .map(|(n, t)| (n.clone(), t.deps.clone()))
        .collect();

    let mut statuses: BTreeMap<String, TaskStatus> = BTreeMap::new();
    let mut outcomes: BTreeMap<String, TaskOutcome> = BTreeMap::new();
    let mut spans: BTreeMap<String, (XsdDateTime, XsdDateTime)> = BTreeMap::new();

    let (tx, rx) = mpsc::channel::<(
        String,
        Result<TaskOutcome, String>,
        XsdDateTime,
        XsdDateTime,
    )>();
    let mut running = 0usize;

    std::thread::scope(|scope| {
        loop {
            // Launch every ready task.
            let ready: Vec<String> = pending
                .keys()
                .filter(|name| {
                    deps_of[*name]
                        .iter()
                        .all(|d| statuses.get(d) == Some(&TaskStatus::Succeeded))
                })
                .cloned()
                .collect();
            for name in ready {
                let task = pending.remove(&name).expect("ready task is pending");
                // Snapshot the dependency outputs this task may read.
                let upstream: BTreeMap<String, TaskOutcome> = task
                    .deps
                    .iter()
                    .filter_map(|d| outcomes.get(d).map(|o| (d.clone(), o.clone())))
                    .collect();
                let tx = tx.clone();
                running += 1;
                scope.spawn(move || {
                    let start = XsdDateTime::now();
                    let ctx = TaskCtx {
                        upstream: &upstream,
                    };
                    let result = (task.body)(&ctx);
                    let end = XsdDateTime::now();
                    let _ = tx.send((task.name, result, start, end));
                });
            }

            // Skip tasks whose dependencies can no longer all succeed —
            // to a fixpoint, since skipping a task dooms its own
            // dependents in turn.
            loop {
                let doomed: Vec<String> = pending
                    .keys()
                    .filter(|name| {
                        deps_of[*name].iter().any(|d| {
                            matches!(
                                statuses.get(d),
                                Some(TaskStatus::Failed(_)) | Some(TaskStatus::Skipped)
                            )
                        })
                    })
                    .cloned()
                    .collect();
                if doomed.is_empty() {
                    break;
                }
                for name in doomed {
                    pending.remove(&name);
                    statuses.insert(name, TaskStatus::Skipped);
                }
            }

            if running == 0 {
                break;
            }
            // Collect one completion, then re-evaluate readiness.
            let (name, result, start, end) = rx.recv().expect("running tasks hold senders");
            running -= 1;
            spans.insert(name.clone(), (start, end));
            match result {
                Ok(outcome) => {
                    outcomes.insert(name.clone(), outcome);
                    statuses.insert(name, TaskStatus::Succeeded);
                }
                Err(msg) => {
                    statuses.insert(name, TaskStatus::Failed(msg));
                }
            }
        }
    });

    let document = build_document(&wf_name, started, &deps_of, &statuses, &outcomes, &spans);
    Ok(WorkflowReport {
        name: wf_name,
        statuses,
        outcomes,
        document,
    })
}

fn build_document(
    wf_name: &str,
    started: XsdDateTime,
    deps_of: &BTreeMap<String, Vec<String>>,
    statuses: &BTreeMap<String, TaskStatus>,
    outcomes: &BTreeMap<String, TaskOutcome>,
    spans: &BTreeMap<String, (XsdDateTime, XsdDateTime)>,
) -> ProvDocument {
    let mut doc = ProvDocument::new();
    doc.namespaces_mut()
        .register("yprov4ml", prov_model::qname::YPROV_NS)
        .expect("static namespace");
    doc.namespaces_mut()
        .register(
            "wf",
            format!("https://yprov.example.org/workflows/{wf_name}#"),
        )
        .expect("valid prefix");

    let wf_activity = QName::new("wf", wf_name);
    doc.activity(wf_activity.clone())
        .prov_type(QName::yprov("Workflow"))
        .label(wf_name.to_string())
        .start_time(started)
        .end_time(XsdDateTime::now());

    let engine = QName::yprov("yprov4wfs-engine");
    doc.agent(engine.clone())
        .prov_type(QName::prov("SoftwareAgent"))
        .label(format!("yprov4wfs {}", env!("CARGO_PKG_VERSION")));
    doc.was_associated_with(wf_activity.clone(), engine);

    for (name, status) in statuses {
        let task_activity = QName::new("wf", format!("task/{name}"));
        {
            let mut b = doc
                .activity(task_activity.clone())
                .prov_type(QName::yprov("Task"))
                .label(name.clone())
                .attr(
                    QName::yprov("status"),
                    AttrValue::String(match status {
                        TaskStatus::Succeeded => "succeeded".into(),
                        TaskStatus::Failed(m) => format!("failed: {m}"),
                        TaskStatus::Skipped => "skipped".into(),
                    }),
                );
            if let Some((s, e)) = spans.get(name) {
                b = b.start_time(*s).end_time(*e);
            }
            if let Some(outcome) = outcomes.get(name) {
                for (k, v) in &outcome.params {
                    b = b.attr(
                        QName::new("wf", format!("param/{k}")),
                        AttrValue::String(v.clone()),
                    );
                }
            }
        }
        doc.was_informed_by(task_activity.clone(), wf_activity.clone());
        for dep in &deps_of[name] {
            doc.was_informed_by(
                task_activity.clone(),
                QName::new("wf", format!("task/{dep}")),
            );
        }

        // Output artifacts, and `used` edges from dependents.
        if let Some(outcome) = outcomes.get(name) {
            for (out_name, bytes) in &outcome.outputs {
                let entity = QName::new("wf", format!("artifact/{name}/{out_name}"));
                doc.entity(entity.clone())
                    .prov_type(QName::yprov("Artifact"))
                    .label(out_name.clone())
                    .attr(
                        QName::yprov("sha256"),
                        AttrValue::String(yprov4ml::hash::sha256_hex(bytes)),
                    )
                    .attr(QName::yprov("bytes"), AttrValue::Int(bytes.len() as i64));
                doc.was_generated_by(entity, task_activity.clone());
            }
        }
    }

    // used edges: every task uses every output of its dependencies that
    // actually ran.
    for (name, deps) in deps_of {
        if statuses.get(name) != Some(&TaskStatus::Succeeded) {
            continue;
        }
        let task_activity = QName::new("wf", format!("task/{name}"));
        for dep in deps {
            if let Some(outcome) = outcomes.get(dep) {
                for out_name in outcome.outputs.keys() {
                    doc.used(
                        task_activity.clone(),
                        QName::new("wf", format!("artifact/{dep}/{out_name}")),
                    );
                }
            }
        }
    }

    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::Workflow;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn diamond_runs_in_dependency_order() {
        let order = Arc::new(parking_lot::Mutex::new(Vec::<String>::new()));
        let mut wf = Workflow::new("diamond");
        for (name, deps) in [
            ("a", vec![]),
            ("b", vec!["a"]),
            ("c", vec!["a"]),
            ("d", vec!["b", "c"]),
        ] {
            let order = Arc::clone(&order);
            let name_owned = name.to_string();
            match deps.len() {
                0 => wf.task(name, [], move |_| {
                    order.lock().push(name_owned);
                    Ok(TaskOutcome::new().output("o", b"x".to_vec()))
                }),
                1 => wf.task(name, [deps[0]], move |_| {
                    order.lock().push(name_owned);
                    Ok(TaskOutcome::new().output("o", b"x".to_vec()))
                }),
                _ => wf.task(name, [deps[0], deps[1]], move |_| {
                    order.lock().push(name_owned);
                    Ok(TaskOutcome::new().output("o", b"x".to_vec()))
                }),
            };
        }
        let report = run(wf).unwrap();
        assert!(report.succeeded());
        let order = order.lock();
        let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
        assert!(pos("a") < pos("b"));
        assert!(pos("a") < pos("c"));
        assert!(pos("b") < pos("d"));
        assert!(pos("c") < pos("d"));
    }

    #[test]
    fn data_flows_between_tasks() {
        let mut wf = Workflow::new("flow");
        wf.task("src", [], |_| {
            Ok(TaskOutcome::new().output("nums", b"1,2,3".to_vec()))
        });
        wf.task("sum", ["src"], |ctx| {
            let raw = ctx.input("src", "nums").ok_or("missing input")?;
            let total: i64 = std::str::from_utf8(raw)
                .map_err(|e| e.to_string())?
                .split(',')
                .map(|n| n.parse::<i64>().unwrap_or(0))
                .sum();
            Ok(TaskOutcome::new()
                .output("total", total.to_string().into_bytes())
                .param("total", total))
        });
        let report = run(wf).unwrap();
        assert_eq!(report.outcomes["sum"].outputs["total"], b"6");
        assert_eq!(report.outcomes["sum"].params["total"], "6");
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        // Two tasks that only finish when both have started (barrier):
        // serial execution would deadlock, parallel completes.
        let gate = Arc::new(std::sync::Barrier::new(2));
        let mut wf = Workflow::new("par");
        for name in ["left", "right"] {
            let gate = Arc::clone(&gate);
            wf.task(name, [], move |_| {
                gate.wait();
                Ok(TaskOutcome::new())
            });
        }
        let report = run(wf).unwrap();
        assert!(report.succeeded());
    }

    #[test]
    fn failure_skips_dependents_but_not_siblings() {
        let ran = Arc::new(AtomicUsize::new(0));
        let mut wf = Workflow::new("partial");
        wf.task("boom", [], |_| Err("disk on fire".into()));
        wf.task("after_boom", ["boom"], |_| Ok(TaskOutcome::new()));
        wf.task("deeper", ["after_boom"], |_| Ok(TaskOutcome::new()));
        {
            let ran = Arc::clone(&ran);
            wf.task("independent", [], move |_| {
                ran.fetch_add(1, Ordering::SeqCst);
                Ok(TaskOutcome::new())
            });
        }
        let report = run(wf).unwrap();
        assert!(!report.succeeded());
        assert_eq!(report.failed_tasks(), vec!["boom"]);
        assert_eq!(report.statuses["after_boom"], TaskStatus::Skipped);
        assert_eq!(report.statuses["deeper"], TaskStatus::Skipped);
        assert_eq!(report.statuses["independent"], TaskStatus::Succeeded);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        // Provenance records all outcomes.
        let doc = &report.document;
        let boom = doc.get(&QName::new("wf", "task/boom")).unwrap();
        assert!(boom
            .attr(&QName::yprov("status"))
            .and_then(|v| v.as_str())
            .unwrap()
            .contains("failed: disk on fire"));
    }

    #[test]
    fn provenance_captures_lineage_across_tasks() {
        let mut wf = Workflow::new("lineage");
        wf.task("prep", [], |_| {
            Ok(TaskOutcome::new().output("clean.bin", b"clean".to_vec()))
        });
        wf.task("train", ["prep"], |ctx| {
            let _ = ctx.input("prep", "clean.bin");
            Ok(TaskOutcome::new().output("model.ckpt", b"weights".to_vec()))
        });
        let report = run(wf).unwrap();
        let doc = &report.document;
        assert!(prov_model::validate::is_valid(doc));

        let graph = prov_graph::ProvGraph::new(doc);
        let model = QName::new("wf", "artifact/train/model.ckpt");
        let ancestors = graph.ancestors(&model);
        assert!(
            ancestors.contains(&QName::new("wf", "artifact/prep/clean.bin")),
            "the model must trace back to prep's output; got {ancestors:?}"
        );
        assert!(
            ancestors.contains(&QName::new("wf", "lineage")),
            "and to the workflow"
        );
    }

    #[test]
    fn invalid_workflows_refused() {
        let mut wf = Workflow::new("bad");
        wf.task("a", ["b"], |_| Ok(TaskOutcome::new()));
        wf.task("b", ["a"], |_| Ok(TaskOutcome::new()));
        assert!(run(wf).is_err());
    }

    #[test]
    fn empty_workflow_succeeds_trivially() {
        let report = run(Workflow::new("empty")).unwrap();
        assert!(report.succeeded());
        assert_eq!(report.document.count(prov_model::ElementKind::Activity), 1);
    }

    #[test]
    fn wide_fanout_executes_fully() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut wf = Workflow::new("wide");
        wf.task("root", [], |_| {
            Ok(TaskOutcome::new().output("seed", vec![7]))
        });
        for i in 0..20 {
            let counter = Arc::clone(&counter);
            wf.task(format!("leaf{i}"), ["root"], move |ctx| {
                assert_eq!(ctx.input("root", "seed"), Some([7u8].as_slice()));
                counter.fetch_add(1, Ordering::SeqCst);
                Ok(TaskOutcome::new())
            });
        }
        let report = run(wf).unwrap();
        assert!(report.succeeded());
        assert_eq!(counter.load(Ordering::SeqCst), 20);
        assert_eq!(report.statuses.len(), 21);
    }
}
