//! Workflow definition: named tasks with dependencies and typed
//! outputs.

use std::collections::BTreeMap;

/// What a task produced (named artifacts + one-time parameters).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TaskOutcome {
    /// Named output artifacts.
    pub outputs: BTreeMap<String, Vec<u8>>,
    /// Recorded parameters (become PROV attributes of the task).
    pub params: BTreeMap<String, String>,
}

impl TaskOutcome {
    /// An empty outcome.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an output artifact.
    pub fn output(mut self, name: impl Into<String>, bytes: Vec<u8>) -> Self {
        self.outputs.insert(name.into(), bytes);
        self
    }

    /// Records a parameter.
    pub fn param(mut self, name: impl Into<String>, value: impl ToString) -> Self {
        self.params.insert(name.into(), value.to_string());
        self
    }
}

/// What a running task sees: the outputs of its dependencies.
pub struct TaskCtx<'a> {
    pub(crate) upstream: &'a BTreeMap<String, TaskOutcome>,
}

impl TaskCtx<'_> {
    /// The bytes of `output` produced by dependency `task`, if present.
    pub fn input(&self, task: &str, output: &str) -> Option<&[u8]> {
        self.upstream
            .get(task)
            .and_then(|o| o.outputs.get(output))
            .map(Vec::as_slice)
    }

    /// All `(task, output-name)` pairs visible to this task.
    pub fn available_inputs(&self) -> Vec<(String, String)> {
        self.upstream
            .iter()
            .flat_map(|(t, o)| o.outputs.keys().map(move |k| (t.clone(), k.clone())))
            .collect()
    }
}

type TaskFn = Box<dyn FnOnce(&TaskCtx) -> Result<TaskOutcome, String> + Send>;

pub(crate) struct TaskDef {
    pub name: String,
    pub deps: Vec<String>,
    pub body: TaskFn,
}

/// A DAG of tasks under construction.
pub struct Workflow {
    pub(crate) name: String,
    pub(crate) tasks: Vec<TaskDef>,
}

impl Workflow {
    /// Starts an empty workflow.
    pub fn new(name: impl Into<String>) -> Self {
        Workflow {
            name: name.into(),
            tasks: Vec::new(),
        }
    }

    /// The workflow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tasks defined.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks are defined.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Adds a task depending on `deps` (names of earlier tasks).
    pub fn task<const N: usize>(
        &mut self,
        name: impl Into<String>,
        deps: [&str; N],
        body: impl FnOnce(&TaskCtx) -> Result<TaskOutcome, String> + Send + 'static,
    ) -> &mut Self {
        self.tasks.push(TaskDef {
            name: name.into(),
            deps: deps.iter().map(|d| d.to_string()).collect(),
            body: Box::new(body),
        });
        self
    }

    /// Validates the DAG: unique names, known dependencies, no cycles.
    pub fn validate(&self) -> Result<(), String> {
        let mut names = std::collections::BTreeSet::new();
        for t in &self.tasks {
            if !names.insert(&t.name) {
                return Err(format!("duplicate task name {:?}", t.name));
            }
        }
        for t in &self.tasks {
            for d in &t.deps {
                if !names.contains(d) {
                    return Err(format!("task {:?} depends on unknown task {d:?}", t.name));
                }
                if d == &t.name {
                    return Err(format!("task {:?} depends on itself", t.name));
                }
            }
        }
        // Cycle check: Kahn's algorithm over the name graph.
        let mut indeg: BTreeMap<&String, usize> =
            self.tasks.iter().map(|t| (&t.name, t.deps.len())).collect();
        let mut ready: Vec<&String> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(n, _)| *n)
            .collect();
        let mut seen = 0usize;
        while let Some(n) = ready.pop() {
            seen += 1;
            for t in &self.tasks {
                if t.deps.contains(n) {
                    let slot = indeg.get_mut(&t.name).expect("known task");
                    *slot -= 1;
                    if *slot == 0 {
                        ready.push(&t.name);
                    }
                }
            }
        }
        if seen != self.tasks.len() {
            return Err("workflow contains a dependency cycle".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_validation() {
        let mut wf = Workflow::new("w");
        wf.task("a", [], |_| Ok(TaskOutcome::new()));
        wf.task("b", ["a"], |_| Ok(TaskOutcome::new()));
        assert_eq!(wf.len(), 2);
        assert!(!wf.is_empty());
        wf.validate().unwrap();
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut wf = Workflow::new("w");
        wf.task("a", [], |_| Ok(TaskOutcome::new()));
        wf.task("a", [], |_| Ok(TaskOutcome::new()));
        assert!(wf.validate().is_err());
    }

    #[test]
    fn unknown_and_self_dependencies_rejected() {
        let mut wf = Workflow::new("w");
        wf.task("a", ["ghost"], |_| Ok(TaskOutcome::new()));
        assert!(wf.validate().unwrap_err().contains("unknown"));

        let mut wf = Workflow::new("w");
        wf.task("a", ["a"], |_| Ok(TaskOutcome::new()));
        assert!(wf.validate().is_err());
    }

    #[test]
    fn cycles_rejected() {
        let mut wf = Workflow::new("w");
        wf.task("a", ["b"], |_| Ok(TaskOutcome::new()));
        wf.task("b", ["a"], |_| Ok(TaskOutcome::new()));
        assert!(wf.validate().unwrap_err().contains("cycle"));
    }

    #[test]
    fn outcome_builder() {
        let o = TaskOutcome::new()
            .output("x.bin", vec![1, 2, 3])
            .param("rows", 3);
        assert_eq!(o.outputs["x.bin"], vec![1, 2, 3]);
        assert_eq!(o.params["rows"], "3");
    }

    #[test]
    fn ctx_exposes_upstream() {
        let mut upstream = BTreeMap::new();
        upstream.insert(
            "prep".to_string(),
            TaskOutcome::new().output("data", b"abc".to_vec()),
        );
        let ctx = TaskCtx {
            upstream: &upstream,
        };
        assert_eq!(ctx.input("prep", "data"), Some(b"abc".as_slice()));
        assert_eq!(ctx.input("prep", "missing"), None);
        assert_eq!(ctx.input("ghost", "data"), None);
        assert_eq!(
            ctx.available_inputs(),
            vec![("prep".to_string(), "data".to_string())]
        );
    }
}
