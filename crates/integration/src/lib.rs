//! # integration
//!
//! Glue between the training simulator and the provenance library, plus
//! the repository's runnable examples and cross-crate integration
//! tests.
//!
//! The central export is [`ProvenanceObserver`]: a
//! [`train_sim::TrainObserver`] that logs every simulated step into a
//! [`yprov4ml::Run`] — exactly the coupling the paper establishes
//! between its training loops on Frontier and the yProv4ML logger.

use train_sim::sim::{EpochEvent, RunResult, SimConfig, StepEvent, TrainObserver};
use train_sim::TrainingSimulation;
use yprov4ml::model::Context;
use yprov4ml::{DeltaCadence, DeltaEmitter, Run};

/// Bridges simulator events into provenance records.
pub struct ProvenanceObserver<'a> {
    run: &'a Run,
    /// Log one step in every `log_every` (1 = all steps).
    log_every: u64,
    steps_seen: u64,
}

impl<'a> ProvenanceObserver<'a> {
    /// Logs every step.
    pub fn new(run: &'a Run) -> Self {
        ProvenanceObserver {
            run,
            log_every: 1,
            steps_seen: 0,
        }
    }

    /// Logs one step out of every `log_every` (plus all epoch events).
    pub fn with_stride(run: &'a Run, log_every: u64) -> Self {
        ProvenanceObserver {
            run,
            log_every: log_every.max(1),
            steps_seen: 0,
        }
    }
}

impl TrainObserver for ProvenanceObserver<'_> {
    fn on_run_start(&mut self, cfg: &SimConfig) {
        let run = self.run;
        run.log_param("architecture", cfg.model.arch.name());
        run.log_param("params", cfg.model.params);
        run.log_param("model_size", cfg.model.size_tag());
        run.log_param("layers", cfg.model.layers);
        run.log_param("hidden", cfg.model.hidden);
        run.log_param("gpus", cfg.gpus);
        run.log_param("per_gpu_batch", cfg.per_gpu_batch);
        run.log_param("global_batch", cfg.global_batch());
        run.log_param("epochs", cfg.epochs);
        run.log_param("dataset", cfg.dataset.name.as_str());
        run.log_param("dataset_samples", cfg.dataset.samples);
        run.log_param("machine", cfg.machine.name.as_str());
        run.start_context(Context::Training);
    }

    fn on_step(&mut self, e: &StepEvent) {
        self.steps_seen += 1;
        if !e.step.is_multiple_of(self.log_every) {
            return;
        }
        let t = (e.sim_time_s * 1e6) as i64;
        let run = self.run;
        run.log_metric_at("loss", Context::Training, e.step, e.epoch, t, e.loss);
        run.log_metric_at(
            "gpu_power_w",
            Context::Training,
            e.step,
            e.epoch,
            t,
            e.gpu_power_w,
        );
        run.log_metric_at(
            "gpu_util",
            Context::Training,
            e.step,
            e.epoch,
            t,
            e.gpu_util,
        );
        run.log_metric_at(
            "samples_per_s",
            Context::Training,
            e.step,
            e.epoch,
            t,
            e.samples_per_s,
        );
    }

    fn on_epoch_end(&mut self, e: &EpochEvent) {
        let t = (e.sim_time_s * 1e6) as i64;
        self.run.log_metric_at(
            "epoch_loss",
            Context::Validation,
            e.epoch as u64,
            e.epoch,
            t,
            e.loss,
        );
        self.run.log_metric_at(
            "energy_joules",
            Context::Validation,
            e.epoch as u64,
            e.epoch,
            t,
            e.joules_so_far,
        );
    }

    fn on_run_end(&mut self, r: &RunResult) {
        let run = self.run;
        run.end_context(Context::Training);
        run.log_output_param("final_loss", r.final_loss);
        run.log_output_param("energy_kwh", r.energy_kwh);
        run.log_output_param("walltime_s", r.walltime_s);
        run.log_output_param("steps", r.steps);
        run.log_output_param("samples_seen", r.samples_seen);
        run.log_output_param("completed", r.completed);
        run.log_output_param("loss_energy_product", r.loss_energy_product);
        run.log_output_param("mean_throughput", r.mean_throughput);
    }
}

/// Runs one simulated training job under provenance collection and
/// returns the simulator result (the provenance lives in `run`).
pub fn simulate_with_provenance(
    cfg: SimConfig,
    run: &Run,
    log_every: u64,
) -> Result<RunResult, String> {
    let sim = TrainingSimulation::new(cfg)?;
    let mut observer = ProvenanceObserver::with_stride(run, log_every);
    Ok(sim.run(&mut observer))
}

/// A [`TrainObserver`] that logs like [`ProvenanceObserver`] and, at a
/// [`DeltaCadence`], cuts a cumulative provenance snapshot of the live
/// run and hands it to `sink` — the live-streaming counterpart of the
/// finalize-only pipeline. Point the sink at
/// `yprov_service::client::Client::upload_delta` and a dashboard
/// watching the document sees the run advance epoch by epoch.
pub struct StreamingObserver<'a, F: FnMut(prov_model::ProvDocument)> {
    inner: ProvenanceObserver<'a>,
    run: &'a Run,
    emitter: DeltaEmitter,
    sink: F,
}

impl<'a, F: FnMut(prov_model::ProvDocument)> StreamingObserver<'a, F> {
    /// Observer logging one step in `log_every`, cutting deltas at
    /// `cadence`.
    pub fn new(run: &'a Run, log_every: u64, cadence: DeltaCadence, sink: F) -> Self {
        StreamingObserver {
            inner: ProvenanceObserver::with_stride(run, log_every),
            run,
            emitter: DeltaEmitter::new(cadence),
            sink,
        }
    }

    /// Number of deltas cut so far.
    pub fn deltas_emitted(&self) -> u64 {
        self.emitter.emitted()
    }
}

impl<F: FnMut(prov_model::ProvDocument)> TrainObserver for StreamingObserver<'_, F> {
    fn on_run_start(&mut self, cfg: &SimConfig) {
        self.inner.on_run_start(cfg);
    }

    fn on_step(&mut self, e: &StepEvent) {
        self.inner.on_step(e);
        if self.emitter.observe(e.step, e.epoch) {
            // A snapshot failure (collector gone) means the run is
            // being torn down; dropping the delta is the only sane
            // response mid-loop.
            if let Ok(doc) = self.run.snapshot_document() {
                (self.sink)(doc);
            }
        }
    }

    fn on_epoch_end(&mut self, e: &EpochEvent) {
        self.inner.on_epoch_end(e);
    }

    fn on_run_end(&mut self, r: &RunResult) {
        self.inner.on_run_end(r);
    }
}

/// Runs one simulated training job while streaming per-cadence deltas
/// to a provenance service document. Returns the simulator result and
/// the number of deltas shipped; any failed upload fails the call.
pub fn simulate_streaming_to_service(
    cfg: SimConfig,
    run: &Run,
    log_every: u64,
    cadence: DeltaCadence,
    client: &yprov_service::client::Client,
    document_id: &str,
) -> Result<(RunResult, u64), String> {
    let sim = TrainingSimulation::new(cfg)?;
    let mut errors: Vec<String> = Vec::new();
    let mut observer = StreamingObserver::new(run, log_every, cadence, |doc| {
        let delta = match doc.to_json_string() {
            Ok(json) => json,
            Err(e) => {
                errors.push(format!("serialize delta: {e}"));
                return;
            }
        };
        match client.upload_delta(document_id, &delta) {
            Ok(resp) if resp.status == 200 => {}
            Ok(resp) => errors.push(format!("delta upload answered HTTP {}", resp.status)),
            Err(e) => errors.push(format!("delta upload failed: {e}")),
        }
    });
    let result = sim.run(&mut observer);
    let shipped = observer.deltas_emitted();
    drop(observer);
    if errors.is_empty() {
        Ok((result, shipped))
    } else {
        Err(errors.join("; "))
    }
}

/// Reconstructs a runnable [`SimConfig`] from a run's provenance
/// document — the paper's reproducibility goal ("reproducing an
/// experiment by simply sharing a provJSON file would become trivial").
///
/// Only configurations produced through [`ProvenanceObserver`] carry
/// enough parameters; anything else returns a descriptive error.
pub fn config_from_provenance(doc: &prov_model::ProvDocument) -> Result<SimConfig, String> {
    use train_sim::model::{Architecture, ModelConfig};
    use train_sim::sim::WalltimeCutoff;
    use train_sim::{DatasetSpec, MachineConfig};
    use yprov4ml::compare::RunSummary;

    let summary =
        RunSummary::from_document(doc).ok_or("document does not contain a yprov4ml run")?;
    let get = |key: &str| -> Result<&String, String> {
        summary
            .params
            .get(key)
            .ok_or_else(|| format!("provenance lacks parameter {key:?}"))
    };
    let parse_u64 = |key: &str| -> Result<u64, String> {
        get(key)?
            .parse()
            .map_err(|_| format!("parameter {key:?} is not an integer"))
    };

    let arch = match get("architecture")?.as_str() {
        "MAE-ViT" => Architecture::MaeVit,
        "SwinT-V2" => Architecture::SwinV2,
        other => return Err(format!("unknown architecture {other:?}")),
    };
    let machine = match get("machine")?.as_str() {
        "frontier-like" => MachineConfig::frontier_like(),
        "workstation" => MachineConfig::workstation(),
        other => return Err(format!("unknown machine {other:?}")),
    };
    let dataset_name = get("dataset")?.clone();
    let samples = parse_u64("dataset_samples")?;
    let dataset = if dataset_name == "MODIS-1km-L1B" {
        DatasetSpec::modis().with_samples(samples)
    } else {
        DatasetSpec::tiny(samples)
    };

    Ok(SimConfig {
        model: ModelConfig::sized(arch, parse_u64("params")?),
        machine,
        dataset,
        gpus: parse_u64("gpus")? as u32,
        per_gpu_batch: parse_u64("per_gpu_batch")? as u32,
        epochs: parse_u64("epochs")? as u32,
        comm: Default::default(),
        cutoff: WalltimeCutoff::Unlimited,
        exercise_collective: false,
        phase: train_sim::sim::Phase::PreTraining,
        grad_accumulation: 1,
        resume_from: None,
        faults: Default::default(),
    })
}

/// Replays a run from its provenance document and reports whether the
/// reproduced outcome matches the recorded one.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Loss recorded in the original provenance.
    pub recorded_loss: Option<f64>,
    /// Loss of the replayed run.
    pub replayed_loss: f64,
    /// True when both losses agree to 1e-9 (the simulator is
    /// deterministic, so any divergence means the provenance was
    /// incomplete or tampered with).
    pub reproduced: bool,
    /// The replayed simulator result.
    pub result: RunResult,
}

/// Replays the experiment described by a provenance document.
pub fn replay_from_provenance(doc: &prov_model::ProvDocument) -> Result<ReplayReport, String> {
    let cfg = config_from_provenance(doc)?;
    let result = TrainingSimulation::new(cfg)?.run(&mut train_sim::sim::NullObserver);
    let recorded_loss = yprov4ml::compare::RunSummary::from_document(doc)
        .and_then(|s| s.params.get("final_loss").and_then(|v| v.parse().ok()));
    let reproduced = recorded_loss
        .map(|r: f64| (r - result.final_loss).abs() < 1e-9)
        .unwrap_or(false);
    Ok(ReplayReport {
        recorded_loss,
        replayed_loss: result.final_loss,
        reproduced,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use train_sim::model::{Architecture, ModelConfig};
    use train_sim::sim::WalltimeCutoff;
    use train_sim::{DatasetSpec, MachineConfig};
    use yprov4ml::Experiment;

    fn small_cfg() -> SimConfig {
        SimConfig {
            model: ModelConfig::sized(Architecture::SwinV2, 100_000_000),
            machine: MachineConfig::frontier_like(),
            dataset: DatasetSpec::tiny(2_000),
            gpus: 8,
            per_gpu_batch: 32,
            epochs: 2,
            comm: Default::default(),
            cutoff: WalltimeCutoff::Unlimited,
            exercise_collective: false,
            phase: train_sim::sim::Phase::PreTraining,
            grad_accumulation: 1,
            resume_from: None,
            faults: Default::default(),
        }
    }

    #[test]
    fn observer_populates_provenance() {
        let base = std::env::temp_dir().join(format!("yint_obs_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let exp = Experiment::new("bridge", &base).unwrap();
        let run = exp.start_run("sim-run").unwrap();
        let result = simulate_with_provenance(small_cfg(), &run, 1).unwrap();
        let report = run.finish().unwrap();

        assert!(result.completed);
        assert!(report.params >= 12 + 8, "inputs + outputs recorded");
        assert!(report.metric_samples as u64 >= result.steps * 4);

        let doc = exp.load_run_document("sim-run").unwrap();
        assert!(prov_model::validate::is_valid(&doc));
        let summary = yprov4ml::compare::RunSummary::from_document(&doc).unwrap();
        assert_eq!(summary.params["architecture"], "SwinT-V2");
        assert!((summary.metrics["training/loss"] - result.final_loss).abs() < 1e-9);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn stride_reduces_volume() {
        let base = std::env::temp_dir().join(format!("yint_stride_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let exp = Experiment::new("stride", &base).unwrap();

        let dense_run = exp.start_run("dense").unwrap();
        let r1 = simulate_with_provenance(small_cfg(), &dense_run, 1).unwrap();
        let dense = dense_run.finish().unwrap();

        let sparse_run = exp.start_run("sparse").unwrap();
        let r2 = simulate_with_provenance(small_cfg(), &sparse_run, 10).unwrap();
        let sparse = sparse_run.finish().unwrap();

        assert_eq!(r1, r2, "stride changes logging, not simulation");
        assert!(dense.metric_samples > sparse.metric_samples * 5);
        std::fs::remove_dir_all(&base).ok();
    }
}
