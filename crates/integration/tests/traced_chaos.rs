//! A traced chaos run: tracing is live while a seeded fault plan kills
//! a journaled training run, so the per-rank simulated spans are still
//! sitting in the flight-recorder rings when `recover()` runs — the
//! dump lands in `trace_crash.json` next to the recovered provenance
//! and is linked into the PROV document as evidence of the crash.
//!
//! CI uploads the dump as a workflow artifact: set `TRACED_CHAOS_OUT`
//! to a path and the test copies `trace_crash.json` there.

use integration::simulate_with_provenance;
use train_sim::model::{Architecture, ModelConfig};
use train_sim::sim::{SimConfig, WalltimeCutoff};
use train_sim::{DatasetSpec, FaultPlan, MachineConfig};
use yprov4ml::journal::recover_detailed;
use yprov4ml::run::RunOptions;
use yprov4ml::spill::SpillPolicy;
use yprov4ml::{Experiment, RunStatus};

#[test]
fn traced_chaos_run_dumps_flight_recorder_on_recovery() {
    let base = std::env::temp_dir().join(format!("ytrace_chaos_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    let cfg = SimConfig {
        model: ModelConfig::sized(Architecture::MaeVit, 100_000_000),
        machine: MachineConfig::frontier_like(),
        dataset: DatasetSpec::tiny(2_000),
        gpus: 8,
        per_gpu_batch: 16,
        epochs: 2,
        comm: Default::default(),
        cutoff: WalltimeCutoff::Unlimited,
        exercise_collective: false,
        phase: train_sim::sim::Phase::PreTraining,
        grad_accumulation: 1,
        resume_from: None,
        faults: FaultPlan::none(),
    };
    let steps_per_epoch = cfg.dataset.steps_per_epoch(cfg.global_batch());
    let cfg = SimConfig {
        faults: FaultPlan::single_gpu_failure(steps_per_epoch + 2),
        ..cfg
    };

    obs::trace::set_enabled(true);
    obs::trace::drain();

    let experiment = Experiment::new("traced-chaos", &base).unwrap();
    let run = experiment
        .start_run_with(
            "victim",
            RunOptions {
                journal: true,
                ..Default::default()
            },
        )
        .unwrap();
    let result = simulate_with_provenance(cfg, &run, 1).unwrap();
    assert!(result.fault.is_some(), "the fault plan must kill the run");
    run.flush().unwrap();
    let run_dir = run.dir().to_path_buf();
    drop(run); // crash: no finish()

    let (report, _recovery) = recover_detailed(&run_dir, &SpillPolicy::Inline).unwrap();
    obs::trace::drain();
    obs::trace::set_enabled(false);
    assert_eq!(report.status, RunStatus::Recovered);

    // The flight recorder survived the crash: the dump holds the doomed
    // run's per-rank simulated spans.
    let crash_trace = run_dir.join("trace_crash.json");
    assert!(crash_trace.exists(), "trace_crash.json written by recovery");
    let body = std::fs::read_to_string(&crash_trace).unwrap();
    let json: serde_json::Value = serde_json::from_str(&body).expect("dump parses");
    let events = json["traceEvents"].as_array().unwrap();
    assert!(events
        .iter()
        .any(|e| e["ph"] == "X" && e["name"] == "step" && e["pid"] == 2));
    assert!(events
        .iter()
        .any(|e| e["ph"] == "M" && e["args"]["name"] == "rank 0"));

    // And the recovered document records the dump as crash evidence.
    let prov = std::fs::read_to_string(&report.prov_json_path).unwrap();
    assert!(prov.contains("victim/trace_crash"), "trace entity linked");
    assert!(prov.contains("victim/crash"));

    // Hand the artifact to CI if asked.
    if let Ok(out) = std::env::var("TRACED_CHAOS_OUT") {
        std::fs::copy(&crash_trace, &out).unwrap();
    }
    std::fs::remove_dir_all(&base).ok();
}
