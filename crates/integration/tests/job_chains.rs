//! Chained walltime-capped jobs with cross-run provenance — how
//! training actually proceeds under the paper's 2-hour queue limit:
//! each job checkpoints at the cutoff, the next job's run records the
//! checkpoint as an *input* artifact, and the combined experiment
//! document carries the full lineage chain from the final model back
//! through every job.

use integration::ProvenanceObserver;
use prov_graph::ProvGraph;
use prov_model::QName;
use train_sim::model::{Architecture, ModelConfig};
use train_sim::sim::{
    Checkpoint, NullObserver, Phase, SimConfig, TrainingSimulation, WalltimeCutoff,
};
use train_sim::{DatasetSpec, MachineConfig, TrainObserver};
use yprov4ml::model::Direction;
use yprov4ml::Experiment;

fn base_cfg() -> SimConfig {
    SimConfig {
        model: ModelConfig::sized(Architecture::SwinV2, 200_000_000),
        machine: MachineConfig::frontier_like(),
        dataset: DatasetSpec::tiny(30_000),
        gpus: 8,
        per_gpu_batch: 32,
        epochs: 4,
        comm: Default::default(),
        cutoff: WalltimeCutoff::Unlimited,
        exercise_collective: false,
        phase: Phase::PreTraining,
        grad_accumulation: 1,
        resume_from: None,
        faults: Default::default(),
    }
}

#[test]
fn chained_jobs_reproduce_the_uncapped_run_with_full_lineage() {
    // Ground truth: the whole training in one job.
    let full = TrainingSimulation::new(base_cfg())
        .unwrap()
        .run(&mut NullObserver);
    assert!(full.completed);

    let base = std::env::temp_dir().join(format!("ychain_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let experiment = Experiment::new("chained", &base).unwrap();

    // The chain: each job gets roughly a quarter of the needed walltime.
    let per_job_budget = full.walltime_s / 3.7;
    let mut checkpoint: Option<Checkpoint> = None;
    let mut prev_ckpt_name: Option<String> = None;
    let mut job = 0usize;
    let final_result = loop {
        let run_name = format!("job-{job}");
        let run = experiment.start_run(&run_name).unwrap();

        // Cross-run linkage: the previous job's checkpoint is this
        // job's input artifact.
        if let (Some(ckpt), Some(name)) = (&checkpoint, &prev_ckpt_name) {
            run.log_param("resumed_from", name.as_str());
            run.log_artifact_bytes(
                name,
                format!("steps={},samples={}", ckpt.steps, ckpt.samples_seen).as_bytes(),
                Direction::Input,
            )
            .unwrap();
        }

        let mut cfg = base_cfg();
        cfg.resume_from = checkpoint;
        cfg.cutoff = WalltimeCutoff::Seconds(per_job_budget);
        let mut observer = ProvenanceObserver::with_stride(&run, 10);
        let result = TrainingSimulation::new(cfg).unwrap().run(&mut observer);

        // The produced checkpoint is this job's output artifact.
        let ckpt_name = format!("ckpt-after-job-{job}.bin");
        run.log_artifact_bytes(
            &ckpt_name,
            format!(
                "steps={},samples={}",
                result.checkpoint.steps, result.checkpoint.samples_seen
            )
            .as_bytes(),
            Direction::Output,
        )
        .unwrap();
        run.finish().unwrap();

        if result.completed {
            break result;
        }
        assert!(job < 10, "chain must converge");
        checkpoint = Some(result.checkpoint);
        prev_ckpt_name = Some(ckpt_name);
        job += 1;
    };

    // 1. The chain reproduces the uncapped run exactly.
    assert!(
        job >= 2,
        "the budget must actually force a chain (got {} jobs)",
        job + 1
    );
    assert_eq!(final_result.final_loss, full.final_loss);
    assert_eq!(final_result.steps, full.steps);
    assert_eq!(final_result.samples_seen, full.samples_seen);

    // 2. The combined document chains the jobs through checkpoints:
    //    job-N used the artifact job-(N-1) generated (same name).
    let combined = experiment.combined_document().unwrap();
    assert!(prov_model::validate::is_valid(&combined));
    let graph = ProvGraph::new(&combined);

    // From the last job's run activity, the ancestry must reach job-0's
    // checkpoint artifact by walking used -> generated -> run -> used...
    let last_run = QName::new("exp", format!("job-{job}"));
    let ancestors = graph.ancestors(&last_run);
    let first_ckpt = QName::new("exp", "job-1/artifact/ckpt-after-job-0.bin");
    assert!(
        ancestors.contains(&first_ckpt),
        "lineage of {last_run} must include {first_ckpt}; got {} ancestors",
        ancestors.len()
    );

    // 3. Total energy across the chain ≈ the uncapped run's energy
    //    (the chain pays a little extra for the partially-counted final
    //    sampling interval of each job).
    let mut chained_energy = 0.0;
    for name in experiment.list_runs().unwrap() {
        let doc = experiment.load_run_document(&name).unwrap();
        let summary = yprov4ml::compare::RunSummary::from_document(&doc).unwrap();
        chained_energy += summary.params["energy_kwh"].parse::<f64>().unwrap();
    }
    let rel = (chained_energy - full.energy_kwh).abs() / full.energy_kwh;
    assert!(
        rel < 0.05,
        "chained {chained_energy} vs full {} ({rel:.3})",
        full.energy_kwh
    );

    std::fs::remove_dir_all(&base).ok();
}
