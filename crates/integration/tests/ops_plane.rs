//! The ops plane end to end: cluster-wide metric federation surviving
//! a dead member, the slow-request log's trace ids lining up with the
//! Chrome trace export, and alert rules walking their full
//! pending → firing → resolved lifecycle under a virtual clock.

use std::net::{SocketAddr, TcpListener};
use std::sync::Mutex;
use std::time::Duration;

use energy_monitor::VirtualClock;
use obs::alerts::{AlertRule, Cmp, Phase};
use yprov_service::http::request;
use yprov_service::{
    ClusterConfig, DocumentStore, NodeSpec, OpsConfig, RetryPolicy, Server, ServerConfig,
};

// The tracer is process-global; tests that toggle it serialize here and
// leave it disabled and drained behind them.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Reserves `n` distinct loopback addresses by binding ephemeral
/// listeners, recording their ports, and releasing them, so a full
/// mesh can be wired before any server binds.
fn reserve_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners.iter().map(|l| l.local_addr().unwrap()).collect()
}

/// One push attempt with a short timeout: federation over a ring with a
/// corpse should pay milliseconds per dead peer, not a retry schedule.
fn fast_push() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 1,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(40),
        request_timeout: Duration::from_millis(1500),
        jitter_seed: 7,
    }
}

fn bind_ring(ids: &[&str], addrs: &[SocketAddr]) -> Vec<Server> {
    ids.iter()
        .enumerate()
        .map(|(i, id)| {
            let peers = ids
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(j, pid)| NodeSpec::new(*pid, addrs[j]))
                .collect();
            Server::bind(
                &addrs[i].to_string(),
                DocumentStore::new(),
                ServerConfig {
                    cluster: Some(ClusterConfig {
                        push_policy: fast_push(),
                        ..ClusterConfig::new(*id, peers)
                    }),
                    ..Default::default()
                },
            )
            .unwrap()
        })
        .collect()
}

#[test]
fn federated_cluster_view_degrades_but_answers_with_a_dead_member() {
    let addrs = reserve_addrs(3);
    let ids = ["node-a", "node-b", "node-c"];
    let mut servers = bind_ring(&ids, &addrs);

    // Warm every member's request counters so the federated snapshot
    // has per-member series to merge.
    for addr in &addrs {
        let (status, _) = request(*addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
    }

    // Healthy ring: all three members report ok through any node.
    let (status, body) = request(addrs[0], "GET", "/api/v0/obs/cluster", None).unwrap();
    assert_eq!(status, 200, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["ok"], serde_json::json!(true), "{body}");
    assert_eq!(v["members"].as_array().unwrap().len(), 3);
    let merged = v["metrics"].as_str().unwrap();
    for id in ids {
        assert!(
            merged.contains(&format!("member=\"{id}\"")),
            "member {id} missing from the merged exposition:\n{merged}"
        );
    }

    // Kill node-c and ask node-a again: degraded, not erroring.
    servers.pop().unwrap().shutdown();
    let (status, body) = request(addrs[0], "GET", "/api/v0/obs/cluster", None).unwrap();
    assert_eq!(status, 200, "a dead peer must not fail the endpoint");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["ok"], serde_json::json!(false), "{body}");
    let members = v["members"].as_array().unwrap();
    assert_eq!(members.len(), 3, "the corpse still gets a member entry");
    let dead = members
        .iter()
        .find(|m| m["id"] == serde_json::json!("node-c"))
        .unwrap();
    assert_eq!(dead["ok"], serde_json::json!(false));
    assert!(dead["error"].as_str().is_some_and(|e| !e.is_empty()));
    // The survivors keep their labelled series and health payloads.
    let merged = v["metrics"].as_str().unwrap();
    assert!(merged.contains("member=\"node-a\""));
    assert!(merged.contains("member=\"node-b\""));
    assert!(!merged.contains("member=\"node-c\""));
    for id in ["node-a", "node-b"] {
        let m = members
            .iter()
            .find(|m| m["id"] == serde_json::json!(id))
            .unwrap();
        assert_eq!(m["ok"], serde_json::json!(true), "{body}");
        assert_eq!(m["health"]["ready"], serde_json::json!(true), "{body}");
    }

    for server in servers {
        server.shutdown();
    }
}

#[test]
fn slowlog_trace_ids_line_up_with_the_chrome_trace_export() {
    let _g = exclusive();
    obs::trace::set_enabled(true);
    obs::trace::drain();

    let server = Server::bind("127.0.0.1:0", DocumentStore::new(), ServerConfig::default())
        .unwrap();
    let (status, _) = request(server.addr(), "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);

    let (status, body) = request(server.addr(), "GET", "/api/v0/obs/slowlog", None).unwrap();
    assert_eq!(status, 200, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    let healthz = v["routes"]
        .as_array()
        .unwrap()
        .iter()
        .find(|r| r["route"] == serde_json::json!("/healthz"))
        .unwrap_or_else(|| panic!("no /healthz slowlog ring in {body}"));
    let trace_id = healthz["slowest"][0]["trace_id"]
        .as_str()
        .unwrap_or_else(|| panic!("slowlog entry carries no trace id: {body}"))
        .to_string();
    assert_eq!(trace_id.len(), 32, "w3c trace id is 32 hex chars");

    // The same id must identify the request's span in the Chrome
    // export — that is what makes the slowlog entry clickable.
    let chrome = obs::trace::to_chrome_json(&obs::trace::snapshot());
    assert!(
        chrome.contains(&format!("\"trace_id\":\"{trace_id}\"")),
        "slowlog trace id {trace_id} absent from the trace export"
    );

    server.shutdown();
    obs::trace::set_enabled(false);
    obs::trace::drain();
}

#[test]
fn alert_rules_walk_pending_firing_resolved_under_a_virtual_clock() {
    // Self-scrape off: the test owns the clock and ticks the plane by
    // hand, so the lifecycle is fully deterministic.
    let rule_metric = "http_requests_total{method=\"GET\",route=\"/healthz\",status=\"200\"}";
    let server = Server::bind(
        "127.0.0.1:0",
        DocumentStore::new(),
        ServerConfig {
            ops: OpsConfig {
                self_scrape: false,
                alert_rules: vec![AlertRule::new(
                    "healthz-hot",
                    rule_metric,
                    Cmp::Gt,
                    0.5,
                    2.0,
                )],
                ..OpsConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let clock = VirtualClock::manual();
    let ops = std::sync::Arc::clone(server.ops());
    let registry = std::sync::Arc::clone(server.registry());
    let tick = |clock: &VirtualClock| ops.tick(clock.now_s(), &[&registry]);
    let phase = || server.ops().alerts().states()[0].phase;
    let firing_gauge = || registry.gauge("alerts_firing{rule=\"healthz-hot\"}").get();
    let burst = |n: usize| {
        for _ in 0..n {
            let (status, _) = request(server.addr(), "GET", "/healthz", None).unwrap();
            assert_eq!(status, 200);
        }
    };

    tick(&clock); // t=0: baseline only
    assert_eq!(phase(), Phase::Inactive);

    // Three requests per simulated second: rate 3/s > 0.5 breaches,
    // but the rule holds for 2 s before firing.
    burst(3);
    clock.advance(1.0);
    tick(&clock); // t=1
    assert_eq!(phase(), Phase::Pending);
    assert_eq!(firing_gauge(), 0);

    burst(3);
    clock.advance(1.0);
    tick(&clock); // t=2: held 1 s of the required 2
    assert_eq!(phase(), Phase::Pending);

    burst(3);
    clock.advance(1.0);
    tick(&clock); // t=3: held 2 s -> fires
    assert_eq!(phase(), Phase::Firing);
    assert_eq!(firing_gauge(), 1);
    let (status, body) = request(server.addr(), "GET", "/api/v0/obs/alerts", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"phase\":\"firing\""), "{body}");

    // Quiet interval: the counter stops moving. The last breach sample
    // (bucket t=3) satisfies alert lookups until it ages past the
    // staleness horizon — that hold is the anti-flap guarantee — and
    // only then does the rule land in the sticky resolved phase.
    clock.advance(1.0);
    tick(&clock); // t=4: breach sample 1 s old, still fresh
    assert_eq!(phase(), Phase::Firing);
    clock.advance(1.0);
    tick(&clock); // t=5: bucket 3 still inside the lookup window
    assert_eq!(phase(), Phase::Firing);
    clock.advance(1.0);
    tick(&clock); // t=6: the series went stale -> resolved
    assert_eq!(phase(), Phase::Resolved);
    assert_eq!(firing_gauge(), 0);
    let (status, body) = request(server.addr(), "GET", "/api/v0/obs/alerts", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"phase\":\"resolved\""), "{body}");

    server.shutdown();
}
