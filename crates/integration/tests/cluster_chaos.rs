//! Cluster-scale chaos for the replicated provenance service: a
//! seeded [`FaultPlan`] decides when the write primary dies mid-upload,
//! the surviving replicas are promoted and keep answering with their
//! hash chains intact, and injected frame faults (drop, tear,
//! duplicate, delay, partition) all converge back to byte-identical
//! state.
//!
//! On failure, every surviving node's ledger files are copied into
//! `$YPROV_CLUSTER_ARTIFACTS` (when set) so CI can upload them. The
//! headline test also exercises the ops plane mid-chaos — a survivor's
//! `/api/v0/obs/health` and federated `/api/v0/obs/cluster` views —
//! and dumps each survivor's slowlog and alert state into
//! `$YPROV_OBS_ARTIFACTS` (when set) for the same upload path.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::time::Duration;

use train_sim::{FaultKind, FaultPlan};
use yprov_service::{
    Client, ClusterClient, ClusterConfig, DocumentStore, NodeSpec, RetryPolicy, Server,
    ServerConfig,
};

fn fast_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(40),
        request_timeout: Duration::from_secs(5),
        jitter_seed: seed,
    }
}

/// Push policy for tests with dead peers: one attempt, short timeout,
/// so every upload pays milliseconds (not a retry schedule) per corpse.
fn push_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 1,
        request_timeout: Duration::from_millis(1500),
        ..fast_policy(3)
    }
}

fn doc_json(tag: &str) -> String {
    let mut doc = prov_model::ProvDocument::new();
    doc.namespaces_mut().register("ex", "http://ex/").unwrap();
    doc.entity(prov_model::QName::new("ex", "data"));
    doc.activity(prov_model::QName::new("ex", "train"));
    doc.entity(prov_model::QName::new("ex", tag));
    doc.used(
        prov_model::QName::new("ex", "train"),
        prov_model::QName::new("ex", "data"),
    );
    doc.was_generated_by(
        prov_model::QName::new("ex", tag),
        prov_model::QName::new("ex", "train"),
    );
    doc.to_json_string().unwrap()
}

/// Reserves `n` distinct loopback addresses by binding ephemeral
/// listeners, recording their ports, and releasing them. Every cluster
/// member must know its peers' addresses *before* any server binds, so
/// the full mesh is wired through reserved ports.
fn reserve_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners.iter().map(|l| l.local_addr().unwrap()).collect()
}

/// Binds a full-mesh cluster: node `i` gets every other node as a peer.
fn bind_cluster(ids: &[&str], addrs: &[SocketAddr], stores: &[DocumentStore]) -> Vec<Server> {
    ids.iter()
        .enumerate()
        .map(|(i, id)| {
            let peers = ids
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(j, pid)| NodeSpec::new(*pid, addrs[j]))
                .collect();
            Server::bind(
                &addrs[i].to_string(),
                stores[i].clone(),
                ServerConfig {
                    cluster: Some(ClusterConfig {
                        push_policy: push_policy(),
                        ..ClusterConfig::new(*id, peers)
                    }),
                    ..Default::default()
                },
            )
            .unwrap()
        })
        .collect()
}

/// Copies each node's chain files (`ledger.txt`, `repl-*.chain`) into
/// `$YPROV_CLUSTER_ARTIFACTS/<node>/` when the owning test panics, so a
/// CI failure ships the surviving ledgers as artifacts.
struct LedgerArtifacts {
    nodes: Vec<(String, PathBuf)>,
}

impl Drop for LedgerArtifacts {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        let Some(out) = std::env::var_os("YPROV_CLUSTER_ARTIFACTS") else {
            return;
        };
        let out = PathBuf::from(out);
        for (node, dir) in &self.nodes {
            let dest = out.join(node);
            std::fs::create_dir_all(&dest).ok();
            let Ok(entries) = std::fs::read_dir(dir) else {
                continue;
            };
            for entry in entries.flatten() {
                let name = entry.file_name();
                let is_chain = name.to_string_lossy().ends_with(".chain");
                if name == "ledger.txt" || is_chain {
                    std::fs::copy(entry.path(), dest.join(&name)).ok();
                }
            }
        }
        eprintln!("[cluster-chaos] ledgers copied to {}", out.display());
    }
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ycluster_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The headline scenario: 3 durable nodes, a seeded fault plan decides
/// which upload the primary dies under. Acked documents survive the
/// kill, the in-flight one is fully present or cleanly absent, the
/// cluster promotes a verified survivor for the dead node's keys, and
/// every surviving ledger verifies end-to-end.
#[test]
fn primary_killed_mid_upload_cluster_promotes_and_serves() {
    const DOCS: u64 = 6;
    // The fault plan's fatal event, scaled onto the upload sequence,
    // picks the kill point — the same seed always kills the same
    // upload under the same primary.
    let plan = FaultPlan::seeded(0xFA11, 64);
    let fatal = plan
        .events
        .iter()
        .find(|e| matches!(e.kind, FaultKind::GpuFailure { .. }))
        .expect("seeded plans include a fatal fault");
    // At least two uploads are acked before the kill so the failover
    // read path has real history to answer from.
    let kill_at = 2 + fatal.step % (DOCS - 2);

    let base = tmp("kill");
    let ids = ["node-a", "node-b", "node-c"];
    let dirs: Vec<PathBuf> = ids.iter().map(|id| base.join(id)).collect();
    let stores: Vec<DocumentStore> = dirs
        .iter()
        .map(|d| DocumentStore::persistent(d).unwrap())
        .collect();
    let addrs = reserve_addrs(ids.len());
    let mut servers: Vec<Option<Server>> = bind_cluster(&ids, &addrs, &stores)
        .into_iter()
        .map(Some)
        .collect();
    let _artifacts = LedgerArtifacts {
        nodes: ids
            .iter()
            .zip(&dirs)
            .map(|(id, d)| (id.to_string(), d.clone()))
            .collect(),
    };

    let cluster = ClusterClient::new(
        ids.iter()
            .zip(&addrs)
            .map(|(id, addr)| NodeSpec::new(*id, *addr))
            .collect(),
        2,
        fast_policy(11),
    );

    // Phase 1: acked uploads before the fault fires.
    let mut acked = Vec::new();
    for i in 0..kill_at {
        let id = format!("run-{i}");
        let resp = cluster.put(&id, &doc_json(&format!("model-{i}"))).unwrap();
        assert_eq!(resp.status, 201, "{id}: {}", resp.body);
        acked.push(id);
    }

    // Phase 2: the fault. The in-flight document's primary loses its
    // replication path mid-upload (frames dropped in flight) and then
    // the whole node dies. The direct write was answered 503 — never
    // acked — so the document must be cleanly absent from the cluster.
    let inflight = format!("run-{kill_at}");
    let victim_id = cluster.placement(&inflight)[0].clone();
    let victim_idx = ids.iter().position(|id| *id == victim_id).unwrap();
    let victim = servers[victim_idx].take().unwrap();
    victim
        .replication_chaos()
        .expect("cluster-configured server has chaos knobs")
        .drop_next_frames(u32::MAX);
    let direct = Client::new(
        addrs[victim_idx],
        RetryPolicy {
            max_attempts: 1,
            ..fast_policy(13)
        },
    );
    let resp = direct
        .send(
            "PUT",
            &format!("/api/v0/documents/{inflight}"),
            Some(&doc_json("inflight")),
        )
        .unwrap();
    assert_eq!(
        resp.status, 503,
        "unreplicated write must not ack: {}",
        resp.body
    );
    victim.shutdown();

    // Phase 3: probes notice the death; the survivors keep serving.
    let live = cluster.probe();
    assert_eq!(live.len(), 2, "exactly one node died: {live:?}");
    assert!(!live.contains(&victim_id));

    for id in &acked {
        let resp = cluster.get(id).unwrap();
        assert_eq!(
            resp.status, 200,
            "acked {id} lost after failover: {}",
            resp.body
        );
    }
    // All-or-nothing for the in-flight document: it was refused (503),
    // so no survivor may hold a partial copy.
    let resp = cluster.get(&inflight).unwrap();
    assert_eq!(
        resp.status, 404,
        "unacked in-flight doc leaked to a survivor: {}",
        resp.body
    );

    // Mid-chaos ops check: with the victim dead, any survivor must
    // still answer the ops plane — health says ready, and the
    // federated view reports the corpse as a degraded member rather
    // than an error. The slowlog and alert states of every survivor
    // land in `$YPROV_OBS_ARTIFACTS/<node>/` so CI ships the ops
    // plane's view of the chaos run.
    let survivor_idx = (0..ids.len()).find(|i| *i != victim_idx).unwrap();
    let ops_probe = Client::new(addrs[survivor_idx], fast_policy(19));
    let resp = ops_probe.get("/api/v0/obs/health").unwrap();
    assert_eq!(resp.status, 200, "survivor not ready mid-chaos: {}", resp.body);
    let resp = ops_probe.get("/api/v0/obs/cluster").unwrap();
    assert_eq!(resp.status, 200, "dead peer broke federation: {}", resp.body);
    let view: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
    assert_eq!(view["ok"], serde_json::json!(false), "{}", resp.body);
    let corpse = view["members"]
        .as_array()
        .unwrap()
        .iter()
        .find(|m| m["id"] == serde_json::json!(victim_id.as_str()))
        .expect("dead member still listed");
    assert_eq!(corpse["ok"], serde_json::json!(false));
    if let Some(out) = std::env::var_os("YPROV_OBS_ARTIFACTS") {
        let out = PathBuf::from(out);
        for (i, server) in servers.iter().enumerate() {
            let Some(server) = server else { continue };
            let dest = out.join(ids[i]);
            std::fs::create_dir_all(&dest).unwrap();
            let probe = Client::new(server.addr(), fast_policy(23));
            for (file, path) in [
                ("slowlog.json", "/api/v0/obs/slowlog"),
                ("alerts.json", "/api/v0/obs/alerts"),
            ] {
                let resp = probe.get(path).unwrap();
                std::fs::write(dest.join(file), resp.body).unwrap();
            }
        }
        eprintln!("[cluster-chaos] ops state copied to {}", out.display());
    }

    // Phase 4: promotion. A write for a key the victim owned lands on a
    // verified survivor and is re-replicated among the survivors.
    let resp = cluster.put(&inflight, &doc_json("retried")).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body);
    let resp = cluster.get(&inflight).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("retried"));

    // Every surviving node's chains verify end-to-end, and both
    // survivors hold byte-identical copies of the re-routed document.
    let mut copies = Vec::new();
    for (i, server) in servers.iter().enumerate() {
        let Some(server) = server else { continue };
        let probe = Client::new(server.addr(), fast_policy(17));
        let resp = probe.get("/api/v0/ledger/verify").unwrap();
        assert_eq!(resp.status, 200, "{}: {}", ids[i], resp.body);
        let resp = probe.get(&format!("/api/v0/documents/{inflight}")).unwrap();
        if resp.status == 200 {
            copies.push(resp.body);
        }
    }
    assert_eq!(copies.len(), 2, "both survivors hold the promoted write");
    assert_eq!(
        copies[0], copies[1],
        "replicated copies must be byte-identical"
    );

    for server in servers.into_iter().flatten() {
        server.shutdown();
    }
    std::fs::remove_dir_all(&base).ok();
}

/// Torn, duplicated and delayed frames: the replica rejects the torn
/// frame (digest mismatch), re-sync re-delivers it clean, duplicates
/// are absorbed idempotently — and the replica ends byte-identical.
#[test]
fn torn_duplicated_and_delayed_frames_converge() {
    let store_a = DocumentStore::new();
    let store_b = DocumentStore::new();
    let addrs = reserve_addrs(2);
    let servers = bind_cluster(&["node-a", "node-b"], &addrs, &[store_a, store_b]);

    let chaos = servers[0].replication_chaos().unwrap();
    chaos.tear_next_frames(1);
    chaos.duplicate_frames(true);
    chaos.delay_frames(Duration::from_millis(5));

    let a = Client::new(addrs[0], fast_policy(23));
    let b = Client::new(addrs[1], fast_policy(29));
    for i in 0..3 {
        let resp = a
            .send(
                "PUT",
                &format!("/api/v0/documents/run-{i}"),
                Some(&doc_json(&format!("model-{i}"))),
            )
            .unwrap();
        assert_eq!(resp.status, 201, "run-{i}: {}", resp.body);
    }

    // The replica converged to the primary's exact bytes despite the
    // faults: same documents, cursor at the primary's chain head.
    for i in 0..3 {
        let from_a = a.get(&format!("/api/v0/documents/run-{i}")).unwrap();
        let from_b = b.get(&format!("/api/v0/documents/run-{i}")).unwrap();
        assert_eq!(from_b.status, 200, "run-{i}: {}", from_b.body);
        assert_eq!(from_a.body, from_b.body, "run-{i} bytes diverged");
    }
    let head = b.get("/api/v0/replication/head?source=node-a").unwrap();
    let head: serde_json::Value = serde_json::from_str(&head.body).unwrap();
    assert_eq!(head["next_index"], 3, "duplicates must not double-apply");
    for client in [&a, &b] {
        assert_eq!(client.get("/api/v0/ledger/verify").unwrap().status, 200);
    }

    // The torn frame is visible in the replica's reject counter.
    let metrics = b.get("/metrics").unwrap().body;
    let rejects = metrics
        .lines()
        .find(|l| l.starts_with("replication_rejects_total"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    assert!(rejects >= 1, "torn frame must be counted: {metrics}");

    for server in servers {
        server.shutdown();
    }
}

/// A partition leaves the replica stale; writes during it are refused
/// as under-replicated (503). When the partition heals, the replica's
/// gap rejection triggers re-sync from the divergence point and both
/// nodes' chain files end byte-identical — including across a replica
/// restart.
#[test]
fn partition_heals_through_resync_byte_identically() {
    let base = tmp("partition");
    let dir_a = base.join("node-a");
    let dir_b = base.join("node-b");
    let store_a = DocumentStore::persistent(&dir_a).unwrap();
    let store_b = DocumentStore::persistent(&dir_b).unwrap();
    let addrs = reserve_addrs(2);
    let servers = bind_cluster(
        &["node-a", "node-b"],
        &addrs,
        &[store_a.clone(), store_b.clone()],
    );
    let _artifacts = LedgerArtifacts {
        nodes: vec![
            ("node-a".to_string(), dir_a.clone()),
            ("node-b".to_string(), dir_b.clone()),
        ],
    };

    let a = Client::new(addrs[0], fast_policy(31));
    let b = Client::new(addrs[1], fast_policy(37));
    let put = |i: u64| {
        a.send(
            "PUT",
            &format!("/api/v0/documents/run-{i}"),
            Some(&doc_json(&format!("model-{i}"))),
        )
        .unwrap()
    };

    // Healthy write, then a partition: frames stop reaching B.
    assert_eq!(put(0).status, 201);
    let chaos = servers[0].replication_chaos().unwrap();
    chaos.drop_next_frames(2);
    for i in [1u64, 2] {
        let resp = put(i);
        assert_eq!(
            resp.status, 503,
            "partitioned write must not ack: {}",
            resp.body
        );
        assert!(resp.body.contains("under-replicated"), "{}", resp.body);
    }
    // B is stale: it saw only entry 0.
    let head: serde_json::Value = serde_json::from_str(
        &b.get("/api/v0/replication/head?source=node-a")
            .unwrap()
            .body,
    )
    .unwrap();
    assert_eq!(head["next_index"], 1);

    // Partition heals. The next frame (index 3) hits B as a gap — B
    // rejects it naming index 1 — and A re-streams its log from there.
    let resp = put(3);
    assert_eq!(resp.status, 201, "{}", resp.body);

    for i in 0..4 {
        let from_a = a.get(&format!("/api/v0/documents/run-{i}")).unwrap();
        let from_b = b.get(&format!("/api/v0/documents/run-{i}")).unwrap();
        assert_eq!(from_b.status, 200, "run-{i} missing after re-sync");
        assert_eq!(from_a.body, from_b.body, "run-{i} bytes diverged");
    }
    assert_eq!(b.get("/api/v0/ledger/verify").unwrap().status, 200);

    // Byte-identical convergence on disk: B's cursor chain for node-a
    // is exactly A's ledger file.
    store_a.flush().unwrap();
    store_b.flush().unwrap();
    let ledger_a = std::fs::read_to_string(dir_a.join("ledger.txt")).unwrap();
    let cursor_b = std::fs::read_to_string(dir_b.join("repl-node-a.chain")).unwrap();
    assert_eq!(
        cursor_b, ledger_a,
        "chain files must converge byte-identically"
    );

    // And recovery re-converges: a restarted replica restores the same
    // cursor and still verifies.
    for server in servers {
        server.shutdown();
    }
    drop(store_b);
    let reopened = DocumentStore::persistent(&dir_b).unwrap();
    assert_eq!(reopened.replication_head("node-a").0, 4);
    reopened.verify_all().unwrap();
    std::fs::remove_dir_all(&base).ok();
}
