//! End-to-end tests for the tracing layer: a traced simulation run must
//! produce Chrome trace-event JSON that Perfetto's loader accepts (one
//! track per simulated rank, monotonic timestamps, complete `X`
//! events), and the tracing hooks must be invisible when disabled — the
//! recovered PROV output of a journaled run is byte-for-byte identical
//! whether the hooks exist or not.

use std::sync::Mutex;

use integration::simulate_with_provenance;
use train_sim::model::{Architecture, ModelConfig};
use train_sim::sim::{SimConfig, WalltimeCutoff};
use train_sim::{DatasetSpec, FaultPlan, MachineConfig};
use yprov4ml::journal::recover_detailed;
use yprov4ml::run::RunOptions;
use yprov4ml::spill::SpillPolicy;
use yprov4ml::Experiment;

// The tracer is process-global; tests that toggle it serialize here and
// leave it disabled and drained behind them.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn cfg(gpus: u32, faults: FaultPlan) -> SimConfig {
    SimConfig {
        model: ModelConfig::sized(Architecture::MaeVit, 100_000_000),
        machine: MachineConfig::frontier_like(),
        dataset: DatasetSpec::tiny(1_000),
        gpus,
        per_gpu_batch: 16,
        epochs: 1,
        comm: Default::default(),
        cutoff: WalltimeCutoff::Unlimited,
        exercise_collective: false,
        phase: train_sim::sim::Phase::PreTraining,
        grad_accumulation: 1,
        resume_from: None,
        faults,
    }
}

#[test]
fn traced_run_exports_perfetto_compatible_json() {
    let _g = exclusive();
    let base = std::env::temp_dir().join(format!("ytrace_study_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    obs::trace::set_enabled(true);
    obs::trace::drain();
    let experiment = Experiment::new("traced", &base).unwrap();
    let run = experiment.start_run("victim").unwrap();
    let run_dir = run.dir().to_path_buf();
    let gpus = 4u32;
    let result = simulate_with_provenance(cfg(gpus, FaultPlan::none()), &run, 5).unwrap();
    assert!(result.completed);
    run.finish().unwrap();

    let trace_path = run_dir.join("trace.json");
    let written = obs::trace::write_trace_json(&trace_path).unwrap();
    obs::trace::set_enabled(false);
    assert!(written > 0, "a traced run must record spans");

    let body = std::fs::read_to_string(&trace_path).unwrap();
    let json: serde_json::Value = serde_json::from_str(&body).expect("trace.json parses");
    let events = json["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());

    // Every event is either metadata (M) or a complete span (X) — no
    // unmatched B/E pairs for Perfetto to reject.
    let mut last_ts = f64::MIN;
    let mut x_events = 0usize;
    for e in events {
        match e["ph"].as_str().unwrap() {
            "M" => continue,
            "X" => {
                let ts = e["ts"].as_f64().expect("X events carry a numeric ts");
                let dur = e["dur"].as_f64().expect("X events carry a numeric dur");
                assert!(dur >= 0.0);
                assert!(ts >= last_ts, "ts must be monotonic: {ts} after {last_ts}");
                last_ts = ts;
                x_events += 1;
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(x_events > 0);

    // One thread_name track per simulated rank, under the simulated
    // process (pid 2).
    for rank in 0..gpus {
        let track = format!("rank {rank}");
        assert!(
            events.iter().any(|e| e["ph"] == "M"
                && e["name"] == "thread_name"
                && e["pid"] == 2
                && e["args"]["name"] == track.as_str()),
            "missing track for {track}"
        );
    }
    // Per-rank step spans and the finalize pipeline both made it in.
    assert!(events.iter().any(|e| e["name"] == "step" && e["ph"] == "X"));
    assert!(events
        .iter()
        .any(|e| e["name"] == "finalize" && e["ph"] == "X"));

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn disabled_tracing_leaves_recovered_prov_byte_identical() {
    let _g = exclusive();
    let base = std::env::temp_dir().join(format!("ytrace_ident_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    obs::trace::set_enabled(false);
    obs::trace::drain();

    // A journaled run crashed by a seeded fault plan; recovery is a pure
    // function of the journal bytes, so recovering twice with tracing
    // disabled must produce the same prov.json bytes — proof the tracing
    // hooks are invisible when off.
    let c = cfg(8, FaultPlan::none());
    let steps_per_epoch = c.dataset.steps_per_epoch(c.global_batch());
    let faults = FaultPlan::single_gpu_failure(steps_per_epoch / 2 + 1);

    let experiment = Experiment::new("ident", &base).unwrap();
    let run = experiment
        .start_run_with(
            "victim",
            RunOptions {
                journal: true,
                ..Default::default()
            },
        )
        .unwrap();
    let result = simulate_with_provenance(cfg(8, faults), &run, 1).unwrap();
    assert!(result.fault.is_some(), "the fault plan must kill the run");
    run.flush().unwrap();
    let run_dir = run.dir().to_path_buf();
    drop(run); // crash: no finish()

    let (report_a, _) = recover_detailed(&run_dir, &SpillPolicy::Inline).unwrap();
    let bytes_a = std::fs::read(&report_a.prov_json_path).unwrap();
    let (report_b, _) = recover_detailed(&run_dir, &SpillPolicy::Inline).unwrap();
    let bytes_b = std::fs::read(&report_b.prov_json_path).unwrap();
    assert_eq!(bytes_a, bytes_b, "disabled tracing must not perturb bytes");
    let text = String::from_utf8(bytes_a).unwrap();
    assert!(!text.contains("trace_crash"), "no trace entity when off");
    assert!(!run_dir.join("trace_crash.json").exists());

    // Same journal recovered with tracing enabled: the flight recorder
    // is dumped and linked into the document as a trace entity generated
    // by the Crash activity.
    obs::trace::set_enabled(true);
    {
        let _s = obs::trace::span("doomed_work");
    }
    let (report_c, _) = recover_detailed(&run_dir, &SpillPolicy::Inline).unwrap();
    obs::trace::drain();
    obs::trace::set_enabled(false);
    let text_c = std::fs::read_to_string(&report_c.prov_json_path).unwrap();
    assert!(text_c.contains("victim/trace_crash"), "{text_c}");
    assert!(text_c.contains("wasGeneratedBy"));
    let crash_trace = run_dir.join("trace_crash.json");
    assert!(crash_trace.exists(), "flight recorder dump written");
    let dump: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&crash_trace).unwrap()).unwrap();
    assert!(dump["traceEvents"]
        .as_array()
        .unwrap()
        .iter()
        .any(|e| e["name"] == "doomed_work"));

    std::fs::remove_dir_all(&base).ok();
}
