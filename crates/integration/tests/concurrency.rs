//! Concurrency integration: simulated DDP ranks doing real threaded
//! all-reduces while logging into one shared run — the paper's
//! distributed-collection scenario at thread scale.

use std::sync::Arc;
use train_sim::ddp::{ring_allreduce, sequential_allreduce};
use yprov4ml::model::Context;
use yprov4ml::Experiment;

/// Eight "ranks" train a toy model data-parallel: each holds a gradient
/// shard, all-reduces it for real every step, applies the update, and
/// logs its local loss into the shared provenance run.
#[test]
fn ddp_ranks_train_and_log_concurrently() {
    let base = std::env::temp_dir().join(format!("yconc_ddp_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let experiment = Experiment::new("ddp", &base).unwrap();
    let run = Arc::new(experiment.start_run("8rank").unwrap());

    const RANKS: usize = 8;
    const DIM: usize = 256;
    const STEPS: usize = 20;

    // Shared "model": every rank must hold identical weights after each
    // all-reduce, or DDP is broken.
    let mut weights = vec![1.0f64; DIM];
    for step in 0..STEPS {
        // Per-rank gradients (deterministic, rank-dependent).
        let grads: Vec<Vec<f64>> = (0..RANKS)
            .map(|r| {
                (0..DIM)
                    .map(|i| ((r + 1) as f64) * 0.01 * ((i + step) % 5) as f64)
                    .collect()
            })
            .collect();
        let expected = sequential_allreduce(&grads);

        // Ranks log concurrently while the collective runs.
        let mut loggers = Vec::new();
        for rank in 0..RANKS {
            let run = Arc::clone(&run);
            loggers.push(std::thread::spawn(move || {
                run.log_metric(
                    format!("loss/rank{rank}"),
                    Context::Training,
                    step as u64,
                    0,
                    1.0 / (step + 1) as f64 + rank as f64 * 1e-6,
                );
            }));
        }
        let reduced = ring_allreduce(grads);
        for l in loggers {
            l.join().unwrap();
        }

        // All ranks agree with the sequential reduction.
        for r in 0..RANKS {
            for i in 0..DIM {
                assert!(
                    (reduced[r][i] - expected[r][i]).abs() < 1e-9,
                    "rank {r} dim {i} diverged at step {step}"
                );
            }
        }
        // Apply the averaged gradient.
        for i in 0..DIM {
            weights[i] -= 0.001 * reduced[0][i] / RANKS as f64;
        }
    }

    let run = Arc::try_unwrap(run).ok().expect("loggers joined");
    let report = run.finish().unwrap();
    assert_eq!(report.metric_samples, RANKS * STEPS);

    // Every rank's series is complete and ordered.
    let doc = experiment.load_run_document("8rank").unwrap();
    assert!(prov_model::validate::is_valid(&doc));
    let metric_ty = prov_model::QName::yprov("Metric");
    let series_count = doc
        .iter_elements()
        .filter(|e| e.has_type(&metric_ty))
        .count();
    assert_eq!(series_count, RANKS);
    std::fs::remove_dir_all(&base).ok();
}

/// Hammer one run from many threads with mixed record kinds; nothing is
/// lost and finish() sees a consistent state.
#[test]
fn mixed_record_stress() {
    let base = std::env::temp_dir().join(format!("yconc_stress_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let experiment = Experiment::new("stress", &base).unwrap();
    let run = Arc::new(experiment.start_run("hammer").unwrap());

    let mut handles = Vec::new();
    for t in 0..4u64 {
        let run = Arc::clone(&run);
        handles.push(std::thread::spawn(move || {
            for i in 0..2_000u64 {
                run.log_metric("m", Context::Training, t * 10_000 + i, 0, i as f64);
            }
        }));
    }
    for t in 0..2u64 {
        let run = Arc::clone(&run);
        handles.push(std::thread::spawn(move || {
            for i in 0..100u64 {
                run.log_param(format!("p{t}_{i}"), i as i64);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let run = Arc::try_unwrap(run).ok().expect("threads joined");
    let report = run.finish().unwrap();
    assert_eq!(report.metric_samples, 4 * 2_000);
    assert_eq!(report.params, 2 * 100);
    std::fs::remove_dir_all(&base).ok();
}
