//! Table-1 invariants as an integration test: the three storage
//! policies hold the same data, and their sizes order the way the paper
//! reports (inline JSON ≫ binary formats).

use metric_store::store::path_size_bytes;
use yprov4ml::model::Context;
use yprov4ml::run::RunOptions;
use yprov4ml::spill::{read_spilled, SpillPolicy};
use yprov4ml::Experiment;

const STEPS: u64 = 8_000;

fn make_run(experiment: &Experiment, name: &str, spill: SpillPolicy) -> u64 {
    let run = experiment
        .start_run_with(
            name,
            RunOptions {
                spill,
                ..Default::default()
            },
        )
        .unwrap();
    for step in 0..STEPS {
        let epoch = (step / 1_000) as u32;
        let t = step as i64 * 500_000;
        run.log_metric_at(
            "loss",
            Context::Training,
            step,
            epoch,
            t,
            2.0 / (1.0 + step as f64 * 0.001),
        );
        run.log_metric_at(
            "gpu_power_w",
            Context::Training,
            step,
            epoch,
            t,
            265.0 + (step % 7) as f64,
        );
    }
    let report = run.finish().unwrap();
    // Total footprint: PROV-JSON + any side store.
    let mut total = report.prov_json_bytes;
    if let Some(store) = &report.metric_store_path {
        total += path_size_bytes(store).unwrap();
    }
    total
}

#[test]
fn formats_hold_identical_data_with_table1_size_ordering() {
    let base = std::env::temp_dir().join(format!("yspillfmt_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let experiment = Experiment::new("formats", &base).unwrap();

    let inline_total = make_run(&experiment, "inline", SpillPolicy::Inline);
    let zarr_total = make_run(&experiment, "zarr", SpillPolicy::Zarr(Default::default()));
    let nc_total = make_run(&experiment, "nc", SpillPolicy::NetCdf(Default::default()));

    // Paper Table 1 ordering: json ≫ zarr ≈ nc.
    assert!(
        inline_total > zarr_total * 5,
        "inline {inline_total} must dwarf zarr {zarr_total}"
    );
    assert!(
        inline_total > nc_total * 5,
        "inline {inline_total} must dwarf nc {nc_total}"
    );
    // The >90 % claim (E6) at this volume.
    let zarr_gain = 1.0 - zarr_total as f64 / inline_total as f64;
    assert!(zarr_gain > 0.85, "zarr gain {zarr_gain}");

    // Spilled stores read back the exact series.
    for name in ["zarr", "nc"] {
        let dir = experiment.dir().join(name);
        let loss = read_spilled(&dir, "loss", "training").unwrap();
        assert_eq!(loss.len(), STEPS as usize);
        assert_eq!(loss.points[0].step, 0);
        assert_eq!(loss.points.last().unwrap().step, STEPS - 1);
        let power = read_spilled(&dir, "gpu_power_w", "training").unwrap();
        assert_eq!(power.len(), STEPS as usize);
    }

    // Inline mode embeds values in the PROV document itself.
    let doc = experiment.load_run_document("inline").unwrap();
    let metric = doc
        .get(&prov_model::QName::new(
            "exp",
            "inline/metric/training/loss",
        ))
        .unwrap();
    let inline_values = metric
        .attr(&prov_model::QName::yprov("values"))
        .and_then(|v| v.as_str())
        .unwrap();
    let parsed: serde_json::Value = serde_json::from_str(inline_values).unwrap();
    assert_eq!(parsed["points"].as_array().unwrap().len(), STEPS as usize);

    // The spilled documents carry links instead.
    let doc = experiment.load_run_document("zarr").unwrap();
    let metric = doc
        .get(&prov_model::QName::new("exp", "zarr/metric/training/loss"))
        .unwrap();
    assert!(metric.attr(&prov_model::QName::yprov("values")).is_none());
    assert!(metric
        .attr(&prov_model::QName::yprov("metric_file"))
        .and_then(|v| v.as_str())
        .unwrap()
        .contains("metrics.zarr"));

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn corrupted_spill_store_is_detected_on_read() {
    let base = std::env::temp_dir().join(format!("yspillcorrupt_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let experiment = Experiment::new("corrupt", &base).unwrap();
    make_run(
        &experiment,
        "victim",
        SpillPolicy::NetCdf(Default::default()),
    );

    let nc = experiment.dir().join("victim").join("metrics.nc");
    let mut bytes = std::fs::read(&nc).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&nc, bytes).unwrap();

    assert!(read_spilled(&experiment.dir().join("victim"), "loss", "training").is_err());
    std::fs::remove_dir_all(&base).ok();
}
