//! Storage-engine integration: the same service workload must behave
//! identically over the in-memory and durable backends, and the durable
//! backend must survive a kill at any point of an upload.

use prov_model::{ProvDocument, QName};
use yprov_service::{DocumentStore, ServiceError};

fn q(local: &str) -> QName {
    QName::new("ex", local)
}

/// A small training pipeline: data → train → model → eval → report.
fn pipeline_doc() -> ProvDocument {
    let mut doc = ProvDocument::new();
    doc.namespaces_mut().register("ex", "http://ex/").unwrap();
    doc.entity(q("data"));
    doc.activity(q("train"));
    doc.entity(q("model"));
    doc.activity(q("eval"));
    doc.entity(q("report"));
    doc.used(q("train"), q("data"));
    doc.was_generated_by(q("model"), q("train"));
    doc.used(q("eval"), q("model"));
    doc.was_generated_by(q("report"), q("eval"));
    doc
}

/// The workload both backends must serve identically: upload, lineage
/// queries through the index cache, replacement, deletion, ledger
/// history, typed not-found errors.
fn exercise(store: &DocumentStore) {
    let id = store.upload(pipeline_doc()).unwrap();
    assert_eq!(id, "doc-1");

    let anc = store.ancestors(&id, &q("report")).unwrap();
    for origin in ["eval", "model", "train", "data"] {
        assert!(anc.contains(&q(origin)), "missing {origin}");
    }
    let sub = store.subgraph(&id, &q("model")).unwrap();
    assert_eq!(sub.element_count(), 5);
    // Upload built the index; both queries hit the cache.
    assert_eq!(store.graph_cache_stats(), (2, 0));

    // Replacement under an explicit id keeps the ledger append-only.
    store.upload_as(&id, pipeline_doc()).unwrap();
    assert_eq!(store.ledger_entries().len(), 2);
    assert_eq!(store.len(), 1);

    // The claimed doc-N advanced the counter: no silent overwrite.
    let second = store.upload(ProvDocument::new()).unwrap();
    assert_eq!(second, "doc-2");

    assert!(store.delete(&second).unwrap());
    assert!(matches!(
        store.ancestors(&second, &q("report")),
        Err(ServiceError::NotFound { .. })
    ));
    // Deletion keeps the chain: 3 uploads happened.
    assert_eq!(store.ledger_entries().len(), 3);
}

#[test]
fn workload_over_memory_backend() {
    let store = DocumentStore::new();
    assert_eq!(store.backend_name(), "memory");
    exercise(&store);
}

#[test]
fn workload_over_durable_backend() {
    let dir = std::env::temp_dir().join(format!("yint_durable_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = DocumentStore::persistent(&dir).unwrap();
    assert_eq!(store.backend_name(), "durable");
    exercise(&store);
    drop(store);
    // Everything above survives a close-and-reopen, including the
    // replaced document and the post-delete ledger history.
    let reopened = DocumentStore::persistent(&dir).unwrap();
    assert_eq!(reopened.len(), 1);
    assert_eq!(reopened.ledger_entries().len(), 3);
    reopened.ancestors("doc-1", &q("report")).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn durable_backend_survives_kill_during_upload() {
    let dir = std::env::temp_dir().join(format!("yint_kill_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    {
        let store = DocumentStore::persistent(&dir).unwrap();
        store.upload(pipeline_doc()).unwrap();
        store.upload(pipeline_doc()).unwrap();
    }

    // Kill point 1 — before the rename: only tmp debris exists.
    std::fs::write(dir.join("doc-3.json.tmp"), b"{\"torn\":").unwrap();

    // Kill point 2 — after the rename, before the ledger append: a
    // fully written document with no ledger entry.
    let unledgered = pipeline_doc().to_json_string().unwrap();
    std::fs::write(dir.join("doc-4.json"), unledgered).unwrap();

    // Kill point 3 — mid ledger append: a torn, unterminated line.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("ledger.txt"))
            .unwrap();
        f.write_all(b"4 doc-5 deadbeef").unwrap();
    }

    let store = DocumentStore::persistent(&dir).expect("reopen after simulated kills");
    // The torn tmp never became visible; the unledgered document did
    // (its bytes are intact, only the commitment was lost).
    assert_eq!(store.len(), 3);
    assert!(store.get("doc-4").is_some());
    assert!(!dir.join("doc-3.json.tmp").exists(), "debris swept");
    // The surviving two-entry chain verifies, and new uploads continue
    // past every claimed id.
    assert_eq!(store.ledger_entries().len(), 2);
    let next = store.upload(ProvDocument::new()).unwrap();
    assert_eq!(next, "doc-5");
    std::fs::remove_dir_all(&dir).ok();
}
