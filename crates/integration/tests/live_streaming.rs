//! Live streaming end to end: a training run ships per-epoch deltas to
//! the service while a watcher long-polls the document, and the
//! streamed document converges byte-for-byte with the finalize-only
//! upload path. Every case runs under both server cores; the store
//! backend follows `YPROV_TEST_BACKEND` like the rest of the suite.

use integration::simulate_streaming_to_service;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use train_sim::model::{Architecture, ModelConfig};
use train_sim::sim::{SimConfig, WalltimeCutoff};
use train_sim::{DatasetSpec, MachineConfig};
use yprov4ml::model::Context;
use yprov4ml::{DeltaCadence, Experiment};
use yprov_service::client::{Client, RetryPolicy};
use yprov_service::{DocumentStore, Server, ServerConfig, ServerCore};

fn store_for_test(dir: &std::path::Path) -> DocumentStore {
    match std::env::var("YPROV_TEST_BACKEND").as_deref() {
        Ok("durable") => DocumentStore::persistent(dir).unwrap(),
        _ => DocumentStore::new(),
    }
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(40),
        request_timeout: Duration::from_secs(10),
        jitter_seed: 7,
    }
}

fn small_cfg() -> SimConfig {
    SimConfig {
        model: ModelConfig::sized(Architecture::SwinV2, 100_000_000),
        machine: MachineConfig::frontier_like(),
        dataset: DatasetSpec::tiny(2_000),
        gpus: 8,
        per_gpu_batch: 32,
        epochs: 3,
        comm: Default::default(),
        cutoff: WalltimeCutoff::Unlimited,
        exercise_collective: false,
        phase: train_sim::sim::Phase::PreTraining,
        grad_accumulation: 1,
        resume_from: None,
        faults: Default::default(),
    }
}

fn doc_id(body: &str) -> String {
    let v: serde_json::Value = serde_json::from_str(body).unwrap();
    v["id"].as_str().unwrap().to_string()
}

fn merged_version(body: &str) -> u64 {
    let v: serde_json::Value = serde_json::from_str(body).unwrap();
    v["version"].as_u64().unwrap()
}

#[test]
fn train_sim_streams_deltas_and_converges_to_the_finalize_document() {
    for (tag, core) in [
        ("evloop", ServerCore::EventLoop),
        ("threaded", ServerCore::Threaded),
    ] {
        let base = std::env::temp_dir().join(format!("ylive_conv_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let exp = Experiment::new("live", &base).unwrap();
        let store = store_for_test(&base.join("store"));
        let server = Server::bind(
            "127.0.0.1:0",
            store.clone(),
            ServerConfig {
                core,
                ..Default::default()
            },
        )
        .unwrap();
        let client = Client::new(server.addr(), policy());

        // The run opens its live document with a first (pre-training)
        // snapshot, then streams a delta at every epoch boundary.
        let run = exp.start_run("streamed").unwrap();
        let opened = client
            .upload_document(&run.snapshot_document().unwrap().to_json_string().unwrap())
            .unwrap();
        assert_eq!(opened.status, 201, "{}", opened.body);
        let id = doc_id(&opened.body);

        // Build the graph cache once up front: every delta merge after
        // this must extend it incrementally, never rebuild it.
        let warm = client
            .get(&format!(
                "/api/v0/documents/{id}/ancestors?focus=exp%3Astreamed"
            ))
            .unwrap();
        assert_eq!(warm.status, 200, "{}", warm.body);

        let (result, shipped) = simulate_streaming_to_service(
            small_cfg(),
            &run,
            10,
            DeltaCadence::EveryEpoch,
            &client,
            &id,
        )
        .unwrap();
        assert!(result.completed);
        assert_eq!(shipped, 2, "3 epochs means 2 boundary deltas");

        // Finalize and ship the finished document as the last delta.
        run.finish().unwrap();
        let final_json =
            std::fs::read_to_string(exp.dir().join("streamed").join("prov.json")).unwrap();
        let sealed = client.upload_delta(&id, &final_json).unwrap();
        assert_eq!(sealed.status, 200, "{}", sealed.body);

        // Control: the same finished document uploaded the classic way.
        let control = client.upload_document(&final_json).unwrap();
        assert_eq!(control.status, 201);
        let control_id = doc_id(&control.body);

        let streamed = client.get(&format!("/api/v0/documents/{id}")).unwrap();
        let finalize_only = client
            .get(&format!("/api/v0/documents/{control_id}"))
            .unwrap();
        assert_eq!(streamed.status, 200);
        assert_eq!(finalize_only.status, 200);
        assert_eq!(
            streamed.body, finalize_only.body,
            "streamed deltas must converge byte-for-byte with finalize-only"
        );

        // Every merge after the warm-up extended the cached index.
        assert_eq!(
            store.incremental_merges(),
            shipped + 1,
            "all {} delta merges must reuse the cached index incrementally",
            shipped + 1
        );

        server.shutdown();
        std::fs::remove_dir_all(&base).ok();
    }
}

#[test]
fn concurrent_watcher_observes_every_merged_version_in_order() {
    for (tag, core) in [
        ("evloop", ServerCore::EventLoop),
        ("threaded", ServerCore::Threaded),
    ] {
        let base = std::env::temp_dir().join(format!("ylive_watch_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let exp = Experiment::new("live", &base).unwrap();
        let store = store_for_test(&base.join("store"));
        let server = Server::bind(
            "127.0.0.1:0",
            store.clone(),
            ServerConfig {
                core,
                ..Default::default()
            },
        )
        .unwrap();
        let client = Client::new(server.addr(), policy());

        // Cut cumulative snapshots at three points of a hand-driven run,
        // then the finalize document.
        let run = exp.start_run("watched").unwrap();
        let mut deltas = Vec::new();
        for epoch in 0..3u32 {
            for step in 0..5u64 {
                run.log_metric_at(
                    "loss",
                    Context::Training,
                    epoch as u64 * 5 + step,
                    epoch,
                    (epoch as i64) * 5 + step as i64,
                    1.0 / (step + 1) as f64,
                );
            }
            deltas.push(run.snapshot_document().unwrap().to_json_string().unwrap());
        }
        run.finish().unwrap();
        deltas.push(std::fs::read_to_string(exp.dir().join("watched").join("prov.json")).unwrap());

        // The first snapshot opens the document at version 1.
        let opened = client.upload_document(&deltas.remove(0)).unwrap();
        assert_eq!(opened.status, 201, "{}", opened.body);
        let id = doc_id(&opened.body);

        // The watcher trails the uploader one version at a time; the
        // uploader waits for it to catch up before merging the next
        // delta, so "observes every version in order" is deterministic.
        let seen = Arc::new(Mutex::new(Vec::new()));
        let watcher_cursor = Arc::new(AtomicU64::new(1));
        let target = Arc::new(AtomicU64::new(0));
        let watcher = {
            let client = client.clone();
            let id = id.clone();
            let seen = Arc::clone(&seen);
            let watcher_cursor = Arc::clone(&watcher_cursor);
            let target = Arc::clone(&target);
            std::thread::spawn(move || {
                let mut cursor = 1u64;
                loop {
                    let resp = client
                        .watch(&id, cursor, Duration::from_millis(300))
                        .unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    let v: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
                    if v["changed"].as_bool().unwrap() {
                        cursor = v["version"].as_u64().unwrap();
                        seen.lock().unwrap().push(cursor);
                        watcher_cursor.store(cursor, Ordering::SeqCst);
                    }
                    let t = target.load(Ordering::SeqCst);
                    if t != 0 && cursor >= t {
                        return;
                    }
                }
            })
        };

        let mut last_version = 1u64;
        for delta in &deltas {
            let resp = client.upload_delta(&id, delta).unwrap();
            assert_eq!(resp.status, 200, "{}", resp.body);
            last_version = merged_version(&resp.body);
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while watcher_cursor.load(Ordering::SeqCst) < last_version {
                assert!(
                    std::time::Instant::now() < deadline,
                    "watcher never observed version {last_version}"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        target.store(last_version, Ordering::SeqCst);
        watcher.join().unwrap();

        let seen = seen.lock().unwrap().clone();
        let expected: Vec<u64> = (2..=last_version).collect();
        assert_eq!(
            seen, expected,
            "the watcher must observe every merged version, in order"
        );

        server.shutdown();
        std::fs::remove_dir_all(&base).ok();
    }
}
