//! Crash-recovery integration: a journaled run "crashes" (dropped
//! without `finish`), and `journal::recover` reconstructs its
//! provenance well enough to compare against completed siblings.

use yprov4ml::journal::{recover, JOURNAL_FILE};
use yprov4ml::model::{Context, Direction};
use yprov4ml::run::RunOptions;
use yprov4ml::spill::SpillPolicy;
use yprov4ml::Experiment;

#[test]
fn journaled_run_survives_a_crash() {
    let base = std::env::temp_dir().join(format!("ycrash_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let experiment = Experiment::new("crashy", &base).unwrap();

    // A healthy sibling run, finished normally.
    {
        let run = experiment.start_run("healthy").unwrap();
        run.log_param("learning_rate", 0.001);
        for step in 0..500u64 {
            run.log_metric("loss", Context::Training, step, 0, 1.0 / (step + 1) as f64);
        }
        run.finish().unwrap();
    }

    // The crashing run: journaled, never finished.
    let run_dir;
    {
        let run = experiment
            .start_run_with(
                "victim",
                RunOptions {
                    journal: true,
                    ..Default::default()
                },
            )
            .unwrap();
        run.log_param("learning_rate", 0.01);
        run.log_artifact_bytes("dataset.bin", b"input", Direction::Input)
            .unwrap();
        for step in 0..500u64 {
            run.log_metric("loss", Context::Training, step, 0, 2.0 / (step + 1) as f64);
        }
        run_dir = run.dir().to_path_buf();
        // Simulated crash: the Run is dropped without finish(); only the
        // journal survives.
        drop(run);
    }
    assert!(run_dir.join(JOURNAL_FILE).is_file());
    assert!(
        !run_dir.join("prov.json").exists(),
        "no provenance was written"
    );

    // Recover from the journal alone.
    let report = recover(&run_dir, &SpillPolicy::Inline).unwrap();
    assert_eq!(report.metric_samples, 500);
    assert_eq!(report.params, 1);
    assert_eq!(report.artifacts, 1);

    // The recovered document participates in normal tooling: it loads,
    // validates, and compares against the healthy run.
    let doc = experiment.load_run_document("victim").unwrap();
    assert!(prov_model::validate::is_valid(&doc));
    let victim = yprov4ml::compare::RunSummary::from_document(&doc).unwrap();
    assert_eq!(victim.params["learning_rate"], "0.01");

    let healthy_doc = experiment.load_run_document("healthy").unwrap();
    let healthy = yprov4ml::compare::RunSummary::from_document(&healthy_doc).unwrap();
    let table = yprov4ml::compare::compare_runs(&[victim, healthy], "training/loss");
    assert!(table.varying_params.contains(&"learning_rate".to_string()));

    // The combined experiment document includes the recovered run.
    let combined = experiment.combined_document().unwrap();
    let run_ty = prov_model::QName::yprov("RunExecution");
    assert_eq!(
        combined
            .iter_elements()
            .filter(|e| e.has_type(&run_ty))
            .count(),
        2
    );

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn recovery_after_torn_write() {
    let base = std::env::temp_dir().join(format!("ycrash_torn_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let experiment = Experiment::new("torn", &base).unwrap();

    let run_dir;
    {
        let run = experiment
            .start_run_with(
                "victim",
                RunOptions {
                    journal: true,
                    ..Default::default()
                },
            )
            .unwrap();
        for step in 0..100u64 {
            run.log_metric("loss", Context::Training, step, 0, step as f64);
        }
        run_dir = run.dir().to_path_buf();
        drop(run);
    }

    // Corrupt the tail the way a power cut would.
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(run_dir.join(JOURNAL_FILE))
        .unwrap();
    f.write_all(b"{\"Metric\":{\"name\":\"lo").unwrap();
    drop(f);

    let report = recover(&run_dir, &SpillPolicy::Inline).unwrap();
    assert_eq!(report.metric_samples, 100, "all complete records recovered");
    std::fs::remove_dir_all(&base).ok();
}
