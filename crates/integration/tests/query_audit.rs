//! ML-audit scenarios over the lineage query endpoint, end to end: a
//! train-sim run whose provenance leaks the test split into training,
//! audited over real HTTP under both server cores; a cross-run join
//! through shared artifact digests; and the same queries through the
//! failover-aware [`ClusterClient`]. The store backend follows
//! `YPROV_TEST_BACKEND` like the rest of the suite.

use integration::simulate_with_provenance;
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;
use train_sim::model::{Architecture, ModelConfig};
use train_sim::sim::{SimConfig, WalltimeCutoff};
use train_sim::{DatasetSpec, MachineConfig};
use yprov4ml::model::Direction;
use yprov4ml::Experiment;
use yprov_service::client::{Client, RetryPolicy};
use yprov_service::http::request;
use yprov_service::{
    ClusterClient, ClusterConfig, DocumentStore, NodeSpec, Server, ServerConfig, ServerCore,
};

fn store_for_test(dir: &std::path::Path) -> DocumentStore {
    match std::env::var("YPROV_TEST_BACKEND").as_deref() {
        Ok("durable") => DocumentStore::persistent(dir).unwrap(),
        _ => DocumentStore::new(),
    }
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(40),
        request_timeout: Duration::from_secs(10),
        jitter_seed: 7,
    }
}

fn small_cfg() -> SimConfig {
    SimConfig {
        model: ModelConfig::sized(Architecture::SwinV2, 100_000_000),
        machine: MachineConfig::frontier_like(),
        dataset: DatasetSpec::tiny(2_000),
        gpus: 8,
        per_gpu_batch: 32,
        epochs: 2,
        comm: Default::default(),
        cutoff: WalltimeCutoff::Unlimited,
        exercise_collective: false,
        phase: train_sim::sim::Phase::PreTraining,
        grad_accumulation: 1,
        resume_from: None,
        faults: Default::default(),
    }
}

/// Two simulated runs in one experiment. `train-a` leaks: it reads the
/// test split as a training input. `train-b` is clean. Both consume the
/// same corpus bytes, so a cross-run join links them by digest.
fn produce_runs(base: &std::path::Path) -> (String, String) {
    let exp = Experiment::new("audit", base).unwrap();
    for (name, leaky) in [("train-a", true), ("train-b", false)] {
        let run = exp.start_run(name).unwrap();
        run.log_artifact_bytes("corpus.bin", b"shared corpus", Direction::Input)
            .unwrap();
        if leaky {
            run.log_artifact_bytes("test_split.bin", b"held-out data", Direction::Input)
                .unwrap();
        }
        let result = simulate_with_provenance(small_cfg(), &run, 50).unwrap();
        assert!(result.completed);
        run.log_model("model.ckpt", format!("weights-{name}").as_bytes())
            .unwrap();
        run.finish().unwrap();
    }
    let read = |name: &str| {
        std::fs::read_to_string(base.join("audit").join(name).join("prov.json")).unwrap()
    };
    (read("train-a"), read("train-b"))
}

fn doc_id(body: &str) -> String {
    let v: serde_json::Value = serde_json::from_str(body).unwrap();
    v["id"].as_str().unwrap().to_string()
}

fn post_query(addr: SocketAddr, id: &str, body: &str) -> (u16, serde_json::Value) {
    let (status, resp) = request(
        addr,
        "POST",
        &format!("/api/v0/documents/{id}/query"),
        Some(body),
    )
    .unwrap();
    let v: serde_json::Value =
        serde_json::from_str(&resp).unwrap_or(serde_json::Value::String(resp));
    (status, v)
}

#[test]
fn train_sim_leakage_is_audited_end_to_end_on_both_cores() {
    let base = std::env::temp_dir().join(format!("yqa_audit_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let (leaky_json, clean_json) = produce_runs(&base);

    for (tag, core) in [
        ("evloop", ServerCore::EventLoop),
        ("threaded", ServerCore::Threaded),
    ] {
        let store = store_for_test(&base.join(format!("store-{tag}")));
        let server = Server::bind(
            "127.0.0.1:0",
            store,
            ServerConfig {
                core,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();

        let client = Client::new(addr, policy());
        let leaky = doc_id(&client.upload_document(&leaky_json).unwrap().body);
        let clean = doc_id(&client.upload_document(&clean_json).unwrap().body);

        // Audit 1 — data leakage. The default filters catch the test
        // split feeding the training activity; the clean run passes.
        let (status, v) = post_query(addr, &leaky, r#"{"audit": "leakage", "render": "dot"}"#);
        assert_eq!(status, 200, "{tag}: {v}");
        assert_eq!(v["clean"], false, "{tag}: {v}");
        assert_eq!(
            v["leaks"][0]["start"],
            "exp:train-a/artifact/test_split.bin"
        );
        assert_eq!(v["leaks"][0]["end"], "exp:train-a");
        assert!(v["dot"].as_str().unwrap().contains("digraph"));
        let (status, v) = post_query(addr, &clean, r#"{"audit": "leakage"}"#);
        assert_eq!(status, 200);
        assert_eq!(v["clean"], true, "{tag}: {v}");
        assert_eq!(v["test_artifacts"], 0);

        // Audit 2 — GDPR membership: the corpus is in the model's
        // provenance closure; the reverse direction is not membership.
        let body = r#"{"audit": "gdpr",
            "sample": "exp:train-a/artifact/corpus.bin",
            "model": "exp:train-a/artifact/model.ckpt"}"#;
        let (status, v) = post_query(addr, &leaky, body);
        assert_eq!(status, 200, "{tag}: {v}");
        assert_eq!(v["trained_on"], true, "{tag}: {v}");
        let path = v["path"].as_array().unwrap();
        assert_eq!(path.first().unwrap(), "exp:train-a/artifact/corpus.bin");
        assert_eq!(path.last().unwrap(), "exp:train-a/artifact/model.ckpt");
        let body = r#"{"audit": "gdpr",
            "sample": "exp:train-a/artifact/model.ckpt",
            "model": "exp:train-a/artifact/corpus.bin"}"#;
        let (status, v) = post_query(addr, &leaky, body);
        assert_eq!(status, 200);
        assert_eq!(v["trained_on"], false, "{tag}: {v}");

        // Audit 3 — group fairness over a run whose samples carry
        // yprov4ml:group attributes.
        let fairness_doc = fairness_doc_json();
        let fid = doc_id(&client.upload_document(&fairness_doc).unwrap().body);
        let (status, v) = post_query(addr, &fid, r#"{"audit": "fairness", "model": "exp:model"}"#);
        assert_eq!(status, 200, "{tag}: {v}");
        assert_eq!(v["groups"]["a"], 2, "{tag}: {v}");
        assert_eq!(v["groups"]["b"], 1);
        assert_eq!(v["total"], 3);
        assert_eq!(v["balance"], 0.5);

        // Cross-run join: the shared corpus digest links both runs.
        let body = format!(r#"{{"audit": "join", "docs": ["{clean}"]}}"#);
        let (status, v) = post_query(addr, &leaky, &body);
        assert_eq!(status, 200, "{tag}: {v}");
        assert!(v["shared_count"].as_u64().unwrap() >= 1, "{tag}: {v}");
        let shared = v["joined"]
            .as_array()
            .unwrap()
            .iter()
            .find(|j| j["shared"] == true)
            .expect("corpus digest is shared");
        let artifacts = shared["artifacts"].as_array().unwrap();
        assert_eq!(artifacts.len(), 2, "{tag}: {v}");
        let consumers = shared["consumers"].as_array().unwrap();
        assert_eq!(consumers.len(), 2, "both runs consumed the corpus");

        // A raw path query runs over the same endpoint: the model's
        // full provenance closure includes the leaked test split.
        let body = r#"{"query": {
            "start": {"id": "exp:train-a/artifact/model.ckpt"},
            "steps": [{"dir": "forward", "repeat": "+",
                       "target": {"idContains": "test_split"}}]
        }}"#;
        let (status, v) = post_query(addr, &leaky, body);
        assert_eq!(status, 200, "{tag}: {v}");
        assert_eq!(v["row_count"], 1, "{tag}: {v}");
        assert_eq!(v["rows"][0]["end"], "exp:train-a/artifact/test_split.bin");

        server.shutdown();
    }
    std::fs::remove_dir_all(&base).ok();
}

/// A run whose training samples carry `yprov4ml:group` attributes:
/// two of group `a`, one of group `b`, all feeding `exp:model`.
fn fairness_doc_json() -> String {
    use prov_model::{AttrValue, ProvDocument, QName};
    let mut doc = ProvDocument::new();
    doc.namespaces_mut().register("exp", "http://ex/").unwrap();
    doc.namespaces_mut()
        .register("yprov4ml", prov_model::qname::YPROV_NS)
        .unwrap();
    for (name, group) in [("s1", "a"), ("s2", "a"), ("s3", "b")] {
        doc.entity(QName::new("exp", name))
            .attr(QName::yprov("group"), AttrValue::from(group));
        doc.used(QName::new("exp", "fit"), QName::new("exp", name));
    }
    doc.activity(QName::new("exp", "fit"));
    doc.entity(QName::new("exp", "model"));
    doc.was_generated_by(QName::new("exp", "model"), QName::new("exp", "fit"));
    doc.to_json_string().unwrap()
}

#[test]
fn cluster_client_queries_survive_primary_failover() {
    let base = std::env::temp_dir().join(format!("yqa_cluster_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let (leaky_json, _) = produce_runs(&base);

    let ids = ["node-a", "node-b", "node-c"];
    let listeners: Vec<TcpListener> = (0..3)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
    drop(listeners);
    let stores: Vec<DocumentStore> = ids
        .iter()
        .map(|id| DocumentStore::persistent(&base.join(id)).unwrap())
        .collect();
    let mut servers: Vec<Option<Server>> = ids
        .iter()
        .enumerate()
        .map(|(i, id)| {
            let peers = ids
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(j, pid)| NodeSpec::new(*pid, addrs[j]))
                .collect();
            Some(
                Server::bind(
                    &addrs[i].to_string(),
                    stores[i].clone(),
                    ServerConfig {
                        cluster: Some(ClusterConfig::new(*id, peers)),
                        ..Default::default()
                    },
                )
                .unwrap(),
            )
        })
        .collect();

    let cluster = ClusterClient::new(
        ids.iter()
            .zip(&addrs)
            .map(|(id, addr)| NodeSpec::new(*id, *addr))
            .collect(),
        2,
        policy(),
    );

    let resp = cluster.put("run-leaky", &leaky_json).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body);

    // The audit answers through the cluster client's routing.
    let resp = cluster
        .query("run-leaky", r#"{"audit": "leakage"}"#)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let v: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
    assert_eq!(v["clean"], false, "{}", resp.body);

    // Kill the primary: the query fails over to a replica.
    let primary = cluster.placement("run-leaky")[0].clone();
    let idx = ids.iter().position(|id| *id == primary).unwrap();
    servers[idx].take().unwrap().shutdown();
    let resp = cluster
        .query("run-leaky", r#"{"audit": "leakage"}"#)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let v: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
    assert_eq!(v["clean"], false, "{}", resp.body);

    // Body errors are authoritative, not retried into unavailability.
    let resp = cluster.query("run-leaky", r#"{"audit": "nope"}"#).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);

    for server in servers.into_iter().flatten() {
        server.shutdown();
    }
    std::fs::remove_dir_all(&base).ok();
}
