//! Property test for the reproducibility pipeline: any configuration
//! the simulator accepts must replay *exactly* from its PROV-JSON.

use integration::{replay_from_provenance, simulate_with_provenance};
use proptest::prelude::*;
use train_sim::model::{Architecture, ModelConfig};
use train_sim::sim::{Phase, SimConfig, WalltimeCutoff};
use train_sim::{DatasetSpec, MachineConfig};
use yprov4ml::Experiment;

proptest! {
    // Each case simulates + writes + reloads + re-simulates; keep the
    // count modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_run_replays_from_its_provenance(
        arch_pick in 0usize..2,
        params in prop::sample::select(vec![100_000_000u64, 200_000_000, 600_000_000]),
        gpus in prop::sample::select(vec![1u32, 8, 16, 64]),
        batch in prop::sample::select(vec![8u32, 32]),
        samples in 500u64..5_000,
        epochs in 1u32..4,
    ) {
        let arch = if arch_pick == 0 { Architecture::MaeVit } else { Architecture::SwinV2 };
        let cfg = SimConfig {
            model: ModelConfig::sized(arch, params),
            machine: MachineConfig::frontier_like(),
            dataset: DatasetSpec::tiny(samples),
            gpus,
            per_gpu_batch: batch,
            epochs,
            comm: Default::default(),
            cutoff: WalltimeCutoff::Unlimited,
            exercise_collective: false,
            phase: Phase::PreTraining,
            grad_accumulation: 1,
            resume_from: None,
            faults: Default::default(),
        };

        let base = std::env::temp_dir().join(format!(
            "yreplay_prop_{}_{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let experiment = Experiment::new("replay", &base).unwrap();
        let run = experiment.start_run("r").unwrap();
        let original = simulate_with_provenance(cfg, &run, 50).unwrap();
        run.finish().unwrap();

        let doc = experiment.load_run_document("r").unwrap();
        let replay = replay_from_provenance(&doc).unwrap();
        std::fs::remove_dir_all(&base).ok();

        prop_assert!(replay.reproduced,
            "recorded {:?} vs replayed {}", replay.recorded_loss, replay.replayed_loss);
        prop_assert_eq!(replay.result.final_loss, original.final_loss);
        prop_assert_eq!(replay.result.steps, original.steps);
        prop_assert!((replay.result.energy_kwh - original.energy_kwh).abs() < 1e-12);
    }
}
