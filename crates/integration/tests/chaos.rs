//! Chaos test for the crash-resilience layer, end to end: a seeded
//! fault plan kills a journaled training run mid-flight, the write-ahead
//! journal recovers it (zero accepted-record loss modulo the counted
//! torn tail), and the recovered provenance uploads through a server
//! that fails the first attempts — all fully deterministic.

use integration::{simulate_with_provenance, ProvenanceObserver};
use train_sim::model::{Architecture, ModelConfig};
use train_sim::sim::{
    run_with_recovery, EpochEvent, NullObserver, RunResult, SimConfig, StepEvent, TrainObserver,
    WalltimeCutoff,
};
use train_sim::{DatasetSpec, FaultKind, FaultPlan, MachineConfig, TrainingSimulation};
use yprov4ml::journal::{recover_detailed, RecoveryReport, JOURNAL_FILE};
use yprov4ml::run::RunOptions;
use yprov4ml::spill::SpillPolicy;
use yprov4ml::{Experiment, RunStatus};
use yprov_service::{Client, DocumentStore, RetryPolicy, Server, ServerConfig};

fn cfg(faults: FaultPlan) -> SimConfig {
    SimConfig {
        model: ModelConfig::sized(Architecture::MaeVit, 100_000_000),
        machine: MachineConfig::frontier_like(),
        dataset: DatasetSpec::tiny(2_000),
        gpus: 8,
        per_gpu_batch: 16,
        epochs: 2,
        comm: Default::default(),
        cutoff: WalltimeCutoff::Unlimited,
        exercise_collective: false,
        phase: train_sim::sim::Phase::PreTraining,
        grad_accumulation: 1,
        resume_from: None,
        faults,
    }
}

fn fast_retries(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_delay: std::time::Duration::from_millis(5),
        max_delay: std::time::Duration::from_millis(40),
        request_timeout: std::time::Duration::from_secs(5),
        jitter_seed: seed,
    }
}

/// Crashes a journaled run at `faults`' fatal fault, appends a torn
/// tail, recovers, and returns (records accepted before the crash,
/// recovery report, recovered PROV-JSON).
fn crash_and_recover(base: &std::path::Path, faults: FaultPlan) -> (usize, RecoveryReport, String) {
    let experiment = Experiment::new("chaos", base).unwrap();
    let run = experiment
        .start_run_with(
            "victim",
            RunOptions {
                journal: true,
                ..Default::default()
            },
        )
        .unwrap();
    let result = simulate_with_provenance(cfg(faults), &run, 1).unwrap();
    assert!(result.fault.is_some(), "the fault plan must kill the run");
    assert!(!result.completed);

    run.flush().unwrap();
    let accepted = run.records_accepted();
    let run_dir = run.dir().to_path_buf();
    // Simulated crash: the Run is dropped without finish(); only the
    // journal survives — with a torn line, as a power cut would leave.
    drop(run);
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(run_dir.join(JOURNAL_FILE))
        .unwrap();
    f.write_all(b"0badc0de {\"Metric\":{\"name\":\"loss\",\"conte")
        .unwrap();
    drop(f);

    let (report, recovery) = recover_detailed(&run_dir, &SpillPolicy::Inline).unwrap();
    assert_eq!(report.status, RunStatus::Recovered);
    // Zero accepted-record loss: every record the API accepted is in
    // the recovered state; the torn tail is counted, not lost silently.
    assert_eq!(
        recovery.records, accepted,
        "accepted records must all recover"
    );
    assert_eq!(recovery.skipped, 1, "exactly the torn tail");

    let prov_json = std::fs::read_to_string(&report.prov_json_path).unwrap();
    (accepted, recovery, prov_json)
}

#[test]
fn crashed_run_recovers_and_uploads_through_flaky_server() {
    let base = std::env::temp_dir().join(format!("ychaos_up_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    let steps_per_epoch = {
        let c = cfg(FaultPlan::none());
        c.dataset.steps_per_epoch(c.global_batch())
    };
    let (_accepted, recovery, prov_json) =
        crash_and_recover(&base, FaultPlan::single_gpu_failure(steps_per_epoch + 2));
    assert!(recovery.records > 0);

    // The recovered document is valid PROV and survives a flaky upload
    // path: the server 503s the first two attempts, the client's
    // backoff rides them out.
    let doc = prov_model::ProvDocument::from_json_str(&prov_json).unwrap();
    assert!(prov_model::validate::is_valid(&doc));

    let server = Server::bind(
        "127.0.0.1:0",
        DocumentStore::new(),
        ServerConfig {
            chaos_fail_uploads: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let client = Client::new(server.addr(), fast_retries(7));
    let resp = client.upload_document(&prov_json).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body);
    assert_eq!(resp.attempts, 3, "two injected failures, then success");

    // The upload really landed.
    let id: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
    let fetched = client
        .get(&format!("/api/v0/documents/{}", id["id"].as_str().unwrap()))
        .unwrap();
    assert_eq!(fetched.status, 200);
    assert_eq!(
        prov_model::ProvDocument::from_json_str(&fetched.body)
            .unwrap()
            .element_count(),
        doc.element_count()
    );
    server.shutdown();
    std::fs::remove_dir_all(&base).ok();
}

/// Observer that both logs provenance and records the raw event stream.
struct Recording<'a> {
    inner: ProvenanceObserver<'a>,
    events: Vec<StepEvent>,
}

impl TrainObserver for Recording<'_> {
    fn on_run_start(&mut self, cfg: &SimConfig) {
        self.inner.on_run_start(cfg);
    }
    fn on_step(&mut self, e: &StepEvent) {
        self.events.push(*e);
        self.inner.on_step(e);
    }
    fn on_epoch_end(&mut self, e: &EpochEvent) {
        self.inner.on_epoch_end(e);
    }
    fn on_run_end(&mut self, r: &RunResult) {
        self.inner.on_run_end(r);
    }
}

#[test]
fn seeded_chaos_is_fully_deterministic() {
    let total_steps = {
        let c = cfg(FaultPlan::none());
        c.dataset.steps_per_epoch(c.global_batch()) * c.epochs as u64
    };
    let plan = FaultPlan::seeded(0xC0FFEE, total_steps);
    assert!(
        plan.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::GpuFailure { .. })),
        "seeded plans include a fatal fault"
    );

    let run_once = |tag: &str| {
        let base = std::env::temp_dir().join(format!("ychaos_det_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let experiment = Experiment::new("chaos", &base).unwrap();
        let run = experiment
            .start_run_with(
                "victim",
                RunOptions {
                    journal: true,
                    ..Default::default()
                },
            )
            .unwrap();
        let sim = TrainingSimulation::new(cfg(plan.clone())).unwrap();
        let mut observer = Recording {
            inner: ProvenanceObserver::new(&run),
            events: Vec::new(),
        };
        let result = sim.run(&mut observer);
        run.flush().unwrap();
        let run_dir = run.dir().to_path_buf();
        drop(run);
        let (_, recovery) = recover_detailed(&run_dir, &SpillPolicy::Inline).unwrap();
        std::fs::remove_dir_all(&base).ok();
        (result, observer.events, recovery)
    };

    let (result_a, events_a, recovery_a) = run_once("a");
    let (result_b, events_b, recovery_b) = run_once("b");
    assert_eq!(result_a, result_b, "same seed, same run result");
    assert_eq!(events_a, events_b, "same seed, same step-event stream");
    assert_eq!(recovery_a, recovery_b, "same seed, same recovery report");
    assert!(result_a.fault.is_some());
}

#[test]
fn elastic_restart_completes_after_gpu_failure() {
    let steps_per_epoch = {
        let c = cfg(FaultPlan::none());
        c.dataset.steps_per_epoch(c.global_batch())
    };
    let base = cfg(FaultPlan::single_gpu_failure(steps_per_epoch + 2));
    let outcome = run_with_recovery(&base, &mut NullObserver, 2, true).unwrap();
    assert!(
        outcome.result.completed,
        "restart from checkpoint finishes the job"
    );
    assert_eq!(outcome.attempts, 2);
    assert_eq!(outcome.final_gpus, 7, "elastic restart shed the lost rank");
    assert!(outcome.lost_steps > 0);
}
