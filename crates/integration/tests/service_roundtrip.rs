//! Producer → service → explorer integration over real HTTP: the yProv
//! ecosystem loop with generated (not hand-written) documents.

use yprov4ml::model::{Context, Direction};
use yprov4ml::Experiment;
use yprov_service::explorer;
use yprov_service::http::request;
use yprov_service::{DocumentStore, Server, ServerConfig};

/// The store under test: in-memory by default; `YPROV_TEST_BACKEND=durable`
/// (set by the CI backend matrix) runs the same tests over the durable
/// backend persisted under `dir`.
fn store_for_test(dir: &std::path::Path) -> DocumentStore {
    match std::env::var("YPROV_TEST_BACKEND").as_deref() {
        Ok("durable") => DocumentStore::persistent(dir).unwrap(),
        _ => DocumentStore::new(),
    }
}

fn produce_runs(base: &std::path::Path, n: usize) -> Experiment {
    let experiment = Experiment::new("svc", base).unwrap();
    for i in 0..n {
        let run = experiment.start_run(format!("run-{i}")).unwrap();
        run.log_param("learning_rate", 10f64.powi(-(i as i32 + 2)));
        run.log_artifact_bytes("data.bin", b"shared input", Direction::Input)
            .unwrap();
        for step in 0..30u64 {
            run.log_metric(
                "loss",
                Context::Training,
                step,
                0,
                (i + 1) as f64 / (step + 1) as f64,
            );
        }
        run.log_model("model.ckpt", format!("weights-{i}").as_bytes())
            .unwrap();
        run.finish().unwrap();
    }
    experiment
}

#[test]
fn http_roundtrip_with_generated_documents() {
    let base = std::env::temp_dir().join(format!("ysvc_rt_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let experiment = produce_runs(&base, 3);

    let store = store_for_test(&base.join("store"));
    let server = Server::bind("127.0.0.1:0", store.clone(), ServerConfig::default()).unwrap();
    let addr = server.addr();

    // Upload all three via HTTP; fetch each back and compare to disk.
    for name in experiment.list_runs().unwrap() {
        let disk_json =
            std::fs::read_to_string(experiment.dir().join(&name).join("prov.json")).unwrap();
        let (status, body) = request(addr, "POST", "/api/v0/documents", Some(&disk_json)).unwrap();
        assert_eq!(status, 201);
        let id: serde_json::Value = serde_json::from_str(&body).unwrap();
        let id = id["id"].as_str().unwrap();

        let (status, served) =
            request(addr, "GET", &format!("/api/v0/documents/{id}"), None).unwrap();
        assert_eq!(status, 200);
        let mut on_disk = prov_model::ProvDocument::from_json_str(&disk_json).unwrap();
        let mut from_server = prov_model::ProvDocument::from_json_str(&served).unwrap();
        on_disk.canonicalize();
        from_server.canonicalize();
        assert_eq!(on_disk, from_server, "server must round-trip {name}");
    }

    // Lineage over HTTP for the second run's model.
    let (status, body) = request(
        addr,
        "GET",
        "/api/v0/documents/doc-2/ancestors?focus=exp%3Arun-1%2Fartifact%2Fmodel.ckpt",
        None,
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    let ancestors: Vec<&str> = v["ancestors"]
        .as_array()
        .unwrap()
        .iter()
        .map(|a| a.as_str().unwrap())
        .collect();
    assert!(ancestors.contains(&"exp:run-1/artifact/data.bin"));

    // Explorer sees all three runs with their artifacts.
    let summaries = explorer::summarize(&store);
    assert_eq!(summaries.len(), 3);
    assert!(summaries.iter().all(|s| s.artifacts == 2 && s.metrics == 1));

    // Digest search: which run produced this exact model?
    let digest = yprov4ml::hash::sha256_hex(b"weights-1");
    let hits = explorer::find_by_artifact_digest(&store, &digest);
    assert_eq!(hits.len(), 1);

    server.shutdown();
    std::fs::remove_dir_all(&base).ok();
}
