//! Determinism guarantees of the parallel finalize pipeline.
//!
//! The pipeline's contract is that parallelism is invisible in the
//! output: any worker-pool width and any collector shard count must
//! produce byte-identical artifacts. These tests pin that contract at
//! the store level (`write_many` across pool sizes) and end-to-end
//! (whole runs finalized at 1 vs 8 threads).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use metric_store::netcdf::{NcOptions, NcStore};
use metric_store::store::MetricStore;
use metric_store::zarr::{ZarrOptions, ZarrStore};
use metric_store::{MetricPoint, MetricSeries, WorkerPool};
use yprov4ml::run::{FinalizeOptions, RunOptions};
use yprov4ml::{Context, Experiment, SpillPolicy};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("yfinpar_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Reads every file under `root` into a map keyed by `/`-joined
/// relative path, so two directory trees can be compared byte-for-byte.
fn dir_bytes(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.insert(rel, std::fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

/// Series with uneven sizes so the task list spans empty, partial and
/// many-chunk shapes.
fn sample_series() -> Vec<MetricSeries> {
    let sizes = [1usize, 7, 999, 1_000, 4_321, 12_345];
    sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let mut s = MetricSeries::new(format!("metric_{i}"), "training");
            for j in 0..n {
                s.push(MetricPoint {
                    step: j as u64,
                    epoch: (j / 500) as u32,
                    time_us: 17 * j as i64,
                    value: (j as f64).sin() * (i + 1) as f64,
                });
            }
            s
        })
        .collect()
}

#[test]
fn zarr_write_many_is_byte_identical_across_pool_sizes() {
    let base = tmpdir("zarr");
    let series = sample_series();
    let refs: Vec<&MetricSeries> = series.iter().collect();

    let mut images = Vec::new();
    for threads in [1usize, 2, 8] {
        let dir = base.join(format!("t{threads}"));
        let store = ZarrStore::create(&dir, ZarrOptions::default()).unwrap();
        store.write_many(&refs, &WorkerPool::new(threads)).unwrap();
        images.push((threads, dir_bytes(&dir)));
    }
    let (_, reference) = &images[0];
    assert!(!reference.is_empty());
    for (threads, image) in &images[1..] {
        assert_eq!(
            image, reference,
            "zarr store differs between 1 and {threads} threads"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn netcdf_write_many_is_byte_identical_across_pool_sizes() {
    let base = tmpdir("nc");
    let series = sample_series();
    let refs: Vec<&MetricSeries> = series.iter().collect();

    let mut images = Vec::new();
    for threads in [1usize, 2, 8] {
        let path = base.join(format!("t{threads}.nc"));
        let store = NcStore::create(&path, NcOptions::default()).unwrap();
        store.write_many(&refs, &WorkerPool::new(threads)).unwrap();
        images.push((threads, std::fs::read(&path).unwrap()));
    }
    let (_, reference) = &images[0];
    assert!(!reference.is_empty());
    for (threads, image) in &images[1..] {
        assert_eq!(
            image, reference,
            "netcdf file differs between 1 and {threads} threads"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn uncompressed_netcdf_write_many_stays_identical() {
    let base = tmpdir("ncz");
    let series = sample_series();
    let refs: Vec<&MetricSeries> = series.iter().collect();
    let opts = NcOptions {
        compress_columns: false,
    };

    let serial_path = base.join("serial.nc");
    NcStore::create(&serial_path, opts.clone())
        .unwrap()
        .write_many(&refs, &WorkerPool::serial())
        .unwrap();
    let pooled_path = base.join("pooled.nc");
    NcStore::create(&pooled_path, opts)
        .unwrap()
        .write_many(&refs, &WorkerPool::new(8))
        .unwrap();
    assert_eq!(
        std::fs::read(&serial_path).unwrap(),
        std::fs::read(&pooled_path).unwrap()
    );
    std::fs::remove_dir_all(&base).ok();
}

/// Drives one full run — 8 concurrent producer ranks logging disjoint
/// metrics with fixed timestamps — and returns the finalized Zarr
/// store's bytes plus the sample count.
fn finalize_run(base: &Path, threads: usize) -> (BTreeMap<String, Vec<u8>>, usize) {
    let exp = Experiment::new("exp", base).unwrap();
    let run = Arc::new(
        exp.start_run_with(
            "r",
            RunOptions {
                spill: SpillPolicy::Zarr(ZarrOptions::default()),
                finalize: FinalizeOptions::with_threads(threads),
                ..Default::default()
            },
        )
        .unwrap(),
    );
    run.start_context(Context::Training);
    let mut producers = Vec::new();
    for rank in 0..8u32 {
        let run = Arc::clone(&run);
        producers.push(std::thread::spawn(move || {
            for step in 0..600u64 {
                run.log_metric_at(
                    format!("loss/rank{rank}"),
                    Context::Training,
                    step,
                    (step / 100) as u32,
                    step as i64,
                    step as f64 / (rank + 1) as f64,
                );
            }
        }));
    }
    for p in producers {
        p.join().unwrap();
    }
    run.end_context(Context::Training);
    let run = Arc::try_unwrap(run).ok().expect("producers joined");
    let store_dir = exp.dir().join("r").join("metrics.zarr");
    let report = run.finish().unwrap();
    (dir_bytes(&store_dir), report.metric_samples)
}

#[test]
fn whole_run_finalize_is_byte_identical_at_1_and_8_threads() {
    let base = tmpdir("endtoend");
    let (serial, n_serial) = finalize_run(&base.join("serial"), 1);
    let (parallel, n_parallel) = finalize_run(&base.join("parallel"), 8);
    assert_eq!(n_serial, 8 * 600);
    assert_eq!(n_parallel, 8 * 600);
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "finalized stores differ across thread counts"
    );
    std::fs::remove_dir_all(&base).ok();
}
