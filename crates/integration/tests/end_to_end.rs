//! The full pipeline, end to end: simulate a distributed training run,
//! collect provenance, validate it, query its lineage, serve it over
//! the REST API, package it as an RO-Crate, and replay it from the
//! PROV-JSON alone.

use integration::{replay_from_provenance, simulate_with_provenance};
use prov_graph::ProvGraph;
use prov_model::QName;
use train_sim::model::{Architecture, ModelConfig};
use train_sim::sim::{SimConfig, WalltimeCutoff};
use train_sim::{DatasetSpec, MachineConfig};
use yprov4ml::model::Direction;
use yprov4ml::Experiment;
use yprov_service::http::request;
use yprov_service::{DocumentStore, Server, ServerConfig};

fn cfg() -> SimConfig {
    SimConfig {
        model: ModelConfig::sized(Architecture::MaeVit, 200_000_000),
        machine: MachineConfig::frontier_like(),
        dataset: DatasetSpec::tiny(5_000),
        gpus: 16,
        per_gpu_batch: 32,
        epochs: 2,
        comm: Default::default(),
        cutoff: WalltimeCutoff::Unlimited,
        exercise_collective: true,
        phase: train_sim::sim::Phase::PreTraining,
        grad_accumulation: 1,
        resume_from: None,
        faults: Default::default(),
    }
}

#[test]
fn full_pipeline() {
    let base = std::env::temp_dir().join(format!("ye2e_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    // 1. Produce: simulate with provenance, plus an input artifact.
    let experiment = Experiment::new("e2e", &base).unwrap();
    let run = experiment.start_run("pipeline-run").unwrap();
    run.log_artifact_bytes(
        "dataset_manifest.json",
        b"{\"patches\": 5000}",
        Direction::Input,
    )
    .unwrap();
    let result = simulate_with_provenance(cfg(), &run, 5).unwrap();
    run.log_model("final.ckpt", b"trained weights").unwrap();
    let report = run.finish().unwrap();
    assert!(result.completed);
    assert!(report.metric_samples > 0);

    // 2. Validate: the document is well-formed PROV.
    let doc = experiment.load_run_document("pipeline-run").unwrap();
    let issues = prov_model::validate(&doc);
    assert!(
        prov_model::validate::is_valid(&doc),
        "provenance must validate: {issues:?}"
    );

    // 3. Lineage: the model's ancestry reaches the input artifact.
    let graph = ProvGraph::new(&doc);
    let model = QName::new("exp", "pipeline-run/artifact/final.ckpt");
    let ancestors = graph.ancestors(&model);
    assert!(ancestors.contains(&QName::new(
        "exp",
        "pipeline-run/artifact/dataset_manifest.json"
    )));
    assert!(!graph.has_cycle());

    // 4. Serve: upload over real HTTP, query back.
    let store = DocumentStore::new();
    let server = Server::bind("127.0.0.1:0", store.clone(), ServerConfig::default()).unwrap();
    let json = std::fs::read_to_string(&report.prov_json_path).unwrap();
    let (status, body) = request(server.addr(), "POST", "/api/v0/documents", Some(&json)).unwrap();
    assert_eq!(status, 201, "{body}");
    let id: serde_json::Value = serde_json::from_str(&body).unwrap();
    let id = id["id"].as_str().unwrap();
    let (status, stats) = request(
        server.addr(),
        "GET",
        &format!("/api/v0/documents/{id}/stats"),
        None,
    )
    .unwrap();
    assert_eq!(status, 200);
    let stats: serde_json::Value = serde_json::from_str(&stats).unwrap();
    assert!(stats["entities"].as_u64().unwrap() > 3);
    server.shutdown();

    // 5. Package: the run directory wraps into a valid RO-Crate.
    let run_dir = experiment.dir().join("pipeline-run");
    rocrate::validate::wrap_directory(&run_dir, "pipeline-run", "e2e test run").unwrap();
    assert!(rocrate::validate_crate(&run_dir).unwrap().is_empty());

    // 6. Reproduce: replay the run from its PROV-JSON alone.
    let replay = replay_from_provenance(&doc).unwrap();
    assert!(
        replay.reproduced,
        "recorded {:?} vs replayed {}",
        replay.recorded_loss, replay.replayed_loss
    );
    assert_eq!(replay.result.final_loss, result.final_loss);

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn combined_experiment_document_spans_runs() {
    let base = std::env::temp_dir().join(format!("ye2e_comb_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let experiment = Experiment::new("sweep", &base).unwrap();

    for (name, gpus) in [("g8", 8u32), ("g32", 32)] {
        let run = experiment.start_run(name).unwrap();
        let mut c = cfg();
        c.gpus = gpus;
        c.exercise_collective = false;
        simulate_with_provenance(c, &run, 20).unwrap();
        run.finish().unwrap();
    }

    let combined = experiment.combined_document().unwrap();
    assert!(prov_model::validate::is_valid(&combined));
    let run_ty = QName::yprov("RunExecution");
    assert_eq!(
        combined
            .iter_elements()
            .filter(|e| e.has_type(&run_ty))
            .count(),
        2
    );
    // Both runs share the experiment entity — one node, two wasStartedBy.
    assert_eq!(
        combined
            .relations_of(prov_model::RelationKind::WasStartedBy)
            .count(),
        2
    );
    std::fs::remove_dir_all(&base).ok();
}
