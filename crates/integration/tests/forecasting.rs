//! The §3.3 loop, end to end: run a grid of simulated experiments under
//! provenance collection, fit a forecasting model *from the stored
//! provenance files only*, and predict an unseen configuration — then
//! check the prediction against actually running that configuration.

use integration::simulate_with_provenance;
use train_sim::model::{Architecture, ModelConfig};
use train_sim::sim::{NullObserver, Phase, SimConfig, TrainingSimulation, WalltimeCutoff};
use train_sim::{DatasetSpec, MachineConfig};
use yprov4ml::compare::RunSummary;
use yprov4ml::forecast::{LogLinearModel, RunFeatures};
use yprov4ml::Experiment;

fn cfg(params: u64, gpus: u32, samples: u64) -> SimConfig {
    SimConfig {
        model: ModelConfig::sized(Architecture::SwinV2, params),
        machine: MachineConfig::frontier_like(),
        dataset: DatasetSpec::modis().with_samples(samples),
        gpus,
        per_gpu_batch: 32,
        epochs: 2,
        comm: Default::default(),
        cutoff: WalltimeCutoff::Unlimited,
        exercise_collective: false,
        phase: Phase::PreTraining,
        grad_accumulation: 1,
        resume_from: None,
        faults: Default::default(),
    }
}

#[test]
fn forecast_unseen_configuration_from_provenance() {
    let base = std::env::temp_dir().join(format!("yforecast_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let experiment = Experiment::new("scaling-kb", &base).unwrap();

    // 1. Build the knowledge base: a 2×2×2 grid of real (simulated)
    //    runs, each leaving only its provenance file behind.
    for &params in &[100_000_000u64, 600_000_000] {
        for &gpus in &[8u32, 64] {
            for &samples in &[20_000u64, 80_000] {
                let name = format!("p{}m-g{gpus}-s{samples}", params / 1_000_000);
                let run = experiment.start_run(&name).unwrap();
                simulate_with_provenance(cfg(params, gpus, samples), &run, 50).unwrap();
                run.finish().unwrap();
            }
        }
    }

    // 2. Reload summaries from disk and fit walltime + energy models.
    let summaries: Vec<RunSummary> = experiment
        .list_runs()
        .unwrap()
        .iter()
        .filter_map(|name| RunSummary::from_document(&experiment.load_run_document(name).unwrap()))
        .collect();
    assert_eq!(summaries.len(), 8);
    let walltime_model = LogLinearModel::fit_from_summaries(&summaries, "walltime_s").unwrap();
    let energy_model = LogLinearModel::fit_from_summaries(&summaries, "energy_kwh").unwrap();
    assert!(
        walltime_model.train_rms_rel_error < 0.25,
        "training fit {}",
        walltime_model.train_rms_rel_error
    );

    // 3. Predict an unseen interior corner with a single inference step.
    let planned_cfg = cfg(200_000_000, 32, 40_000);
    let planned = RunFeatures {
        params: 200_000_000.0,
        samples: (planned_cfg.dataset.samples * planned_cfg.epochs as u64) as f64,
        gpus: 32.0,
    };
    let predicted_walltime = walltime_model.predict(&planned);
    let predicted_energy = energy_model.predict(&planned);

    // 4. Ground truth: actually run it.
    let actual = TrainingSimulation::new(planned_cfg)
        .unwrap()
        .run(&mut NullObserver);
    let walltime_err = (predicted_walltime - actual.walltime_s).abs() / actual.walltime_s;
    let energy_err = (predicted_energy - actual.energy_kwh).abs() / actual.energy_kwh;
    assert!(
        walltime_err < 0.5,
        "walltime: predicted {predicted_walltime:.0}s vs actual {:.0}s ({walltime_err:.2} rel)",
        actual.walltime_s
    );
    assert!(
        energy_err < 0.5,
        "energy: predicted {predicted_energy:.3} vs actual {:.3} ({energy_err:.2} rel)",
        actual.energy_kwh
    );

    // 5. The fitted exponents are physically sensible: more params →
    //    more walltime; more samples → more walltime.
    let exp = walltime_model.exponents();
    assert!(exp["params"] > 0.0);
    assert!(exp["samples"] > 0.0);

    std::fs::remove_dir_all(&base).ok();
}
