//! The whole ecosystem in one test: MLflow-shim logging → provenance
//! files → persistent tamper-evident service → workflow-level
//! provenance → RO-Crate packaging → impact analysis across the merged
//! graph.

use prov_model::QName;
use yprov4ml::mlflow;
use yprov4wfs::{TaskOutcome, Workflow};
use yprov_service::DocumentStore;

#[test]
fn mlflow_to_service_to_crate() {
    let base = std::env::temp_dir().join(format!("yeco_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    // 1. Produce a run through the MLflow-style module API.
    mlflow::set_tracking_dir(base.join("tracking"));
    mlflow::set_experiment("eco").unwrap();
    mlflow::start_run("ported-run").unwrap();
    mlflow::log_param("learning_rate", 0.01);
    for step in 0..100u64 {
        mlflow::log_metric("loss", 1.0 / (step + 1) as f64, step);
    }
    mlflow::log_text("model.txt", "weights").unwrap();
    let report = mlflow::end_run().unwrap();
    assert!(report.prov_json_path.is_file());

    // 2. Store it in a persistent, ledger-backed service store.
    let store_dir = base.join("service");
    let doc_id;
    {
        let store = DocumentStore::persistent(&store_dir).unwrap();
        let json = std::fs::read_to_string(&report.prov_json_path).unwrap();
        let doc = prov_model::ProvDocument::from_json_str(&json).unwrap();
        doc_id = store.upload(doc).unwrap();
        assert_eq!(store.ledger_entries().len(), 1);
    }
    // Reopen: the ledger verifies and the document is intact.
    let store = DocumentStore::persistent(&store_dir).unwrap();
    let doc = store.get(&doc_id).expect("persisted document");
    assert!(prov_model::validate::is_valid(&doc));

    // 3. A workflow consumes the run's model artifact; merge both
    //    provenance levels.
    let mut wf = Workflow::new("deploy");
    wf.task("package", [], |_| {
        Ok(TaskOutcome::new().output("bundle.tar", b"packaged model".to_vec()))
    });
    wf.task("publish", ["package"], |ctx| {
        let bundle = ctx.input("package", "bundle.tar").ok_or("no bundle")?;
        Ok(TaskOutcome::new().param("published_bytes", bundle.len()))
    });
    let wf_report = yprov4wfs::run(wf).unwrap();
    assert!(wf_report.succeeded());

    let mut merged = wf_report.document.clone();
    merged.merge(&doc).unwrap();
    assert!(prov_model::validate::is_valid(&merged));

    // 4. Impact analysis across the merged graph: everything downstream
    //    of the run's input parameterization.
    let run_activity = QName::new("exp", "ported-run");
    let taint = prov_graph::taint(&merged, &run_activity);
    assert!(
        taint
            .tainted_entities
            .iter()
            .any(|e| e.local().contains("model.txt")),
        "the run's artifact is downstream of the run: {taint:?}"
    );

    // 5. Package the run directory as a validated RO-Crate.
    let run_dir = report.prov_json_path.parent().unwrap().to_path_buf();
    rocrate::validate::wrap_directory(&run_dir, "ported-run", "ecosystem test").unwrap();
    assert!(rocrate::validate_crate(&run_dir).unwrap().is_empty());

    std::fs::remove_dir_all(&base).ok();
}
