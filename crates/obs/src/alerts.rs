//! Declarative threshold alerting over tsdb series.
//!
//! A rule names a series (as stored by [`crate::tsdb::Tsdb`] — counter
//! rates, gauge levels, or derived `:p99_ns`/`:mean_ns` histogram
//! series), a comparator, a threshold and a hold duration. The owning
//! scraper calls [`AlertSet::evaluate`] on every tick with a lookup
//! closure; rules walk the usual lifecycle:
//!
//! ```text
//!             breach                 held for `for_s`
//! Inactive ──────────▶ Pending ───────────────────────▶ Firing
//!     ▲                   │ clear                          │ clear
//!     │                   ▼                                ▼
//!     └───────────── (back to Inactive)                Resolved
//!                                                          │ breach
//!                                                          ▼
//!                                                       Pending
//! ```
//!
//! `Resolved` is a sticky tombstone — it records that the rule *did*
//! fire and has since cleared, which is exactly what a post-hoc
//! provenance document wants to capture — and only a fresh breach
//! moves it back to `Pending`.
//!
//! Each rule exports an `alerts_firing{rule="<name>"}` gauge (1 while
//! firing, else 0) into whatever registry the owner passes to
//! [`AlertSet::export_to`], so alert state rides the normal `/metrics`
//! scrape with no extra surface. Like the tsdb, evaluation is
//! clock-agnostic: time is caller-supplied `f64` seconds, so the full
//! pending→firing→resolved walk is testable under a virtual clock.

use crate::instrument::Gauge;
use crate::registry::Registry;
use std::sync::{Arc, Mutex, OnceLock};

/// Threshold comparator: the rule breaches when `value cmp threshold`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Gt,
    Ge,
    Lt,
    Le,
}

impl Cmp {
    pub fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            Cmp::Gt => value > threshold,
            Cmp::Ge => value >= threshold,
            Cmp::Lt => value < threshold,
            Cmp::Le => value <= threshold,
        }
    }

    /// The PromQL-style spelling, used in JSON listings and PROV attrs.
    pub fn symbol(self) -> &'static str {
        match self {
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
        }
    }

    /// Parses the [`symbol`](Cmp::symbol) spelling.
    pub fn parse(s: &str) -> Option<Cmp> {
        match s {
            ">" => Some(Cmp::Gt),
            ">=" => Some(Cmp::Ge),
            "<" => Some(Cmp::Lt),
            "<=" => Some(Cmp::Le),
            _ => None,
        }
    }
}

/// One declarative threshold rule.
#[derive(Debug, Clone)]
pub struct AlertRule {
    /// Unique rule name; becomes the `rule` label of `alerts_firing`.
    pub name: String,
    /// The tsdb series the rule watches.
    pub metric: String,
    pub cmp: Cmp,
    pub threshold: f64,
    /// How long the breach must hold before Pending becomes Firing.
    /// Zero fires on the first breaching tick.
    pub for_s: f64,
}

impl AlertRule {
    pub fn new(
        name: impl Into<String>,
        metric: impl Into<String>,
        cmp: Cmp,
        threshold: f64,
        for_s: f64,
    ) -> AlertRule {
        AlertRule {
            name: name.into(),
            metric: metric.into(),
            cmp,
            threshold,
            for_s,
        }
    }
}

/// Where a rule currently sits in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Inactive,
    Pending,
    Firing,
    Resolved,
}

impl Phase {
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Inactive => "inactive",
            Phase::Pending => "pending",
            Phase::Firing => "firing",
            Phase::Resolved => "resolved",
        }
    }
}

/// The evaluated state of one rule, as returned by [`AlertSet::states`].
#[derive(Debug, Clone)]
pub struct AlertState {
    pub rule: AlertRule,
    pub phase: Phase,
    /// When the current breach streak started (Pending/Firing).
    pub pending_since_s: Option<f64>,
    /// When the rule last transitioned to Firing.
    pub fired_at_s: Option<f64>,
    /// When the rule last transitioned to Resolved.
    pub resolved_at_s: Option<f64>,
    /// The value seen at the most recent evaluation, if the series
    /// existed.
    pub last_value: Option<f64>,
}

struct RuleSlot {
    state: AlertState,
    gauge: Option<Arc<Gauge>>,
}

/// A set of rules evaluated together on each scrape tick.
pub struct AlertSet {
    slots: Mutex<Vec<RuleSlot>>,
}

impl AlertSet {
    pub fn new(rules: Vec<AlertRule>) -> AlertSet {
        AlertSet {
            slots: Mutex::new(
                rules
                    .into_iter()
                    .map(|rule| RuleSlot {
                        state: AlertState {
                            rule,
                            phase: Phase::Inactive,
                            pending_since_s: None,
                            fired_at_s: None,
                            resolved_at_s: None,
                            last_value: None,
                        },
                        gauge: None,
                    })
                    .collect(),
            ),
        }
    }

    /// Registers an `alerts_firing{rule="..."}` gauge per rule in
    /// `registry` (all starting at 0) and keeps the handles so
    /// [`evaluate`](AlertSet::evaluate) can flip them.
    pub fn export_to(&self, registry: &Registry) {
        registry.set_help(
            "alerts_firing",
            "1 while the named alert rule is firing, else 0.",
        );
        let mut slots = self.slots.lock().expect("alerts poisoned");
        for slot in slots.iter_mut() {
            let gauge = registry.gauge(&format!(
                "alerts_firing{{rule=\"{}\"}}",
                slot.state.rule.name
            ));
            gauge.set(0);
            slot.gauge = Some(gauge);
        }
    }

    /// One evaluation pass at `now_s`. `lookup` resolves a metric name
    /// to its most recent value — `None` means "no fresh data", which
    /// counts as *not breaching* (absent traffic clears rate alerts).
    pub fn evaluate(&self, now_s: f64, mut lookup: impl FnMut(&str) -> Option<f64>) {
        let mut slots = self.slots.lock().expect("alerts poisoned");
        for slot in slots.iter_mut() {
            let st = &mut slot.state;
            let value = lookup(&st.rule.metric);
            st.last_value = value;
            let breach = value.is_some_and(|v| st.rule.cmp.holds(v, st.rule.threshold));
            let next = match (st.phase, breach) {
                (Phase::Inactive | Phase::Resolved, true) => {
                    st.pending_since_s = Some(now_s);
                    if st.rule.for_s <= 0.0 {
                        st.fired_at_s = Some(now_s);
                        Phase::Firing
                    } else {
                        Phase::Pending
                    }
                }
                (Phase::Pending, true) => {
                    let since = st.pending_since_s.unwrap_or(now_s);
                    if now_s - since >= st.rule.for_s {
                        st.fired_at_s = Some(now_s);
                        Phase::Firing
                    } else {
                        Phase::Pending
                    }
                }
                (Phase::Pending, false) => {
                    st.pending_since_s = None;
                    Phase::Inactive
                }
                (Phase::Firing, false) => {
                    st.pending_since_s = None;
                    st.resolved_at_s = Some(now_s);
                    Phase::Resolved
                }
                (Phase::Firing, true) => Phase::Firing,
                (Phase::Inactive, false) => Phase::Inactive,
                (Phase::Resolved, false) => Phase::Resolved,
            };
            st.phase = next;
            if let Some(gauge) = &slot.gauge {
                gauge.set(i64::from(next == Phase::Firing));
            }
        }
    }

    /// A snapshot of every rule's current state, in rule order.
    pub fn states(&self) -> Vec<AlertState> {
        self.slots
            .lock()
            .expect("alerts poisoned")
            .iter()
            .map(|s| s.state.clone())
            .collect()
    }

    /// Rules currently in [`Phase::Firing`].
    pub fn firing(&self) -> Vec<AlertState> {
        self.states()
            .into_iter()
            .filter(|s| s.phase == Phase::Firing)
            .collect()
    }
}

/// The process-global alert set, so run-finalisation code (which has no
/// handle on the service) can fold alert state into PROV documents.
/// Replaceable, unlike [`crate::global`]: a service restart within one
/// process (tests) installs its own set.
static GLOBAL_ALERTS: OnceLock<Mutex<Option<Arc<AlertSet>>>> = OnceLock::new();

fn global_slot() -> &'static Mutex<Option<Arc<AlertSet>>> {
    GLOBAL_ALERTS.get_or_init(|| Mutex::new(None))
}

/// Installs `set` as the process-global alert set.
pub fn set_global(set: Arc<AlertSet>) {
    *global_slot().lock().expect("alerts global poisoned") = Some(set);
}

/// The process-global alert set, if one was installed.
pub fn global() -> Option<Arc<AlertSet>> {
    global_slot().lock().expect("alerts global poisoned").clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(for_s: f64) -> AlertRule {
        AlertRule::new("hot", "load", Cmp::Gt, 10.0, for_s)
    }

    fn phase(set: &AlertSet) -> Phase {
        set.states()[0].phase
    }

    #[test]
    fn full_lifecycle_pending_firing_resolved() {
        let set = AlertSet::new(vec![rule(5.0)]);
        set.evaluate(0.0, |_| Some(1.0));
        assert_eq!(phase(&set), Phase::Inactive);
        set.evaluate(1.0, |_| Some(20.0));
        assert_eq!(phase(&set), Phase::Pending);
        set.evaluate(3.0, |_| Some(20.0));
        assert_eq!(phase(&set), Phase::Pending, "held only 2 s of 5");
        set.evaluate(6.0, |_| Some(20.0));
        assert_eq!(phase(&set), Phase::Firing);
        set.evaluate(7.0, |_| Some(1.0));
        assert_eq!(phase(&set), Phase::Resolved);
        set.evaluate(8.0, |_| Some(1.0));
        assert_eq!(phase(&set), Phase::Resolved, "resolved is sticky");
        let st = &set.states()[0];
        assert_eq!(st.fired_at_s, Some(6.0));
        assert_eq!(st.resolved_at_s, Some(7.0));
    }

    #[test]
    fn pending_clears_back_to_inactive() {
        let set = AlertSet::new(vec![rule(5.0)]);
        set.evaluate(0.0, |_| Some(20.0));
        assert_eq!(phase(&set), Phase::Pending);
        set.evaluate(1.0, |_| Some(1.0));
        assert_eq!(phase(&set), Phase::Inactive, "never fired");
        assert_eq!(set.states()[0].fired_at_s, None);
    }

    #[test]
    fn zero_hold_fires_immediately_and_resolved_can_refire() {
        let set = AlertSet::new(vec![rule(0.0)]);
        set.evaluate(0.0, |_| Some(20.0));
        assert_eq!(phase(&set), Phase::Firing);
        set.evaluate(1.0, |_| Some(1.0));
        assert_eq!(phase(&set), Phase::Resolved);
        set.evaluate(2.0, |_| Some(20.0));
        assert_eq!(phase(&set), Phase::Firing, "resolved re-arms on breach");
    }

    #[test]
    fn missing_series_counts_as_clear() {
        let set = AlertSet::new(vec![rule(0.0)]);
        set.evaluate(0.0, |_| Some(20.0));
        assert_eq!(phase(&set), Phase::Firing);
        set.evaluate(1.0, |_| None);
        assert_eq!(phase(&set), Phase::Resolved, "no data resolves");
        assert_eq!(set.states()[0].last_value, None);
    }

    #[test]
    fn firing_gauge_tracks_phase() {
        let reg = Registry::new();
        let set = AlertSet::new(vec![rule(0.0)]);
        set.export_to(&reg);
        let g = reg.gauge("alerts_firing{rule=\"hot\"}");
        assert_eq!(g.get(), 0);
        set.evaluate(0.0, |_| Some(20.0));
        assert_eq!(g.get(), 1);
        set.evaluate(1.0, |_| Some(1.0));
        assert_eq!(g.get(), 0);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP alerts_firing"), "{text}");
    }

    #[test]
    fn comparators() {
        assert!(Cmp::Gt.holds(2.0, 1.0) && !Cmp::Gt.holds(1.0, 1.0));
        assert!(Cmp::Ge.holds(1.0, 1.0));
        assert!(Cmp::Lt.holds(0.5, 1.0) && !Cmp::Lt.holds(1.0, 1.0));
        assert!(Cmp::Le.holds(1.0, 1.0));
        for c in [Cmp::Gt, Cmp::Ge, Cmp::Lt, Cmp::Le] {
            assert_eq!(Cmp::parse(c.symbol()), Some(c));
        }
        assert_eq!(Cmp::parse("=="), None);
    }

    #[test]
    fn global_slot_is_replaceable() {
        let a = Arc::new(AlertSet::new(vec![rule(0.0)]));
        set_global(a.clone());
        assert!(Arc::ptr_eq(&global().unwrap(), &a));
        let b = Arc::new(AlertSet::new(vec![]));
        set_global(b.clone());
        assert!(Arc::ptr_eq(&global().unwrap(), &b));
    }
}
