//! Structured tracing: causal spans, Chrome trace-event export, and a
//! crash flight recorder.
//!
//! Where the [`Registry`](crate::Registry) aggregates (how long do chunk
//! encodes take *on average*?), this module records individual spans —
//! span id, parent id, track label, name, start/end nanoseconds and
//! key=value annotations — so a single run can be laid out as a causal
//! timeline: *where inside run 7, epoch 3, rank 5 did the finalize
//! stall?*
//!
//! The design mirrors the metrics layer's cost contract:
//!
//! * **Disabled path** — [`span`] and [`record_complete`] return after a
//!   single `Relaxed` load of the process-wide enabled flag; no clock
//!   read, no allocation. Tracing starts disabled.
//! * **Enabled path** — each thread records into its own fixed-size
//!   ring, so recording never contends with other threads. The ring is
//!   guarded by a mutex, but only the exporter ever takes it from
//!   another thread: the common lock is uncontended (one CAS, no
//!   syscall).
//! * **Flight recorder** — rings overwrite their oldest spans once
//!   full and survive thread exit, so after a fault the last
//!   [`ring capacity`](set_ring_capacity) spans per thread are still
//!   there to be dumped ([`dump_flight_recorder`]) — the journal
//!   recovery path writes them to `trace_crash.json` and links the file
//!   into the recovered PROV document.
//!
//! Spans carry two clocks: [`Clock::Wall`] spans are stamped from a
//! process-wide monotonic epoch, while [`Clock::Simulated`] spans
//! ([`record_complete`]) carry virtual timestamps from the training
//! simulator — the exporter puts them in separate trace-event
//! "processes" so Perfetto renders one coherent timeline per clock,
//! with one track per simulated rank.
//!
//! Cross-process causality uses W3C trace context: [`traceparent`]
//! renders the current position as a `traceparent` header value and
//! [`adopt_remote`] parses one on the receiving side, so a client's
//! upload spans and the server's handler spans share one trace id.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity (spans retained per thread).
pub const DEFAULT_RING_CAPACITY: usize = 16_384;

/// Which clock a span's timestamps come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Monotonic host time relative to the tracer's epoch.
    Wall,
    /// Virtual time supplied by the caller (the training simulator).
    Simulated,
}

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Parent span id; 0 marks a root.
    pub parent: u64,
    /// The 128-bit trace this span belongs to.
    pub trace_id: u128,
    /// Span name.
    pub name: Cow<'static, str>,
    /// Track label: the recording thread's name, or an explicit label
    /// such as `rank 5` for simulated spans.
    pub track: String,
    /// Which clock `start_ns`/`end_ns` are measured on.
    pub clock: Clock,
    /// Start, nanoseconds on `clock`.
    pub start_ns: u64,
    /// End, nanoseconds on `clock`.
    pub end_ns: u64,
    /// Key=value annotations.
    pub args: Vec<(String, String)>,
}

/// Bounded span storage owned by one thread; overwrites oldest-first
/// once full (flight-recorder semantics).
#[derive(Debug)]
struct Ring {
    cap: usize,
    slots: Vec<SpanRecord>,
    /// Next overwrite position once `slots` reached `cap`.
    head: usize,
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            cap: cap.max(1),
            slots: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, rec: SpanRecord) {
        if self.slots.len() < self.cap {
            self.slots.push(rec);
        } else {
            self.slots[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Retained spans, oldest first.
    fn ordered(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.slots.len());
        out.extend_from_slice(&self.slots[self.head..]);
        out.extend_from_slice(&self.slots[..self.head]);
        out
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.head = 0;
    }
}

/// A per-thread buffer: the ring plus the track label spans recorded on
/// this thread default to. Registered with the tracer for export and
/// kept alive (via `Arc`) after its thread exits, so a crashed worker's
/// spans survive into the flight-recorder dump.
#[derive(Debug)]
struct ThreadBuffer {
    label: Mutex<String>,
    ring: Mutex<Ring>,
}

struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    next_id: AtomicU64,
    trace_id: Mutex<u128>,
    ring_capacity: AtomicUsize,
    buffers: Mutex<Vec<Arc<ThreadBuffer>>>,
}

static TRACER: OnceLock<Tracer> = OnceLock::new();

fn tracer() -> &'static Tracer {
    TRACER.get_or_init(|| Tracer {
        enabled: AtomicBool::new(false),
        epoch: Instant::now(),
        next_id: AtomicU64::new(1),
        trace_id: Mutex::new(0),
        ring_capacity: AtomicUsize::new(DEFAULT_RING_CAPACITY),
        buffers: Mutex::new(Vec::new()),
    })
}

struct LocalCtx {
    buffer: Option<Arc<ThreadBuffer>>,
    /// Open span ids on this thread, innermost last.
    stack: Vec<u64>,
    /// Adopted remote context: `(trace id, parent span id)`.
    remote: Option<(u128, u64)>,
}

thread_local! {
    static LOCAL: RefCell<LocalCtx> = const {
        RefCell::new(LocalCtx {
            buffer: None,
            stack: Vec::new(),
            remote: None,
        })
    };
}

fn local_buffer(ctx: &mut LocalCtx) -> Arc<ThreadBuffer> {
    if let Some(buf) = &ctx.buffer {
        return Arc::clone(buf);
    }
    let label = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("thread-{:?}", std::thread::current().id()));
    let buf = Arc::new(ThreadBuffer {
        label: Mutex::new(label),
        ring: Mutex::new(Ring::new(tracer().ring_capacity.load(Ordering::Relaxed))),
    });
    tracer()
        .buffers
        .lock()
        .expect("trace buffer registry poisoned")
        .push(Arc::clone(&buf));
    ctx.buffer = Some(Arc::clone(&buf));
    buf
}

/// Turns span recording on or off process-wide. Off (the default)
/// costs one relaxed load per instrumented call site.
pub fn set_enabled(enabled: bool) {
    tracer().enabled.store(enabled, Ordering::Relaxed);
}

/// Whether spans are currently recorded.
pub fn is_enabled() -> bool {
    tracer().enabled.load(Ordering::Relaxed)
}

/// Sets the ring capacity for thread buffers created *after* this call
/// (existing buffers keep their size). The ring bounds both memory and
/// the flight-recorder window: the last `cap` spans per thread survive
/// until a fault.
pub fn set_ring_capacity(cap: usize) {
    tracer().ring_capacity.store(cap.max(1), Ordering::Relaxed);
}

/// Overrides the current thread's track label (defaults to the thread
/// name). Applies to spans recorded after the call.
pub fn set_thread_track(label: &str) {
    if !is_enabled() {
        return;
    }
    LOCAL.with(|l| {
        let mut ctx = l.borrow_mut();
        let buf = local_buffer(&mut ctx);
        *buf.label.lock().expect("trace label poisoned") = label.to_string();
    });
}

fn alloc_id() -> u64 {
    tracer().next_id.fetch_add(1, Ordering::Relaxed)
}

fn now_ns() -> u64 {
    u64::try_from(tracer().epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// splitmix64, for deriving the process trace id.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The process trace id (lazily generated, never 0). All spans not
/// recorded under an adopted remote context belong to this trace.
pub fn trace_id() -> u128 {
    let mut id = tracer().trace_id.lock().expect("trace id poisoned");
    if *id == 0 {
        let mut seed = std::process::id() as u64 ^ 0x9E37_79B9_7F4A_7C15;
        seed ^= std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let hi = splitmix64(&mut seed);
        let lo = splitmix64(&mut seed);
        *id = ((hi as u128) << 64 | lo as u128).max(1);
    }
    *id
}

/// Pins the process trace id (tests, deterministic replay). 0 resets to
/// "generate lazily".
pub fn set_trace_id(id: u128) {
    *tracer().trace_id.lock().expect("trace id poisoned") = id;
}

fn current_trace_id(ctx: &LocalCtx) -> u128 {
    match ctx.remote {
        Some((tid, _)) => tid,
        None => trace_id(),
    }
}

/// The innermost open span on this thread (0 when none).
pub fn current_span_id() -> u64 {
    LOCAL.with(|l| l.borrow().stack.last().copied().unwrap_or(0))
}

/// An open span; records into the thread's ring on drop. Inert (no
/// clock reads, nothing recorded) when tracing was disabled at
/// [`span`] time.
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span {
    data: Option<SpanData>,
}

struct SpanData {
    id: u64,
    parent: u64,
    trace_id: u128,
    name: Cow<'static, str>,
    start_ns: u64,
    args: Vec<(String, String)>,
}

impl Span {
    /// This span's id (0 when inert).
    pub fn id(&self) -> u64 {
        self.data.as_ref().map_or(0, |d| d.id)
    }

    /// Attaches a key=value annotation (no-op when inert).
    pub fn annotate(&mut self, key: &str, value: impl Into<String>) {
        if let Some(data) = &mut self.data {
            data.args.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else {
            return;
        };
        let end_ns = now_ns();
        LOCAL.with(|l| {
            let mut ctx = l.borrow_mut();
            // Pop by id, tolerating out-of-order guard drops.
            if let Some(pos) = ctx.stack.iter().rposition(|&id| id == data.id) {
                ctx.stack.remove(pos);
            }
            let buf = local_buffer(&mut ctx);
            let track = buf.label.lock().expect("trace label poisoned").clone();
            buf.ring
                .lock()
                .expect("trace ring poisoned")
                .push(SpanRecord {
                    id: data.id,
                    parent: data.parent,
                    trace_id: data.trace_id,
                    name: data.name,
                    track,
                    clock: Clock::Wall,
                    start_ns: data.start_ns,
                    end_ns,
                    args: data.args,
                });
        });
    }
}

/// Opens a wall-clock span named `name` on the current thread, parented
/// to the innermost open span (or the adopted remote context). Returns
/// an inert guard when tracing is disabled — the disabled cost is one
/// relaxed load.
pub fn span(name: impl Into<Cow<'static, str>>) -> Span {
    if !is_enabled() {
        return Span { data: None };
    }
    let id = alloc_id();
    let (parent, trace_id) = LOCAL.with(|l| {
        let mut ctx = l.borrow_mut();
        let parent = ctx
            .stack
            .last()
            .copied()
            .or(ctx.remote.map(|(_, p)| p))
            .unwrap_or(0);
        let tid = current_trace_id(&ctx);
        ctx.stack.push(id);
        (parent, tid)
    });
    Span {
        data: Some(SpanData {
            id,
            parent,
            trace_id,
            name: name.into(),
            start_ns: now_ns(),
            args: Vec::new(),
        }),
    }
}

/// Records an already-measured span on the [`Clock::Simulated`] clock
/// with an explicit track label — how the training simulator lays one
/// track per simulated rank without spawning a thread per rank.
/// `parent` of 0 marks a root. Returns the span id (0 when disabled),
/// so callers can parent follow-up spans.
pub fn record_complete(
    track: &str,
    name: impl Into<Cow<'static, str>>,
    start_ns: u64,
    end_ns: u64,
    parent: u64,
    args: &[(&str, &str)],
) -> u64 {
    if !is_enabled() {
        return 0;
    }
    let id = alloc_id();
    LOCAL.with(|l| {
        let mut ctx = l.borrow_mut();
        let trace_id = current_trace_id(&ctx);
        let buf = local_buffer(&mut ctx);
        buf.ring
            .lock()
            .expect("trace ring poisoned")
            .push(SpanRecord {
                id,
                parent,
                trace_id,
                name: name.into(),
                track: track.to_string(),
                clock: Clock::Simulated,
                start_ns,
                end_ns: end_ns.max(start_ns),
                args: args
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
            });
    });
    id
}

// ----- W3C trace context ---------------------------------------------------

/// Renders the current position as a W3C `traceparent` header value
/// (`00-<trace id>-<parent span id>-01`), or `None` when tracing is
/// disabled. With no open span a fresh id is allocated as a synthetic
/// root, so the value is always well-formed (span id never 0).
pub fn traceparent() -> Option<String> {
    if !is_enabled() {
        return None;
    }
    let span_id = match current_span_id() {
        0 => alloc_id(),
        id => id,
    };
    let tid = LOCAL.with(|l| current_trace_id(&l.borrow()));
    Some(format!("00-{tid:032x}-{span_id:016x}-01"))
}

/// Parses a `traceparent` value into `(trace id, parent span id)`.
/// Only version 00 is accepted; all-zero ids are invalid per the spec.
pub fn parse_traceparent(value: &str) -> Option<(u128, u64)> {
    let mut parts = value.trim().split('-');
    let version = parts.next()?;
    let trace = parts.next()?;
    let parent = parts.next()?;
    let _flags = parts.next()?;
    if parts.next().is_some() || version != "00" || trace.len() != 32 || parent.len() != 16 {
        return None;
    }
    let trace_id = u128::from_str_radix(trace, 16).ok()?;
    let span_id = u64::from_str_radix(parent, 16).ok()?;
    if trace_id == 0 || span_id == 0 {
        return None;
    }
    Some((trace_id, span_id))
}

/// While held, spans on this thread join the remote trace described by
/// a `traceparent` header (same trace id, parented to the remote span).
#[must_use = "the remote context is cleared when this guard drops"]
pub struct RemoteScope {
    previous: Option<(u128, u64)>,
}

impl Drop for RemoteScope {
    fn drop(&mut self) {
        LOCAL.with(|l| l.borrow_mut().remote = self.previous.take());
    }
}

/// Adopts a remote `traceparent` on the current thread — the server
/// side of context propagation. Returns `None` (and adopts nothing)
/// when tracing is disabled or the value does not parse.
pub fn adopt_remote(value: &str) -> Option<RemoteScope> {
    if !is_enabled() {
        return None;
    }
    let parsed = parse_traceparent(value)?;
    let previous = LOCAL.with(|l| l.borrow_mut().remote.replace(parsed));
    Some(RemoteScope { previous })
}

// ----- export --------------------------------------------------------------

fn collect(drain: bool) -> Vec<SpanRecord> {
    let buffers = tracer()
        .buffers
        .lock()
        .expect("trace buffer registry poisoned");
    let mut out = Vec::new();
    for buf in buffers.iter() {
        let mut ring = buf.ring.lock().expect("trace ring poisoned");
        out.extend(ring.ordered());
        if drain {
            ring.clear();
        }
    }
    // Stable order for deterministic export: by clock, then time, then
    // longer spans first (parents enclose children), then id.
    out.sort_by(|a, b| {
        let key = |r: &SpanRecord| {
            (
                matches!(r.clock, Clock::Wall) as u8,
                r.start_ns,
                u64::MAX - (r.end_ns - r.start_ns),
                r.id,
            )
        };
        key(a).cmp(&key(b))
    });
    out
}

/// Removes and returns every recorded span (all threads), oldest first
/// per clock.
pub fn drain() -> Vec<SpanRecord> {
    collect(true)
}

/// Returns a copy of every recorded span, leaving the rings intact —
/// what the flight-recorder dump uses so a later drain still sees them.
pub fn snapshot() -> Vec<SpanRecord> {
    collect(false)
}

/// Spans overwritten (lost to ring wrap) so far, across all threads.
pub fn dropped() -> u64 {
    tracer()
        .buffers
        .lock()
        .expect("trace buffer registry poisoned")
        .iter()
        .map(|b| b.ring.lock().expect("trace ring poisoned").dropped)
        .sum()
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders spans as Chrome trace-event JSON (the format Perfetto and
/// `chrome://tracing` load): complete `X` events with microsecond
/// timestamps, one trace-event process per clock (pid 1 = wall clock,
/// pid 2 = simulated ranks), one thread per track, with `process_name`
/// and `thread_name` metadata. `X` events are sorted by timestamp.
pub fn to_chrome_json(spans: &[SpanRecord]) -> String {
    // Assign tids per (pid, track), ordered naturally so `rank 10`
    // sorts after `rank 9` (Perfetto lists threads by tid).
    let natural_key = |track: &str| -> (String, u64) {
        let digits: String = track
            .chars()
            .rev()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        let num: u64 = digits
            .chars()
            .rev()
            .collect::<String>()
            .parse()
            .unwrap_or(0);
        let prefix = track[..track.len() - digits.len()].to_string();
        (prefix, num)
    };
    let pid_of = |clock: Clock| match clock {
        Clock::Wall => 1u32,
        Clock::Simulated => 2u32,
    };
    let mut tracks: Vec<(u32, &str)> = Vec::new();
    for s in spans {
        let key = (pid_of(s.clock), s.track.as_str());
        if !tracks.contains(&key) {
            tracks.push(key);
        }
    }
    tracks.sort_by(|a, b| (a.0, natural_key(a.1)).cmp(&(b.0, natural_key(b.1))));
    let tids: BTreeMap<(u32, &str), u32> = tracks
        .iter()
        .enumerate()
        .map(|(i, &(pid, track))| ((pid, track), i as u32 + 1))
        .collect();

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push_event = |out: &mut String, body: &str| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(body);
    };

    let mut pids_seen: Vec<u32> = tracks.iter().map(|&(pid, _)| pid).collect();
    pids_seen.dedup();
    for pid in pids_seen {
        let name = match pid {
            1 => "wall clock",
            _ => "simulated ranks",
        };
        push_event(
            &mut out,
            &format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
        );
    }
    for &(pid, track) in &tracks {
        let tid = tids[&(pid, track)];
        let mut body = format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\""
        );
        json_escape_into(&mut body, track);
        body.push_str("\"}}");
        push_event(&mut out, &body);
    }

    let mut sorted: Vec<&SpanRecord> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start_ns, u64::MAX - (s.end_ns - s.start_ns), s.id));
    for s in sorted {
        let pid = pid_of(s.clock);
        let tid = tids[&(pid, s.track.as_str())];
        let ts_us = s.start_ns as f64 / 1_000.0;
        let dur_us = (s.end_ns - s.start_ns) as f64 / 1_000.0;
        let mut body = String::from("{\"ph\":\"X\",\"name\":\"");
        json_escape_into(&mut body, &s.name);
        let _ = write!(
            body,
            "\",\"cat\":\"{}\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"id\":{}",
            match s.clock {
                Clock::Wall => "wall",
                Clock::Simulated => "sim",
            },
            s.id
        );
        if s.parent != 0 {
            let _ = write!(body, ",\"parent\":{}", s.parent);
        }
        let _ = write!(body, ",\"trace_id\":\"{:032x}\"", s.trace_id);
        for (k, v) in &s.args {
            body.push_str(",\"");
            json_escape_into(&mut body, k);
            body.push_str("\":\"");
            json_escape_into(&mut body, v);
            body.push('"');
        }
        body.push_str("}}");
        push_event(&mut out, &body);
    }
    out.push_str("]}\n");
    out
}

/// Drains every recorded span and writes Chrome trace-event JSON to
/// `path`. Returns the number of spans written.
pub fn write_trace_json(path: &std::path::Path) -> std::io::Result<usize> {
    let spans = drain();
    std::fs::write(path, to_chrome_json(&spans))?;
    Ok(spans.len())
}

/// Writes the flight-recorder contents (a snapshot — the rings are left
/// intact) to `path` as Chrome trace-event JSON. Returns the number of
/// spans written.
pub fn dump_flight_recorder(path: &std::path::Path) -> std::io::Result<usize> {
    let spans = snapshot();
    std::fs::write(path, to_chrome_json(&spans))?;
    Ok(spans.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global; tests that enable it serialize on
    // this lock and leave it disabled and drained behind them.
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        TEST_GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = exclusive();
        set_enabled(false);
        drain();
        let mut s = span("noop");
        s.annotate("k", "v");
        assert_eq!(s.id(), 0);
        drop(s);
        assert_eq!(record_complete("rank 0", "step", 0, 10, 0, &[]), 0);
        assert!(traceparent().is_none());
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_nest_and_record() {
        let _g = exclusive();
        set_enabled(true);
        drain();
        let outer_id;
        {
            let outer = span("outer");
            outer_id = outer.id();
            assert_eq!(current_span_id(), outer_id);
            {
                let mut inner = span("inner");
                inner.annotate("shard", "3");
            }
        }
        let spans = drain();
        set_enabled(false);
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, outer_id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.trace_id, outer.trace_id);
        assert!(inner.start_ns <= inner.end_ns);
        assert!(outer.end_ns >= inner.end_ns);
        assert_eq!(inner.args, vec![("shard".to_string(), "3".to_string())]);
        assert_eq!(inner.track, outer.track);
        assert_eq!(current_span_id(), 0, "stack unwound");
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let _g = exclusive();
        set_enabled(true);
        drain();
        set_ring_capacity(8);
        // A fresh thread picks up the new capacity.
        std::thread::Builder::new()
            .name("trace-ring-test".into())
            .spawn(|| {
                for i in 0..20 {
                    let _s = span(format!("s{i}"));
                }
            })
            .unwrap()
            .join()
            .unwrap();
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        let spans: Vec<SpanRecord> = drain()
            .into_iter()
            .filter(|s| s.track == "trace-ring-test")
            .collect();
        set_enabled(false);
        assert_eq!(spans.len(), 8, "ring keeps exactly its capacity");
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_ref()).collect();
        assert_eq!(
            names,
            ["s12", "s13", "s14", "s15", "s16", "s17", "s18", "s19"],
            "latest spans survive, oldest are overwritten"
        );
        assert!(dropped() >= 12);
    }

    #[test]
    fn simulated_spans_carry_tracks_and_parents() {
        let _g = exclusive();
        set_enabled(true);
        drain();
        let step = record_complete("rank 3", "step", 1_000, 2_000, 0, &[("epoch", "1")]);
        assert_ne!(step, 0);
        let child = record_complete("rank 3", "all_reduce", 1_500, 2_000, step, &[]);
        let spans = drain();
        set_enabled(false);
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.clock == Clock::Simulated));
        assert!(spans.iter().all(|s| s.track == "rank 3"));
        let c = spans.iter().find(|s| s.id == child).unwrap();
        assert_eq!(c.parent, step);
    }

    #[test]
    fn chrome_export_shape_is_perfetto_compatible() {
        let _g = exclusive();
        set_enabled(true);
        drain();
        for rank in 0..4 {
            let track = format!("rank {rank}");
            for s in 0..3u64 {
                let id = record_complete(&track, "step", s * 1_000, (s + 1) * 1_000, 0, &[]);
                record_complete(&track, "compute", s * 1_000, s * 1_000 + 600, id, &[]);
            }
        }
        {
            let mut w = span("finalize \"quoted\"\nname");
            w.annotate("note", "line1\nline2");
        }
        let spans = drain();
        set_enabled(false);
        let json = to_chrome_json(&spans);

        // Shape: one top-level traceEvents array of M and X events.
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(!json.contains("\"ph\":\"B\"") && !json.contains("\"ph\":\"E\""));
        // One track (thread_name metadata) per rank, naturally ordered,
        // plus one for the wall-clock thread.
        for rank in 0..4 {
            assert!(
                json.contains(&format!("\"args\":{{\"name\":\"rank {rank}\"}}")),
                "{json}"
            );
        }
        assert_eq!(json.matches("\"name\":\"thread_name\"").count(), 5);
        assert_eq!(json.matches("\"name\":\"process_name\"").count(), 2);
        // Control characters and quotes in names/args are escaped.
        assert!(json.contains("finalize \\\"quoted\\\"\\nname"));
        assert!(json.contains("line1\\nline2"));
        assert!(!json.contains('\n') || json.ends_with('\n'), "one line");

        // `ts` values of X events are monotonically non-decreasing.
        let mut last = f64::MIN;
        let mut xs = 0;
        for chunk in json.split("\"ph\":\"X\"").skip(1) {
            let ts: f64 = chunk
                .split("\"ts\":")
                .nth(1)
                .and_then(|r| r.split(',').next())
                .and_then(|n| n.parse().ok())
                .expect("every X event has a ts");
            assert!(ts >= last, "ts must be monotonic: {ts} after {last}");
            last = ts;
            xs += 1;
        }
        assert_eq!(xs, 4 * 3 * 2 + 1);
    }

    #[test]
    fn traceparent_roundtrips_and_adopts() {
        let _g = exclusive();
        set_enabled(true);
        drain();
        set_trace_id(0xabcd_ef01_2345);
        let root = span("client_request");
        let header = traceparent().unwrap();
        let (tid, sid) = parse_traceparent(&header).unwrap();
        assert_eq!(tid, trace_id());
        assert_eq!(sid, root.id());

        // A "server" thread adopts the header: its spans join the trace.
        let server_spans = std::thread::spawn(move || {
            let scope = adopt_remote(&header).expect("valid traceparent adopts");
            {
                let _s = span("handle_request");
            }
            drop(scope);
            let _outside = span("after_scope");
        })
        .join()
        .unwrap();
        let _ = server_spans;
        drop(root);
        let spans = drain();
        set_enabled(false);
        set_trace_id(0);
        let handled = spans.iter().find(|s| s.name == "handle_request").unwrap();
        assert_eq!(handled.trace_id, tid, "server span shares the trace id");
        assert_eq!(handled.parent, sid, "parented to the client span");
        let outside = spans.iter().find(|s| s.name == "after_scope").unwrap();
        assert_eq!(outside.parent, 0, "scope drop clears the remote context");

        // Malformed values are rejected.
        for bad in [
            "",
            "00-zz-11-01",
            "01-00000000000000000000000000000001-0000000000000001-01",
            "00-00000000000000000000000000000000-0000000000000001-01",
            "00-00000000000000000000000000000001-0000000000000000-01",
            "00-0001-0000000000000001-01",
        ] {
            assert!(parse_traceparent(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn flight_recorder_dump_preserves_rings() {
        let _g = exclusive();
        set_enabled(true);
        drain();
        {
            let _s = span("survives");
        }
        let path = std::env::temp_dir().join(format!("trace_fr_{}.json", std::process::id()));
        let written = dump_flight_recorder(&path).unwrap();
        assert_eq!(written, 1);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"survives\""));
        std::fs::remove_file(&path).ok();
        // The snapshot did not consume the span.
        let spans = drain();
        set_enabled(false);
        assert_eq!(spans.len(), 1);
    }
}
