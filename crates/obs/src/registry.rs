//! The named instrument registry, snapshots, and Prometheus rendering.
//!
//! Registration (name → handle) is the cold path and goes through a
//! mutex; the returned `Arc` handles are the hot path and never touch
//! the registry again. Names may carry Prometheus-style labels inline
//! (`requests_total{route="/healthz"}`); the renderer groups `# TYPE`
//! lines by the family name before the `{`.

use crate::instrument::{bucket_upper_ns, Counter, Gauge, Histogram, BUCKET_COUNT};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of instruments sharing one enabled flag.
#[derive(Debug)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    instruments: Mutex<BTreeMap<String, Instrument>>,
    /// Family name → help text, rendered as `# HELP` lines.
    help: Mutex<BTreeMap<String, String>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An enabled registry.
    pub fn new() -> Self {
        Registry {
            enabled: Arc::new(AtomicBool::new(true)),
            instruments: Mutex::new(BTreeMap::new()),
            help: Mutex::new(BTreeMap::new()),
        }
    }

    /// A registry whose instruments start as no-ops (see
    /// [`Registry::set_enabled`]).
    pub fn disabled() -> Self {
        let r = Registry::new();
        r.set_enabled(false);
        r
    }

    /// Turns recording on or off for every instrument, existing and
    /// future — handles observe the change on their next operation.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether instruments currently record.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Returns the counter `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.instruments.lock().expect("obs registry poisoned");
        match map.entry(name.to_string()).or_insert_with(|| {
            Instrument::Counter(Arc::new(Counter::new(Arc::clone(&self.enabled))))
        }) {
            Instrument::Counter(c) => Arc::clone(c),
            _ => panic!("obs: {name:?} is registered as a non-counter"),
        }
    }

    /// Returns the gauge `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.instruments.lock().expect("obs registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::new(Arc::clone(&self.enabled)))))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            _ => panic!("obs: {name:?} is registered as a non-gauge"),
        }
    }

    /// Returns the histogram `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.instruments.lock().expect("obs registry poisoned");
        match map.entry(name.to_string()).or_insert_with(|| {
            Instrument::Histogram(Arc::new(Histogram::new(Arc::clone(&self.enabled))))
        }) {
            Instrument::Histogram(h) => Arc::clone(h),
            _ => panic!("obs: {name:?} is registered as a non-histogram"),
        }
    }

    /// Sets the help text rendered as a `# HELP` line for `family`
    /// (the metric name without its label block). Families without help
    /// render only their `# TYPE` line.
    pub fn set_help(&self, family: &str, help: &str) {
        self.help
            .lock()
            .expect("obs registry poisoned")
            .insert(family.to_string(), help.to_string());
    }

    /// A point-in-time copy of every instrument's state.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.instruments.lock().expect("obs registry poisoned");
        let mut snap = Snapshot::default();
        for (name, inst) in map.iter() {
            match inst {
                Instrument::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Instrument::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Instrument::Histogram(h) => {
                    snap.histograms.insert(
                        name.clone(),
                        HistogramSnapshot {
                            count: h.count(),
                            sum_ns: h.sum_ns(),
                            buckets: h.bucket_counts(),
                        },
                    );
                }
            }
        }
        snap
    }

    /// Renders every instrument in the Prometheus text exposition
    /// format (version 0.0.4). Histograms emit cumulative `_bucket`
    /// lines with `le` boundaries in seconds, plus `_sum` / `_count`.
    /// Families with registered help ([`Registry::set_help`]) get a
    /// `# HELP` line, and label values are escaped per the format
    /// (`\` → `\\`, `"` → `\"`, newline → `\n`).
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        let help_map = self.help.lock().expect("obs registry poisoned").clone();
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<String> = Default::default();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let family = family_of(name).to_string();
            if typed.insert(family.clone()) {
                if let Some(help) = help_map.get(&family) {
                    let _ = writeln!(out, "# HELP {family} {}", escape_help(help));
                }
                let _ = writeln!(out, "# TYPE {family} {kind}");
            }
        };
        for (name, value) in &snap.counters {
            type_line(&mut out, name, "counter");
            let (family, labels) = split_labels(name);
            let _ = writeln!(out, "{family}{} {value}", wrap_labels(labels));
        }
        for (name, value) in &snap.gauges {
            type_line(&mut out, name, "gauge");
            let (family, labels) = split_labels(name);
            let _ = writeln!(out, "{family}{} {value}", wrap_labels(labels));
        }
        for (name, h) in &snap.histograms {
            type_line(&mut out, name, "histogram");
            let (family, labels) = split_labels(name);
            let mut cumulative = 0u64;
            for (i, n) in h.buckets.iter().enumerate() {
                cumulative += n;
                // Skip interior empty buckets to keep scrapes compact;
                // always emit +Inf below.
                if *n == 0 {
                    continue;
                }
                let le = bucket_upper_ns(i) as f64 / 1e9;
                let _ = writeln!(
                    out,
                    "{family}_bucket{{{}le=\"{le}\"}} {cumulative}",
                    labels_prefix(labels)
                );
            }
            let _ = writeln!(
                out,
                "{family}_bucket{{{}le=\"+Inf\"}} {}",
                labels_prefix(labels),
                h.count
            );
            let suffix = wrap_labels(labels);
            let _ = writeln!(out, "{family}_sum{suffix} {}", h.sum_ns as f64 / 1e9);
            let _ = writeln!(out, "{family}_count{suffix} {}", h.count);
        }
        out
    }
}

/// The family name: everything before the label block.
fn family_of(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Splits `name{a="b"}` into `("name", "a=\"b\"")`; labels are `""`
/// when absent.
fn split_labels(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((family, rest)) => (family, rest.trim_end_matches('}')),
        None => (name, ""),
    }
}

/// Existing labels as a `k="v",` prefix ready to precede `le="..."`.
fn labels_prefix(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{},", escape_label_block(labels))
    }
}

/// Existing labels wrapped back into `{...}` (empty string when none).
fn wrap_labels(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", escape_label_block(labels))
    }
}

/// Escapes one label value per the text format: `\` → `\\`, `"` → `\"`,
/// newline → `\n`.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` text: `\` → `\\` and newline → `\n` (quotes are
/// legal in help text).
fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Re-emits an inline `k1="v1",k2="v2"` label block with every value
/// escaped. Values are stored raw in instrument names, so a closing
/// quote is recognized as a `"` followed by `,` or the end of the
/// block — a raw value containing the two-byte sequence `",` would be
/// split early, which is accepted as a documented limitation.
fn escape_label_block(labels: &str) -> String {
    let mut out = String::with_capacity(labels.len());
    let mut rest = labels;
    while let Some(eq) = rest.find("=\"") {
        out.push_str(&rest[..eq + 2]);
        let value = &rest[eq + 2..];
        let end = raw_value_end(value);
        out.push_str(&escape_label_value(&value[..end]));
        out.push('"');
        rest = &value[(end + 1).min(value.len())..];
    }
    out.push_str(rest);
    out
}

/// Index of the closing quote of a raw label value: the first `"`
/// followed by `,` or end of input.
fn raw_value_end(s: &str) -> usize {
    let bytes = s.as_bytes();
    for i in 0..bytes.len() {
        if bytes[i] == b'"' && (i + 1 == bytes.len() || bytes[i + 1] == b',') {
            return i;
        }
    }
    s.len()
}

/// Point-in-time state of a histogram (see [`Registry::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Total nanoseconds observed.
    pub sum_ns: u64,
    /// Per-bucket counts (log2 boundaries, see
    /// [`BUCKET_COUNT`](crate::BUCKET_COUNT)).
    pub buckets: [u64; BUCKET_COUNT],
}

impl HistogramSnapshot {
    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (0 ≤ q ≤ 1) in
    /// nanoseconds: the upper boundary of the bucket containing the
    /// target rank — within 2× of the true value by construction.
    pub fn quantile_upper_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_ns(i);
            }
        }
        bucket_upper_ns(BUCKET_COUNT - 1)
    }
}

/// A snapshot of a whole registry, subtractable to isolate one
/// interval's activity (e.g. one run's overhead).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Activity between `earlier` and `self`: counters and histogram
    /// counts subtract (saturating — instruments only grow), gauges
    /// keep their current value, and entries that did not move are
    /// dropped.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let mut delta = Snapshot::default();
        for (name, &now) in &self.counters {
            let before = earlier.counters.get(name).copied().unwrap_or(0);
            if now > before {
                delta.counters.insert(name.clone(), now - before);
            }
        }
        for (name, &now) in &self.gauges {
            let before = earlier.gauges.get(name).copied();
            if before != Some(now) {
                delta.gauges.insert(name.clone(), now);
            }
        }
        for (name, now) in &self.histograms {
            let (count, sum_ns, buckets) = match earlier.histograms.get(name) {
                Some(b) => (
                    now.count.saturating_sub(b.count),
                    now.sum_ns.saturating_sub(b.sum_ns),
                    std::array::from_fn(|i| now.buckets[i].saturating_sub(b.buckets[i])),
                ),
                None => (now.count, now.sum_ns, now.buckets),
            };
            if count > 0 {
                delta.histograms.insert(
                    name.clone(),
                    HistogramSnapshot {
                        count,
                        sum_ns,
                        buckets,
                    },
                );
            }
        }
        delta
    }

    /// True when nothing moved.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        r.counter("hits").inc();
        r.counter("hits").inc();
        assert_eq!(r.counter("hits").get(), 2);
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.histogram("x");
        r.counter("x");
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::disabled();
        let c = r.counter("hits");
        let h = r.histogram("lat");
        c.inc();
        h.record_ns(5);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn prometheus_rendering_shapes() {
        let r = Registry::new();
        r.counter("requests_total{route=\"/healthz\"}").add(3);
        r.counter("requests_total{route=\"/metrics\"}").inc();
        r.gauge("queue_depth").set(7);
        let h = r.histogram("latency_seconds{route=\"/healthz\"}");
        h.record_ns(1500); // bucket [1024, 2048)
        h.record_ns(1500);

        let text = r.render_prometheus();
        assert!(text.contains("# TYPE requests_total counter"), "{text}");
        assert_eq!(text.matches("# TYPE requests_total counter").count(), 1);
        assert!(text.contains("requests_total{route=\"/healthz\"} 3"));
        assert!(text.contains("requests_total{route=\"/metrics\"} 1"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 7"));
        assert!(text.contains("# TYPE latency_seconds histogram"));
        assert!(
            text.contains("latency_seconds_bucket{route=\"/healthz\",le=\"0.000002048\"} 2"),
            "{text}"
        );
        assert!(text.contains("latency_seconds_bucket{route=\"/healthz\",le=\"+Inf\"} 2"));
        assert!(text.contains("latency_seconds_count{route=\"/healthz\"} 2"));
        assert!(text.contains("latency_seconds_sum{route=\"/healthz\"} 0.000003"));
    }

    #[test]
    fn unlabeled_histogram_renders() {
        let r = Registry::new();
        r.histogram("fold_seconds").record_ns(10);
        let text = r.render_prometheus();
        assert!(
            text.contains("fold_seconds_bucket{le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("fold_seconds_count 1"));
    }

    #[test]
    fn snapshot_delta_isolates_an_interval() {
        let r = Registry::new();
        let c = r.counter("records");
        let h = r.histogram("append");
        c.add(10);
        h.record_ns(100);
        let before = r.snapshot();
        c.add(5);
        h.record_ns(200);
        h.record_ns(300);
        let delta = r.snapshot().delta_since(&before);
        assert_eq!(delta.counters["records"], 5);
        assert_eq!(delta.histograms["append"].count, 2);
        assert_eq!(delta.histograms["append"].sum_ns, 500);
        // An idle interval is empty.
        let now = r.snapshot();
        assert!(now.delta_since(&now).is_empty());
    }

    #[test]
    fn help_lines_render_before_type() {
        let r = Registry::new();
        r.counter("requests_total{route=\"/healthz\"}").inc();
        r.histogram("latency_seconds").record_ns(10);
        r.set_help("requests_total", "Requests served, by route.");
        r.set_help(
            "latency_seconds",
            "End-to-end latency.\nSpans \\ both lines.",
        );
        let text = r.render_prometheus();
        let help_pos = text.find("# HELP requests_total Requests served, by route.");
        let type_pos = text.find("# TYPE requests_total counter");
        assert!(help_pos.is_some() && type_pos.is_some(), "{text}");
        assert!(help_pos < type_pos, "HELP precedes TYPE");
        assert_eq!(text.matches("# HELP requests_total").count(), 1);
        // Backslashes and newlines in help text are escaped.
        assert!(
            text.contains("# HELP latency_seconds End-to-end latency.\\nSpans \\\\ both lines."),
            "{text}"
        );
        // A family without help still gets no HELP line.
        r.gauge("queue_depth").set(1);
        assert!(!r.render_prometheus().contains("# HELP queue_depth"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("errors_total{msg=\"disk \\ full \"quote\"\",node=\"a\nb\"}")
            .inc();
        let h = r.histogram("op_seconds{path=\"C:\\data\"}");
        h.record_ns(1500);
        let text = r.render_prometheus();
        assert!(
            text.contains("errors_total{msg=\"disk \\\\ full \\\"quote\\\"\",node=\"a\\nb\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("op_seconds_bucket{path=\"C:\\\\data\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("op_seconds_count{path=\"C:\\\\data\"} 1"),
            "{text}"
        );
        // No raw (unescaped) backslash-before-d or bare newline survives
        // inside a label value.
        assert!(!text.contains("C:\\data"), "{text}");
    }

    #[test]
    fn delta_tracks_bucket_advance_while_instruments_register_in_the_gap() {
        let r = Registry::new();
        let h = r.histogram("encode");
        h.record_ns(100); // bucket 6: [64, 128)
        h.record_ns(3000); // bucket 11: [2048, 4096)
        let before = r.snapshot();

        // The same histogram advances (one existing bucket, one new)...
        h.record_ns(100); // bucket 6 again
        h.record_ns(100_000); // bucket 16: [65536, 131072)
                              // ...while new instruments register in the gap.
        r.counter("late_counter").add(3);
        let late_h = r.histogram("late_hist");
        late_h.record_ns(50);

        let delta = r.snapshot().delta_since(&before);
        let d = &delta.histograms["encode"];
        assert_eq!(d.count, 2);
        assert_eq!(d.sum_ns, 100_100);
        assert_eq!(d.buckets[crate::instrument::bucket_index(100)], 1);
        assert_eq!(d.buckets[crate::instrument::bucket_index(100_000)], 1);
        assert_eq!(
            d.buckets.iter().sum::<u64>(),
            2,
            "pre-gap counts subtracted"
        );

        // Instruments born in the gap appear with their full value.
        assert_eq!(delta.counters["late_counter"], 3);
        assert_eq!(delta.histograms["late_hist"].count, 1);
        assert_eq!(delta.histograms["late_hist"].sum_ns, 50);
    }

    #[test]
    fn tsdb_scrape_absorbs_instruments_registering_between_ticks() {
        // The same bucket-advance-with-registration-in-the-gap scenario,
        // driven through a tsdb scrape loop: instruments that register
        // while worker threads are live must show up as complete series
        // (their full first delta), not partial ones.
        use crate::tsdb::{Tsdb, TsdbConfig};
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let r = Arc::new(Registry::new());
        let db = Tsdb::new(TsdbConfig::default());
        db.tick(0.0, &r.snapshot());

        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let r = Arc::clone(&r);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    // Bounded so the registry (and the tsdb series
                    // fuse) stays comfortably sized.
                    while !stop.load(Ordering::Relaxed) && i < 200 {
                        // Each worker keeps registering fresh names so
                        // every scrape races a registration.
                        r.counter(&format!("worker_{w}_burst_{i}")).add(7);
                        r.histogram(&format!("worker_{w}_lat_{i}")).record_ns(640);
                        i += 1;
                        std::thread::yield_now();
                    }
                    i
                })
            })
            .collect();

        for t in 1..=20 {
            db.tick(t as f64, &r.snapshot());
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        let bursts: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert!(bursts > 0);

        // Final settling tick so every registered instrument has been
        // scraped at least once after its last update.
        db.tick(21.0, &r.snapshot());

        // Every counter the workers ever registered must have exactly
        // its 7 increments accounted across the series' points: rate
        // integrated over the tick intervals (dt = 1 s here) == 7.
        let names = db.metric_names();
        let counters: Vec<_> = names.iter().filter(|n| n.contains("_burst_")).collect();
        assert!(!counters.is_empty());
        for name in counters {
            let s = db.query(name, 30.0, 1.0, 21.0);
            let total: f64 = s.points.iter().map(|p| p.avg * p.count as f64).sum();
            assert!(
                (total - 7.0).abs() < 1e-6,
                "{name}: integrated {total}, want 7 ({s:?})"
            );
        }
    }

    #[test]
    fn quantile_estimates_bound_the_data() {
        let h = HistogramSnapshot {
            count: 100,
            sum_ns: 0,
            buckets: {
                let mut b = [0u64; BUCKET_COUNT];
                b[4] = 90; // [16, 32) ns
                b[10] = 10; // [1024, 2048) ns
                b
            },
        };
        assert_eq!(h.quantile_upper_ns(0.5), 32);
        assert_eq!(h.quantile_upper_ns(0.99), 2048);
        assert_eq!(h.quantile_upper_ns(1.0), 2048);
        assert_eq!(
            HistogramSnapshot {
                count: 0,
                sum_ns: 0,
                buckets: [0; BUCKET_COUNT]
            }
            .quantile_upper_ns(0.5),
            0
        );
    }

    #[test]
    fn global_registry_starts_disabled() {
        // Serialized with nothing: this is the only test touching the
        // global flag in this crate.
        assert!(!crate::global().is_enabled());
        let c = crate::global().counter("obs_selftest_total");
        c.inc();
        assert_eq!(c.get(), 0);
        crate::set_global_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
        crate::set_global_enabled(false);
    }
}
