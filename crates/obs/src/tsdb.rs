//! A bounded in-process time-series ring over the metrics registry.
//!
//! Where the [`Registry`](crate::Registry) answers *what has happened
//! since the process started*, this module keeps *history*: a scraper
//! calls [`Tsdb::tick`] on a fixed cadence with the registry's current
//! [`Snapshot`], the tick diffs it against the previous one with
//! [`Snapshot::delta_since`], and the per-interval values land in
//! fixed-size rings — so an operator can ask "what did the request rate
//! look like over the last five minutes" without an external TSDB.
//!
//! Design points:
//!
//! * **Derived series, not raw samples.** Counters are stored as
//!   per-second rates over the scrape interval; gauges as levels;
//!   histograms fan out into three series — the observation rate under
//!   the metric's own name, plus `<name>:p99_ns` and `<name>:mean_ns`.
//! * **Downsampling tiers.** Each series writes into every configured
//!   tier (default 1 s × 5 min and 10 s × 1 h). A tier is a ring of
//!   aggregate slots (min/max/sum/count) keyed by `floor(t / step)`, so
//!   coarser tiers trade resolution for span at fixed memory.
//! * **Clock-agnostic.** Time is a caller-supplied `f64` seconds value
//!   — wall seconds in production, a manually advanced virtual clock in
//!   tests — so scrape cadence and downsampling boundaries are fully
//!   deterministic under test.
//!
//! The tsdb itself is passive: it never spawns a thread or reads a
//! clock. The owning service drives it (see `yprov-service::ops`).

use crate::registry::Snapshot;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// One downsampling tier: `slots` ring slots of `step_s` seconds each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierSpec {
    /// Slot width in seconds.
    pub step_s: f64,
    /// Ring length; the tier spans `step_s * slots` seconds.
    pub slots: usize,
}

impl TierSpec {
    /// Seconds of history this tier retains.
    pub fn span_s(&self) -> f64 {
        self.step_s * self.slots as f64
    }
}

/// Tsdb configuration: the downsampling tiers, finest first.
#[derive(Debug, Clone)]
pub struct TsdbConfig {
    /// Downsampling tiers. Order does not matter; queries pick by step
    /// and coverage.
    pub tiers: Vec<TierSpec>,
    /// Upper bound on distinct series before new names are dropped (a
    /// label-cardinality fuse, not a working limit).
    pub max_series: usize,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        TsdbConfig {
            tiers: vec![
                TierSpec {
                    step_s: 1.0,
                    slots: 300,
                }, // 1 s × 5 min
                TierSpec {
                    step_s: 10.0,
                    slots: 360,
                }, // 10 s × 1 h
            ],
            max_series: 4096,
        }
    }
}

/// One aggregate slot of a tier ring.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// `floor(t / step)` of the samples aggregated here; `i64::MIN`
    /// marks an empty slot.
    bucket: i64,
    min: f64,
    max: f64,
    sum: f64,
    count: u32,
}

const EMPTY: Slot = Slot {
    bucket: i64::MIN,
    min: 0.0,
    max: 0.0,
    sum: 0.0,
    count: 0,
};

/// A ring of aggregate slots for one (series, tier) pair.
#[derive(Debug, Clone)]
struct TierRing {
    step_s: f64,
    slots: Vec<Slot>,
}

impl TierRing {
    fn new(spec: &TierSpec) -> TierRing {
        TierRing {
            step_s: spec.step_s,
            slots: vec![EMPTY; spec.slots.max(1)],
        }
    }

    fn record(&mut self, t_s: f64, value: f64) {
        let bucket = (t_s / self.step_s).floor() as i64;
        let idx = (bucket.rem_euclid(self.slots.len() as i64)) as usize;
        let slot = &mut self.slots[idx];
        if slot.bucket == bucket {
            slot.min = slot.min.min(value);
            slot.max = slot.max.max(value);
            slot.sum += value;
            slot.count += 1;
        } else {
            // A new bucket claims the slot, discarding whatever older
            // wrap-around data lived there — that is the ring's bound.
            *slot = Slot {
                bucket,
                min: value,
                max: value,
                sum: value,
                count: 1,
            };
        }
    }

    /// Aggregated points with `since_s <= t < until_s`, oldest first.
    fn window(&self, since_s: f64, until_s: f64) -> Vec<Point> {
        let lo = (since_s / self.step_s).floor() as i64;
        let hi = (until_s / self.step_s).floor() as i64;
        let mut out = Vec::new();
        for b in lo..=hi {
            let idx = (b.rem_euclid(self.slots.len() as i64)) as usize;
            let slot = self.slots[idx];
            if slot.bucket == b && slot.count > 0 {
                out.push(Point {
                    t_s: b as f64 * self.step_s,
                    avg: slot.sum / slot.count as f64,
                    min: slot.min,
                    max: slot.max,
                    count: slot.count,
                });
            }
        }
        out
    }
}

/// One windowed query result point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Slot start, seconds on the caller's clock.
    pub t_s: f64,
    /// Mean of the samples aggregated into the slot.
    pub avg: f64,
    pub min: f64,
    pub max: f64,
    /// Samples aggregated into the slot.
    pub count: u32,
}

/// A windowed query answer: the series name, the step of the tier that
/// answered, and its points oldest first.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    pub metric: String,
    pub step_s: f64,
    pub points: Vec<Point>,
}

struct SeriesData {
    tiers: Vec<TierRing>,
}

struct Inner {
    /// `(t_s, snapshot)` of the previous tick, diffed against on the
    /// next one.
    last: Option<(f64, Snapshot)>,
    series: BTreeMap<String, SeriesData>,
    ticks: u64,
    dropped_series: u64,
}

/// The time-series store. All methods take `&self`; the single mutex
/// is only ever contended between the scraper tick and queries.
pub struct Tsdb {
    cfg: TsdbConfig,
    inner: Mutex<Inner>,
}

impl Default for Tsdb {
    fn default() -> Self {
        Tsdb::new(TsdbConfig::default())
    }
}

impl Tsdb {
    pub fn new(cfg: TsdbConfig) -> Tsdb {
        assert!(!cfg.tiers.is_empty(), "tsdb needs at least one tier");
        Tsdb {
            cfg,
            inner: Mutex::new(Inner {
                last: None,
                series: BTreeMap::new(),
                ticks: 0,
                dropped_series: 0,
            }),
        }
    }

    /// The configured tiers.
    pub fn tiers(&self) -> &[TierSpec] {
        &self.cfg.tiers
    }

    /// Scrape ticks absorbed so far.
    pub fn ticks(&self) -> u64 {
        self.inner.lock().expect("tsdb poisoned").ticks
    }

    /// One scrape tick at `now_s` with the registry's current snapshot.
    ///
    /// The first tick only establishes the baseline; every later tick
    /// records the interval since the previous one: counter deltas as
    /// per-second rates, gauges as levels, histograms as an observation
    /// rate plus `:p99_ns` / `:mean_ns` derived series. Ticks whose
    /// clock did not advance are ignored (the rate would divide by
    /// zero); a clock that jumped backwards re-baselines.
    pub fn tick(&self, now_s: f64, snap: &Snapshot) {
        let mut inner = self.inner.lock().expect("tsdb poisoned");
        inner.ticks += 1;
        let prev = inner.last.replace((now_s, snap.clone()));
        let Some((prev_t, prev_snap)) = prev else {
            return;
        };
        let dt = now_s - prev_t;
        if dt <= 0.0 {
            if dt < 0.0 {
                // Keep the new baseline; drop the unusable interval.
                return;
            }
            // Same instant: restore the older baseline so a later tick
            // still measures a real interval.
            inner.last = Some((prev_t, prev_snap));
            return;
        }
        let delta = snap.delta_since(&prev_snap);
        // Borrow-friendly local recording: split the inner borrow.
        let Inner {
            series,
            dropped_series,
            ..
        } = &mut *inner;
        let cfg = &self.cfg;
        let mut record = |name: &str, value: f64| {
            if !value.is_finite() {
                return;
            }
            if !series.contains_key(name) && series.len() >= cfg.max_series {
                *dropped_series += 1;
                return;
            }
            let data = series.entry(name.to_string()).or_insert_with(|| SeriesData {
                tiers: cfg.tiers.iter().map(TierRing::new).collect(),
            });
            for tier in &mut data.tiers {
                tier.record(now_s, value);
            }
        };
        for (name, v) in &delta.counters {
            record(name, *v as f64 / dt);
        }
        // Gauges are levels: sample the *current* snapshot, every tick,
        // so an unchanged gauge still draws a flat line.
        for (name, v) in &snap.gauges {
            record(name, *v as f64);
        }
        for (name, h) in &delta.histograms {
            record(name, h.count as f64 / dt);
            record(&format!("{name}:p99_ns"), h.quantile_upper_ns(0.99) as f64);
            record(&format!("{name}:mean_ns"), h.mean_ns());
        }
    }

    /// Series names with at least one recorded sample, sorted.
    pub fn metric_names(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("tsdb poisoned")
            .series
            .keys()
            .cloned()
            .collect()
    }

    /// The latest aggregated value of `metric` no older than
    /// `max_age_s` before `now_s` (judged on the finest tier), or
    /// `None` when the series is missing or stale. This is what alert
    /// rules evaluate against.
    pub fn latest(&self, metric: &str, now_s: f64, max_age_s: f64) -> Option<f64> {
        let inner = self.inner.lock().expect("tsdb poisoned");
        let data = inner.series.get(metric)?;
        // Finest tier = smallest step.
        let finest = data
            .tiers
            .iter()
            .min_by(|a, b| a.step_s.total_cmp(&b.step_s))?;
        finest
            .window(now_s - max_age_s, now_s)
            .last()
            .map(|p| p.avg)
    }

    /// Windowed query: the points of `metric` between `now_s - since_s`
    /// and `now_s`, answered by the finest tier that both covers the
    /// window and has `step >= step_s` — except when even the finest
    /// tier is coarser than requested, which serves the finest
    /// available. `step_s <= 0` means "finest that covers the window".
    pub fn query(&self, metric: &str, since_s: f64, step_s: f64, now_s: f64) -> Series {
        let inner = self.inner.lock().expect("tsdb poisoned");
        let since_abs = now_s - since_s.max(0.0);
        let empty = Series {
            metric: metric.to_string(),
            step_s: 0.0,
            points: Vec::new(),
        };
        let Some(data) = inner.series.get(metric) else {
            return empty;
        };
        // Candidate order: finest first.
        let mut tiers: Vec<&TierRing> = data.tiers.iter().collect();
        tiers.sort_by(|a, b| a.step_s.total_cmp(&b.step_s));
        let covers =
            |t: &TierRing| t.step_s * (t.slots.len() as f64) >= since_s.max(0.0) - t.step_s;
        let chosen = tiers
            .iter()
            .find(|t| t.step_s >= step_s && covers(t))
            .or_else(|| tiers.iter().find(|t| covers(t)))
            .or_else(|| tiers.last())
            .copied();
        match chosen {
            Some(tier) => Series {
                metric: metric.to_string(),
                step_s: tier.step_s,
                points: tier.window(since_abs, now_s),
            },
            None => empty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn tiny() -> TsdbConfig {
        TsdbConfig {
            tiers: vec![
                TierSpec {
                    step_s: 1.0,
                    slots: 10,
                },
                TierSpec {
                    step_s: 5.0,
                    slots: 8,
                },
            ],
            max_series: 64,
        }
    }

    #[test]
    fn counter_ticks_become_rates() {
        let r = Registry::new();
        let c = r.counter("requests_total");
        let db = Tsdb::new(tiny());
        db.tick(0.0, &r.snapshot()); // baseline
        c.add(10);
        db.tick(1.0, &r.snapshot());
        c.add(30);
        db.tick(2.0, &r.snapshot());
        let s = db.query("requests_total", 5.0, 1.0, 2.0);
        assert_eq!(s.step_s, 1.0);
        let rates: Vec<f64> = s.points.iter().map(|p| p.avg).collect();
        assert_eq!(rates, vec![10.0, 30.0]);
    }

    #[test]
    fn gauges_sample_levels_even_when_unchanged() {
        let r = Registry::new();
        let g = r.gauge("queue_depth");
        g.set(7);
        let db = Tsdb::new(tiny());
        db.tick(0.0, &r.snapshot());
        db.tick(1.0, &r.snapshot());
        db.tick(2.0, &r.snapshot());
        let s = db.query("queue_depth", 5.0, 1.0, 2.0);
        assert_eq!(s.points.len(), 2, "{s:?}");
        assert!(s.points.iter().all(|p| p.avg == 7.0));
    }

    #[test]
    fn histograms_fan_out_into_rate_p99_and_mean() {
        let r = Registry::new();
        let h = r.histogram("latency_seconds");
        let db = Tsdb::new(tiny());
        db.tick(0.0, &r.snapshot());
        for _ in 0..100 {
            h.record_ns(1_000);
        }
        db.tick(2.0, &r.snapshot());
        let rate = db.query("latency_seconds", 5.0, 1.0, 2.0);
        assert_eq!(rate.points.len(), 1);
        assert_eq!(rate.points[0].avg, 50.0, "100 obs over 2 s");
        let p99 = db.query("latency_seconds:p99_ns", 5.0, 1.0, 2.0);
        assert_eq!(p99.points.len(), 1);
        assert!(p99.points[0].avg >= 1_000.0);
        let mean = db.query("latency_seconds:mean_ns", 5.0, 1.0, 2.0);
        assert!((mean.points[0].avg - 1_000.0).abs() < 1.0);
    }

    #[test]
    fn downsampling_boundary_splits_exactly_at_the_bucket_edge() {
        // Samples at t = 4.999 and t = 5.0 must land in different 5 s
        // buckets; within one bucket min/max/avg aggregate.
        let db = Tsdb::new(TsdbConfig {
            tiers: vec![TierSpec {
                step_s: 5.0,
                slots: 4,
            }],
            max_series: 8,
        });
        let r = Registry::new();
        let g = r.gauge("level");
        db.tick(0.0, &r.snapshot()); // baseline only, records nothing
        g.set(10);
        db.tick(1.0, &r.snapshot());
        g.set(20);
        db.tick(4.999, &r.snapshot());
        g.set(90);
        db.tick(5.0, &r.snapshot());
        let s = db.query("level", 20.0, 5.0, 6.0);
        assert_eq!(s.points.len(), 2, "{s:?}");
        assert_eq!(s.points[0].t_s, 0.0);
        assert_eq!(s.points[0].count, 2);
        assert_eq!(s.points[0].min, 10.0);
        assert_eq!(s.points[0].max, 20.0);
        assert_eq!(s.points[0].avg, 15.0);
        assert_eq!(s.points[1].t_s, 5.0);
        assert_eq!(s.points[1].avg, 90.0);
    }

    #[test]
    fn ring_wraps_and_keeps_only_the_span() {
        let db = Tsdb::new(TsdbConfig {
            tiers: vec![TierSpec {
                step_s: 1.0,
                slots: 3,
            }],
            max_series: 8,
        });
        let r = Registry::new();
        let g = r.gauge("level");
        for t in 0..10 {
            g.set(t);
            db.tick(t as f64, &r.snapshot());
        }
        let s = db.query("level", 100.0, 1.0, 9.0);
        // Only the last 3 slots survive the wrap.
        let ts: Vec<f64> = s.points.iter().map(|p| p.t_s).collect();
        assert_eq!(ts, vec![7.0, 8.0, 9.0]);
    }

    #[test]
    fn query_picks_the_tier_matching_step_and_coverage() {
        let db = Tsdb::new(tiny()); // 1 s × 10 and 5 s × 8
        let r = Registry::new();
        let g = r.gauge("level");
        for t in 0..=30 {
            g.set(t);
            db.tick(t as f64, &r.snapshot());
        }
        // A short fine window is served by the 1 s tier...
        assert_eq!(db.query("level", 8.0, 1.0, 30.0).step_s, 1.0);
        // ...a window beyond its 10 s span falls to the 5 s tier...
        assert_eq!(db.query("level", 25.0, 1.0, 30.0).step_s, 5.0);
        // ...and an explicitly coarse step goes straight there.
        assert_eq!(db.query("level", 8.0, 5.0, 30.0).step_s, 5.0);
    }

    #[test]
    fn non_advancing_clock_keeps_the_older_baseline() {
        let r = Registry::new();
        let c = r.counter("requests_total");
        let db = Tsdb::new(tiny());
        db.tick(0.0, &r.snapshot());
        c.add(5);
        db.tick(0.0, &r.snapshot()); // zero interval: ignored
        c.add(5);
        db.tick(2.0, &r.snapshot());
        let s = db.query("requests_total", 10.0, 1.0, 2.0);
        assert_eq!(s.points.len(), 1);
        assert_eq!(s.points[0].avg, 5.0, "10 over the full 2 s interval");
    }

    #[test]
    fn latest_respects_staleness() {
        let r = Registry::new();
        let g = r.gauge("level");
        g.set(3);
        let db = Tsdb::new(tiny());
        db.tick(0.0, &r.snapshot());
        db.tick(1.0, &r.snapshot());
        assert_eq!(db.latest("level", 1.0, 2.0), Some(3.0));
        assert_eq!(db.latest("level", 100.0, 2.0), None, "stale");
        assert_eq!(db.latest("ghost", 1.0, 2.0), None);
    }

    #[test]
    fn series_cardinality_is_fused() {
        let db = Tsdb::new(TsdbConfig {
            tiers: vec![TierSpec {
                step_s: 1.0,
                slots: 4,
            }],
            max_series: 2,
        });
        let r = Registry::new();
        r.gauge("a").set(1);
        r.gauge("b").set(2);
        r.gauge("c").set(3);
        db.tick(0.0, &r.snapshot());
        db.tick(1.0, &r.snapshot());
        assert_eq!(db.metric_names().len(), 2, "third series dropped");
    }
}
