//! The instruments: counter, gauge, histogram, span timer.
//!
//! All update paths are lock-free (`Relaxed` atomics) and allocation-
//! free. Every instrument shares an `Arc<AtomicBool>` enabled flag with
//! the [`Registry`](crate::Registry) that created it; a disabled
//! instrument's record methods return after one relaxed load.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of log2 histogram buckets: bucket `i` covers `[2^i, 2^(i+1))`
/// nanoseconds (bucket 0 also catches 0 ns), so the range runs 1 ns to
/// `2^40` ns ≈ 18 minutes, with everything above clamped into the last
/// bucket.
pub const BUCKET_COUNT: usize = 40;

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Self {
        Counter {
            enabled,
            value: AtomicU64::new(0),
        }
    }

    /// A registry-less, always-enabled counter (tests, ad-hoc use).
    pub fn standalone() -> Arc<Self> {
        Arc::new(Counter::new(Arc::new(AtomicBool::new(true))))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A no-op while the owning registry is disabled.
    pub fn add(&self, n: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depths, pool sizes).
#[derive(Debug)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    value: AtomicI64,
}

impl Gauge {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Self {
        Gauge {
            enabled,
            value: AtomicI64::new(0),
        }
    }

    /// A registry-less, always-enabled gauge.
    pub fn standalone() -> Arc<Self> {
        Arc::new(Gauge::new(Arc::new(AtomicBool::new(true))))
    }

    /// Sets the value. A no-op while the owning registry is disabled.
    pub fn set(&self, v: i64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A latency histogram with fixed log2 bucket boundaries over
/// nanoseconds (see [`BUCKET_COUNT`]).
#[derive(Debug)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

/// Index of the bucket an observation of `ns` falls into.
pub(crate) fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(BUCKET_COUNT - 1)
    }
}

/// Exclusive upper boundary of bucket `i`, in nanoseconds.
pub(crate) fn bucket_upper_ns(i: usize) -> u64 {
    1u64 << (i as u32 + 1)
}

impl Histogram {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Self {
        Histogram {
            enabled,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// A registry-less, always-enabled histogram.
    pub fn standalone() -> Arc<Self> {
        Arc::new(Histogram::new(Arc::new(AtomicBool::new(true))))
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one observation of a duration.
    pub fn record(&self, d: Duration) {
        // u64 nanoseconds overflow after ~584 years; saturate.
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a span whose drop records the elapsed time. While the
    /// registry is disabled the span is inert and never reads the clock.
    pub fn start_span(&self) -> SpanTimer<'_> {
        let start = if self.enabled.load(Ordering::Relaxed) {
            Some(Instant::now())
        } else {
            None
        };
        SpanTimer {
            histogram: self,
            start,
        }
    }

    /// Times a closure (span sugar for straight-line regions).
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let _span = self.start_span();
        f()
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total of all observations, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns() as f64 / n as f64
        }
    }

    /// Loads the raw bucket counts.
    pub fn bucket_counts(&self) -> [u64; BUCKET_COUNT] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// A guard that records its lifetime into a [`Histogram`] on drop.
///
/// Inert (no clock reads, nothing recorded) when the histogram's
/// registry was disabled at [`Histogram::start_span`] time.
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct SpanTimer<'a> {
    histogram: &'a Histogram,
    start: Option<Instant>,
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.histogram.record(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::standalone();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::standalone();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(bucket_upper_ns(0), 2);
        assert_eq!(bucket_upper_ns(10), 2048);
    }

    #[test]
    fn histogram_records_and_aggregates() {
        let h = Histogram::standalone();
        for ns in [1u64, 2, 1000, 1_000_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_ns(), 1_001_003);
        assert!((h.mean_ns() - 1_001_003.0 / 4.0).abs() < 1e-9);
        let buckets = h.bucket_counts();
        assert_eq!(buckets.iter().sum::<u64>(), 4);
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 1);
    }

    #[test]
    fn span_records_on_drop() {
        let h = Histogram::standalone();
        {
            let _span = h.start_span();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(
            h.sum_ns() >= 2_000_000,
            "slept 2ms, recorded {}ns",
            h.sum_ns()
        );
    }

    #[test]
    fn disabled_instruments_do_not_move() {
        let enabled = Arc::new(AtomicBool::new(false));
        let c = Counter::new(Arc::clone(&enabled));
        let h = Histogram::new(Arc::clone(&enabled));
        c.inc();
        h.record_ns(100);
        {
            let span = h.start_span();
            assert!(
                span.start.is_none(),
                "disabled span must not read the clock"
            );
        }
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        // Flipping the shared flag re-arms existing handles.
        enabled.store(true, Ordering::Relaxed);
        c.inc();
        h.record_ns(100);
        assert_eq!(c.get(), 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn time_returns_the_closure_result() {
        let h = Histogram::standalone();
        let out = h.time(|| 6 * 7);
        assert_eq!(out, 42);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::standalone();
        let c = Counter::standalone();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_ns(i);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(h.count(), 80_000);
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 80_000);
    }
}
