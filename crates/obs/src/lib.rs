//! # obs
//!
//! A from-scratch, dependency-free observability layer: lock-free
//! counters, gauges and histograms in a named [`Registry`], lightweight
//! [`SpanTimer`]s for timing code regions, and Prometheus text
//! exposition for scraping.
//!
//! The design target is the paper's "minimal overhead" requirement
//! turned on the tracker itself: instrumentation must be cheap enough
//! to leave in the hot paths of the provenance collector (per-record
//! enqueue, per-batch fold, per-chunk encode), which rules out mutexes
//! and allocation on the record path.
//!
//! * **Hot path** — every instrument is a handful of `AtomicU64`s
//!   updated with `Relaxed` ordering; a histogram observation is one
//!   `leading_zeros` plus three `fetch_add`s. No locks, no allocation.
//! * **Disabled path** — each instrument shares its registry's enabled
//!   flag; when the registry is disabled, recording is a single
//!   `Relaxed` load and a predictable branch, and span timers skip the
//!   `Instant::now()` call entirely. The [`global`] registry starts
//!   disabled, so instrumented libraries cost nothing until someone
//!   opts in with [`set_global_enabled`].
//! * **Cold path** — instrument registration (name → handle) goes
//!   through a mutex-guarded `BTreeMap`. Callers are expected to look
//!   a handle up once and keep the `Arc`.
//!
//! Histograms use fixed power-of-two (log2) bucket boundaries over
//! nanoseconds: bucket `i` holds observations in `[2^i, 2^(i+1))` ns
//! (bucket 0 also catches 0). Fixed boundaries keep the storage at a
//! flat `[AtomicU64; 40]` — no resizing, no coordination — while
//! spanning 1 ns to ~18 minutes, plenty for I/O and encode latencies.
//!
//! ```
//! let registry = obs::Registry::new();
//! let requests = registry.counter("requests_total");
//! let latency = registry.histogram("request_seconds");
//!
//! requests.inc();
//! {
//!     let _span = latency.start_span(); // records on drop
//! }
//! assert_eq!(requests.get(), 1);
//! assert_eq!(latency.count(), 1);
//! assert!(registry.render_prometheus().contains("requests_total 1"));
//! ```

pub mod alerts;
pub mod instrument;
pub mod registry;
pub mod trace;
pub mod tsdb;

pub use instrument::{Counter, Gauge, Histogram, SpanTimer, BUCKET_COUNT};
pub use registry::{HistogramSnapshot, Registry, Snapshot};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide default registry. Starts **disabled**: libraries
/// instrumented against it (yprov4ml, metric-store, train-sim) cost a
/// relaxed load per record until [`set_global_enabled`]`(true)`.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::disabled)
}

/// Enables or disables recording on the [`global`] registry.
pub fn set_global_enabled(enabled: bool) {
    global().set_enabled(enabled);
}
